//! Offline repo-invariant lint: dependency-free lexical checks over
//! `crates/*/src` and `src/` (test code excluded), run as
//! `cargo run -p xtask -- lint` and wired into CI ahead of the test suite.
//!
//! Three rules, each enforcing a convention the codebase already relies on:
//!
//! * **`env-read`** — every `RAVEN_*` environment variable must be read
//!   through the central cached-accessor registry
//!   (`crates/columnar/src/envcfg.rs`). A raw `std::env::var("RAVEN_…")`
//!   anywhere else re-reads the environment (taking the process-wide env
//!   lock) on paths that run per query — the double-read drift this PR
//!   fixed in `cost.rs` / `pool.rs` / `flat.rs`.
//! * **`serve-panic`** — no `.unwrap()` / `.expect(` in non-test
//!   `crates/serve` code: a panic on the serving hot path poisons the locks
//!   every worker shares. The poison-recovering helpers in
//!   `crates/serve/src/sync.rs` are the sanctioned replacements
//!   (`unwrap_or…` / `unreachable!` remain allowed — they don't panic on
//!   `Err`/`None` data).
//! * **`env-doc`** — every `RAVEN_*` variable mentioned anywhere in the
//!   sources must have a row in the authoritative environment-variable
//!   table in the facade crate's `src/lib.rs` (the section starting
//!   `//! ## Environment variables`), so the table can never silently go
//!   stale.
//!
//! The scanner is lexical, not syntactic: comments and string/char literals
//! are blanked by a small Rust lexer (newlines preserved, so reported line
//! numbers are exact) and `#[cfg(test)]`-attached blocks are stripped by
//! brace matching before the rules run.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`env-read`, `serve-panic`, `env-doc`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lint the repository rooted at `root`. Returns every violation found;
/// an empty vector means the tree is clean.
pub fn lint_repo(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    files.sort();

    let doc_table = std::fs::read_to_string(root.join("src/lib.rs")).unwrap_or_default();
    let documented = documented_env_vars(&doc_table);

    let mut out = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        out.extend(lint_file(&rel, &text, &documented));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's text. `rel` is the repo-relative path (used for rule
/// scoping and reports); `documented` is the set of `RAVEN_*` names the
/// facade table declares. Exposed for the unit tests, which feed seeded
/// violations as strings.
pub fn lint_file(rel: &Path, text: &str, documented: &[String]) -> Vec<Violation> {
    let blanked = blank_comments_and_strings(text);
    let code = strip_cfg_test(&blanked);
    // Same test regions removed from the original text (strings intact) for
    // the rules that need literal contents.
    let original_nontest = apply_blanks(text, &blanked, &code);

    let mut out = Vec::new();
    rule_env_read(rel, text, &code, &mut out);
    rule_serve_panic(rel, &code, &mut out);
    rule_env_doc(rel, &original_nontest, documented, &mut out);
    out
}

/// The `RAVEN_*` names declared in the facade `src/lib.rs` env-var table:
/// every token in the doc section from `//! ## Environment variables` to the
/// next `//! ##` heading (or end of file).
pub fn documented_env_vars(lib_rs: &str) -> Vec<String> {
    let Some(start) = lib_rs.find("//! ## Environment variables") else {
        return Vec::new();
    };
    let section = &lib_rs[start..];
    let end = section[4..]
        .find("//! ##")
        .map(|i| i + 4)
        .unwrap_or(section.len());
    let mut vars = raven_tokens(&section[..end]);
    vars.sort();
    vars.dedup();
    vars
}

// ---------------------------------------------------------------------------
// rules
// ---------------------------------------------------------------------------

/// Files allowed to read `RAVEN_*` from the environment directly.
const ENV_READ_ALLOWED: &str = "crates/columnar/src/envcfg.rs";

fn rule_env_read(rel: &Path, text: &str, code: &str, out: &mut Vec<Violation>) {
    if rel == Path::new(ENV_READ_ALLOWED) {
        return;
    }
    let mut from = 0;
    while let Some(i) = code[from..].find("env::var") {
        let pos = from + i;
        from = pos + "env::var".len();
        // the call's argument lives in the original text (strings were
        // blanked); look a short window ahead for a RAVEN_ literal
        let window = &text[pos..(pos + 120).min(text.len())];
        if window.contains("\"RAVEN_") {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: line_of(text, pos),
                rule: "env-read",
                message: format!(
                    "raw RAVEN_* environment read; use a raven_columnar::envcfg \
                     accessor ({ENV_READ_ALLOWED})"
                ),
            });
        }
    }
}

fn rule_serve_panic(rel: &Path, code: &str, out: &mut Vec<Violation>) {
    // the crates on the serving path: a panic inside them poisons shared
    // locks (serve) or turns an injectable I/O fault into a process abort
    // instead of a typed error (storage)
    if !rel.starts_with("crates/serve/src") && !rel.starts_with("crates/storage/src") {
        return;
    }
    for needle in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(i) = code[from..].find(needle) {
            let pos = from + i;
            from = pos + needle.len();
            out.push(Violation {
                file: rel.to_path_buf(),
                line: line_of(code, pos),
                rule: "serve-panic",
                message: format!(
                    "`{needle}` in non-test serving-path code; a panic here poisons \
                     shared locks or escalates injectable I/O faults to aborts — \
                     use plock-style helpers or surface a typed error"
                ),
            });
        }
    }
}

fn rule_env_doc(
    rel: &Path,
    original_nontest: &str,
    documented: &[String],
    out: &mut Vec<Violation>,
) {
    for var in raven_tokens(original_nontest) {
        if !documented.iter().any(|d| d == &var) {
            let pos = original_nontest.find(&var).unwrap_or(0);
            out.push(Violation {
                file: rel.to_path_buf(),
                line: line_of(original_nontest, pos),
                rule: "env-doc",
                message: format!(
                    "`{var}` is not documented in the src/lib.rs environment-variable table"
                ),
            });
        }
    }
}

/// Every distinct `RAVEN_[A-Z0-9_]+` token in `text`, in first-seen order.
fn raven_tokens(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find("RAVEN_") {
        let start = from + i;
        // must not be the tail of a longer identifier (e.g. `MY_RAVEN_X`)
        let standalone =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start + "RAVEN_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        from = end;
        if !standalone || end == start + "RAVEN_".len() {
            continue; // bare "RAVEN_" prefix (e.g. in this lint's own docs)
        }
        let tok = text[start..end].trim_end_matches('_').to_string();
        if !out.contains(&tok) {
            out.push(tok);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// lexical preprocessing
// ---------------------------------------------------------------------------

/// 1-based line number of byte offset `pos`.
fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Replace the contents of comments and string/char literals with spaces,
/// preserving every newline so byte offsets map to the same lines.
pub fn blank_comments_and_strings(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], range: std::ops::Range<usize>| {
        for j in range {
            if out[j] != b'\n' {
                out[j] = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = text[i..].find('\n').map(|n| i + n).unwrap_or(b.len());
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'"' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i + 1..j.saturating_sub(1).max(i + 1));
                i = j;
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // raw string r"..." / r#"..."# / r##"..."## ...
                let mut hashes = 0;
                let mut j = i + 1;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let open = j + 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let close = text[open..]
                        .find(std::str::from_utf8(&closer).unwrap_or("\""))
                        .map(|n| open + n)
                        .unwrap_or(b.len());
                    blank(&mut out, open..close);
                    i = (close + closer.len()).min(b.len());
                } else {
                    i += 1; // identifier starting with r
                }
            }
            b'\'' => {
                // char literal or lifetime: a lifetime is ' + ident with no
                // closing quote right after
                if i + 2 < b.len()
                    && (b[i + 1].is_ascii_alphanumeric() || b[i + 1] == b'_')
                    && b[i + 2] != b'\''
                {
                    i += 2; // lifetime like 'a or 'static
                } else {
                    let mut j = i + 1;
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(b.len());
                    blank(&mut out, i + 1..end.saturating_sub(1).max(i + 1));
                    i = end;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| text.to_string())
}

/// Blank every `#[cfg(test)]`-attached item (attribute through the matching
/// close brace or terminating semicolon) in already-blanked text.
pub fn strip_cfg_test(blanked: &str) -> String {
    let mut out = blanked.as_bytes().to_vec();
    let b = blanked.as_bytes();
    let mut from = 0;
    while let Some(i) = blanked[from..].find("#[cfg(test)]") {
        let start = from + i;
        let mut j = start + "#[cfg(test)]".len();
        // scan to the item's opening brace (skipping further attributes and
        // the item header) or a semicolon (e.g. `mod tests;`)
        let mut depth = 0usize;
        let mut opened = false;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                b';' if !opened => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for k in start..j.min(out.len()) {
            if out[k] != b'\n' {
                out[k] = b' ';
            }
        }
        from = j.min(blanked.len());
    }
    String::from_utf8(out).unwrap_or_else(|_| blanked.to_string())
}

/// Project the blanking that `strip_cfg_test` applied onto the ORIGINAL
/// text: wherever `code` differs from `blanked` (a stripped test region),
/// blank the original too — leaving non-test original text (strings and
/// comments included) for rules that need literal contents.
fn apply_blanks(text: &str, blanked: &str, code: &str) -> String {
    let mut out = text.as_bytes().to_vec();
    for (i, (bb, cb)) in blanked.bytes().zip(code.bytes()).enumerate() {
        if bb != cb && i < out.len() && out[i] != b'\n' {
            out[i] = b' ';
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<String> {
        vec!["RAVEN_SCORER".into(), "RAVEN_VERIFY".into()]
    }

    #[test]
    fn blanking_preserves_lines_and_code() {
        let src = "let a = 1; // RAVEN_X in comment\nlet s = \"RAVEN_Y\";\n";
        let blanked = blank_comments_and_strings(src);
        assert_eq!(blanked.lines().count(), src.lines().count());
        assert!(blanked.contains("let a = 1;"));
        assert!(!blanked.contains("RAVEN_X"));
        assert!(!blanked.contains("RAVEN_Y"));
    }

    #[test]
    fn cfg_test_blocks_are_stripped() {
        let src = "fn live() { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap() }\n}\nfn also_live() {}\n";
        let code = strip_cfg_test(&blank_comments_and_strings(src));
        assert!(code.contains("fn live"));
        assert!(code.contains("fn also_live"));
        assert!(!code.contains("fn t()"));
    }

    #[test]
    fn env_read_rule_flags_raw_reads_and_spares_envcfg() {
        let bad = "fn f() { let v = std::env::var(\"RAVEN_SCORER\"); }\n";
        let v = lint_file(Path::new("crates/ml/src/x.rs"), bad, &docs());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "env-read");
        assert_eq!(v[0].line, 1);
        // same text inside the registry is allowed
        let ok = lint_file(Path::new("crates/columnar/src/envcfg.rs"), bad, &docs());
        assert!(ok.iter().all(|v| v.rule != "env-read"), "{ok:?}");
        // non-RAVEN env reads are fine anywhere
        let other = "fn f() { let v = std::env::var(\"HOME\"); }\n";
        assert!(lint_file(Path::new("crates/ml/src/x.rs"), other, &docs()).is_empty());
        // test code is exempt
        let test_only =
            "#[cfg(test)]\nmod tests {\n  fn f() { let _ = std::env::var(\"RAVEN_SCORER\"); }\n}\n";
        assert!(lint_file(Path::new("crates/ml/src/x.rs"), test_only, &docs()).is_empty());
    }

    #[test]
    fn serve_panic_rule_scopes_to_serve_nontest() {
        let bad = "fn f() { q.lock().unwrap(); r.lock().expect(\"oops\"); }\n";
        let v = lint_file(Path::new("crates/serve/src/server.rs"), bad, &[]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "serve-panic"));
        // the durable-storage crate is on the serving path too: every I/O
        // fault must surface as a typed error, never a panic
        let sv = lint_file(Path::new("crates/storage/src/store.rs"), bad, &[]);
        assert_eq!(sv.len(), 2, "{sv:?}");
        // other crates may unwrap
        assert!(lint_file(Path::new("crates/ml/src/x.rs"), bad, &[]).is_empty());
        // unwrap_or / unreachable are allowed in serve
        let ok = "fn f() { q.recv().unwrap_or(0); unreachable!(); }\n";
        assert!(lint_file(Path::new("crates/serve/src/server.rs"), ok, &[]).is_empty());
        // `.expect(` mentioned in a doc comment is not a violation
        let doc = "//! callers used to `.expect(\"poisoned\")` here\nfn f() {}\n";
        assert!(lint_file(Path::new("crates/serve/src/sync.rs"), doc, &[]).is_empty());
    }

    #[test]
    fn env_doc_rule_requires_table_rows() {
        let src = "fn f() { let _ = (\"RAVEN_SCORER\", \"RAVEN_UNDOCUMENTED\"); }\n";
        let v = lint_file(Path::new("crates/ml/src/x.rs"), src, &docs());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "env-doc");
        assert!(v[0].message.contains("RAVEN_UNDOCUMENTED"));
    }

    #[test]
    fn documented_vars_parse_from_table_section() {
        let lib = "//! # raven\n//!\n//! ## Environment variables\n//!\n//! | `RAVEN_SCORER` | x |\n//! | `RAVEN_VERIFY` | y |\n//!\n//! ## Quickstart\n//! RAVEN_NOT_A_ROW\n";
        let vars = documented_env_vars(lib);
        assert_eq!(
            vars,
            vec!["RAVEN_SCORER".to_string(), "RAVEN_VERIFY".into()]
        );
    }

    #[test]
    fn raven_token_extraction() {
        let toks = raven_tokens("RAVEN_A, MY_RAVEN_B, RAVEN_, RAVEN_C_ RAVEN_A");
        assert_eq!(toks, vec!["RAVEN_A".to_string(), "RAVEN_C".into()]);
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // xtask sits one level under the workspace root
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let violations = lint_repo(&root).expect("lint walks the repo");
        assert!(
            violations.is_empty(),
            "repo lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
