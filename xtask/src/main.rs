//! `cargo run -p xtask -- lint` — offline repo-invariant lint.
//!
//! Scans `crates/*/src` and `src/` (tests excluded) for the three repo
//! invariants documented in [`xtask`] (the library crate): `env-read`,
//! `serve-panic`, and `env-doc`. Prints one `path:line: [rule] message`
//! per violation and exits non-zero if any were found.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {}
        other => {
            eprintln!("usage: cargo run -p xtask -- lint");
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            return ExitCode::from(2);
        }
    }

    // xtask/ sits one level below the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives inside the workspace")
        .to_path_buf();

    match xtask::lint_repo(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
