//! Data-induced optimizations (paper §4.2): partition the Hospital table by
//! the readmission count, and let Raven compile a partition-optimized model
//! per partition using per-partition min/max statistics.
//!
//! Run with: `cargo run --release --example partitioned_models`

use raven::columnar::{partition_by_column, PartitionSpec};
use raven::prelude::*;

fn main() {
    let dataset = raven::datagen::hospital(30_000, 5);
    let table = dataset.tables[0].clone();

    let pipeline = raven::ml::train_pipeline(
        &table.to_batch().expect("batch"),
        &PipelineSpec {
            name: "stay_model".into(),
            numeric_inputs: vec!["age".into(), "bmi".into(), "glucose".into()],
            categorical_inputs: vec!["rcount".into(), "asthma".into()],
            label: dataset.label.clone(),
            model: ModelType::DecisionTree { max_depth: 12 },
            seed: 2,
        },
    )
    .expect("training succeeds");

    // Partition the table on the readmission count, like the paper's
    // `rcount` partitioning scheme (6 partitions).
    let partitioned = partition_by_column(
        &table,
        &PartitionSpec::ByDistinctValue {
            column: "rcount".into(),
        },
    )
    .expect("partitioning succeeds");
    println!(
        "hospital table partitioned on rcount into {} partitions",
        partitioned.partitions().len()
    );

    let query = "SELECT d.id, p.risk \
                 FROM PREDICT(MODEL = stay_model, DATA = hospital_stays AS d) \
                 WITH (risk float) AS p WHERE p.risk >= 0.5";

    // Without partition-aware models.
    let mut session = RavenSession::new();
    session.register_table(partitioned.clone());
    session.register_model(pipeline.clone());
    session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::None);
    session.config_mut().enable_partition_models = false;
    let plain = session.sql(query).expect("plain run");

    // With per-partition compiled models.
    session.config_mut().enable_partition_models = true;
    let partition_aware = session.sql(query).expect("partition-aware run");

    println!(
        "without partition models: {:>8.1} ms ({} rows)",
        plain.report.total_time.as_secs_f64() * 1e3,
        plain.report.output_rows
    );
    println!(
        "with partition models:    {:>8.1} ms ({} rows, {} specialized models, avg {:.1} columns pruned/partition)",
        partition_aware.report.total_time.as_secs_f64() * 1e3,
        partition_aware.report.output_rows,
        partition_aware.report.data_induced.partition_models,
        partition_aware.report.data_induced.avg_pruned_columns_per_partition
    );
    assert_eq!(plain.report.output_rows, partition_aware.report.output_rows);
    println!("results agree across both execution modes");
}
