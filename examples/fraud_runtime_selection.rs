//! Credit-card fraud scoring with explicit runtime selection: the same
//! prediction query executed on the ML runtime, translated to SQL (MLtoSQL),
//! and compiled to a tensor program on the CPU and on the simulated GPU
//! (MLtoDNN) — the paper's §5 logical-to-physical choices.
//!
//! Run with: `cargo run --release --example fraud_runtime_selection`

use raven::prelude::*;

fn main() {
    let dataset = raven::datagen::credit_card(40_000, 9);
    let table = dataset.tables[0].clone();

    // A gradient-boosting model large enough that the DNN runtime is relevant.
    let pipeline = raven::ml::train_pipeline(
        &table.to_batch().expect("batch"),
        &PipelineSpec {
            name: "fraud_model".into(),
            numeric_inputs: dataset.numeric_inputs.clone(),
            categorical_inputs: vec![],
            label: dataset.label.clone(),
            model: ModelType::GradientBoosting {
                n_estimators: 60,
                max_depth: 5,
                learning_rate: 0.1,
            },
            seed: 21,
        },
    )
    .expect("training succeeds");

    let mut session = RavenSession::new();
    session.register_table(table);
    session.register_model(pipeline);

    let query = "SELECT d.id, p.fraud_score \
                 FROM PREDICT(MODEL = fraud_model, DATA = transactions AS d) \
                 WITH (fraud_score float) AS p \
                 WHERE p.fraud_score >= 0.9";

    println!("{:<34} {:>12} {:>10}", "configuration", "time (ms)", "rows");
    let mut reference_rows = None;
    for (label, policy, device) in [
        (
            "ML runtime (no transform)",
            RuntimePolicy::Force(TransformChoice::None),
            Device::Cpu,
        ),
        (
            "MLtoSQL on the data engine",
            RuntimePolicy::Force(TransformChoice::MlToSql),
            Device::Cpu,
        ),
        (
            "MLtoDNN on CPU",
            RuntimePolicy::Force(TransformChoice::MlToDnn),
            Device::Cpu,
        ),
        (
            "MLtoDNN on simulated Tesla K80",
            RuntimePolicy::Force(TransformChoice::MlToDnn),
            Device::SimulatedGpu(GpuProfile::tesla_k80()),
        ),
        (
            "heuristic runtime selection",
            RuntimePolicy::Heuristic,
            Device::Cpu,
        ),
    ] {
        session.config_mut().runtime_policy = policy;
        session.config_mut().device = device;
        let out = session.sql(query).expect("query runs");
        let rows = out.report.output_rows;
        if let Some(r) = reference_rows {
            assert_eq!(r, rows, "all runtimes must return the same flagged rows");
        } else {
            reference_rows = Some(rows);
        }
        println!(
            "{:<34} {:>12.1} {:>10}   (chosen: {}{})",
            label,
            out.report.total_time.as_secs_f64() * 1e3,
            rows,
            out.report.transform.name(),
            if out.report.ml_time_modeled {
                ", GPU time modeled"
            } else {
                ""
            }
        );
    }
}
