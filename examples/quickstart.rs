//! Quickstart: train a pipeline, register data and model, run a prediction
//! query with Raven's optimizer, and compare against the unoptimized plan.
//!
//! Run with: `cargo run --release --example quickstart`

use raven::prelude::*;

fn main() {
    // 1. Synthesize a hospital-like dataset (the paper's Hospital workload).
    let dataset = raven::datagen::hospital(20_000, 42);
    let table = dataset.tables[0].clone();

    // 2. Train a scikit-learn-style pipeline (scaler + one-hot + gradient
    //    boosting) on that data.
    let pipeline = raven::ml::train_pipeline(
        &table.to_batch().expect("batch"),
        &PipelineSpec {
            name: "long_stay_model".into(),
            numeric_inputs: vec!["age".into(), "bmi".into(), "pulse".into(), "glucose".into()],
            categorical_inputs: vec!["asthma".into(), "rcount".into(), "gender".into()],
            label: dataset.label.clone(),
            model: ModelType::GradientBoosting {
                n_estimators: 20,
                max_depth: 3,
                learning_rate: 0.1,
            },
            seed: 7,
        },
    )
    .expect("training succeeds");
    println!("trained pipeline: {}", pipeline.summary());

    // 3. Register everything in a Raven session and run the prediction query.
    let mut session = RavenSession::new();
    session.register_table(table);
    session.register_model(pipeline);

    let query = "SELECT d.id, p.risk \
                 FROM PREDICT(MODEL = long_stay_model, DATA = hospital_stays AS d) \
                 WITH (risk float) AS p \
                 WHERE d.asthma = 1 AND p.risk >= 0.5";

    let optimized = session.sql(query).expect("optimized run");
    println!(
        "Raven (optimized):   {:>8.1} ms  [transform = {}, model features {} -> {}, removed inputs: {:?}]",
        optimized.report.total_time.as_secs_f64() * 1e3,
        optimized.report.transform.name(),
        optimized.report.cross.features_before,
        optimized.report.cross.features_after,
        optimized.report.cross.removed_inputs,
    );

    // 4. Re-run with every optimization disabled (the paper's Raven (no-opt)).
    *session.config_mut() = RavenConfig::no_opt();
    let baseline = session.sql(query).expect("baseline run");
    println!(
        "Raven (no-opt):      {:>8.1} ms",
        baseline.report.total_time.as_secs_f64() * 1e3
    );
    println!(
        "high-risk asthma patients found: {} (same in both runs: {})",
        optimized.report.output_rows,
        optimized.report.output_rows == baseline.report.output_rows
    );
}
