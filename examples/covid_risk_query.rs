//! The paper's running example (Fig. 2): a COVID-risk model over a 3-way join
//! of patient_info, pulmonary_test, and blood_test, queried for asthma
//! patients at high risk. Shows predicate-based model pruning, model
//! projection pushdown across joins, and join elimination working together.
//!
//! Run with: `cargo run --release --example covid_risk_query`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raven::prelude::*;

fn main() {
    let n = 30_000usize;
    let mut rng = StdRng::seed_from_u64(11);

    // patient_info(id, age, bmi, asthma, hypertension)
    let age: Vec<f64> = (0..n).map(|_| rng.gen_range(18.0..95.0)).collect();
    let bmi: Vec<f64> = (0..n).map(|_| rng.gen_range(16.0..45.0)).collect();
    let asthma: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
    let hypertension: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
    let patient_info = TableBuilder::new("patient_info")
        .add_i64("id", (0..n as i64).collect())
        .add_f64("age", age.clone())
        .add_f64("bmi", bmi.clone())
        .add_i64("asthma", asthma.clone())
        .add_i64("hypertension", hypertension.clone())
        .build()
        .unwrap();

    // pulmonary_test(id, fev1, o2_saturation)
    let fev1: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
    let pulmonary_test = TableBuilder::new("pulmonary_test")
        .add_i64("id", (0..n as i64).collect())
        .add_f64("fev1", fev1.clone())
        .add_f64(
            "o2_saturation",
            (0..n).map(|_| rng.gen_range(88.0..100.0)).collect(),
        )
        .build()
        .unwrap();

    // blood_test(id, crp, d_dimer)
    let crp: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..30.0)).collect();
    let blood_test = TableBuilder::new("blood_test")
        .add_i64("id", (0..n as i64).collect())
        .add_f64("crp", crp.clone())
        .add_f64("d_dimer", (0..n).map(|_| rng.gen_range(0.0..3.0)).collect())
        .build()
        .unwrap();

    // Train the covid_risk pipeline over the joined view.
    let label: Vec<f64> = (0..n)
        .map(|i| {
            let risk = 0.05 * (age[i] - 60.0)
                + 0.05 * (bmi[i] - 32.0)
                + 1.2 * asthma[i] as f64
                + 0.6 * hypertension[i] as f64
                - 0.4 * fev1[i]
                + 0.05 * crp[i];
            if risk > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let training = patient_info
        .to_batch()
        .unwrap()
        .with_column(
            Field::new("fev1", DataType::Float64),
            std::sync::Arc::new(Column::Float64(fev1)),
        )
        .unwrap()
        .with_column(
            Field::new("crp", DataType::Float64),
            std::sync::Arc::new(Column::Float64(crp)),
        )
        .unwrap()
        .with_column(
            Field::new("risk_label", DataType::Float64),
            std::sync::Arc::new(Column::Float64(label)),
        )
        .unwrap();
    let covid_risk = raven::ml::train_pipeline(
        &training,
        &PipelineSpec {
            name: "covid_risk.onnx".into(),
            numeric_inputs: vec!["age".into(), "bmi".into(), "fev1".into(), "crp".into()],
            categorical_inputs: vec!["asthma".into(), "hypertension".into()],
            label: "risk_label".into(),
            model: ModelType::DecisionTree { max_depth: 8 },
            seed: 3,
        },
    )
    .expect("training succeeds");
    println!("trained pipeline: {}", covid_risk.summary());

    let mut session = RavenSession::new();
    session.register_table(patient_info);
    session.register_table(pulmonary_test);
    session.register_table(blood_test);
    session.register_model(covid_risk);

    // The prediction query of Fig. 2 (➊).
    let query = "\
        WITH data AS (\
            SELECT * FROM patient_info AS pi \
            JOIN pulmonary_test AS pt ON id = id \
            JOIN blood_test AS bt ON id = id) \
        SELECT d.id \
        FROM PREDICT(MODEL = covid_risk.onnx, DATA = data AS d) \
        WITH (risk_of_covid float) AS p \
        WHERE d.asthma = 1 AND p.risk_of_covid >= 0.5";

    let optimized = session.sql(query).expect("optimized run");
    println!(
        "Raven (optimized): {:>8.1} ms  transform={} pruned model nodes {} -> {}  removed inputs {:?}",
        optimized.report.total_time.as_secs_f64() * 1e3,
        optimized.report.transform.name(),
        optimized.report.cross.model_nodes_before,
        optimized.report.cross.model_nodes_after,
        optimized.report.cross.removed_inputs,
    );

    *session.config_mut() = RavenConfig::no_opt();
    let unopt = session.sql(query).expect("unoptimized run");
    println!(
        "Raven (no-opt):    {:>8.1} ms",
        unopt.report.total_time.as_secs_f64() * 1e3
    );
    println!(
        "asthma patients in the high-risk COVID group: {} (results agree: {})",
        optimized.report.output_rows,
        optimized.report.output_rows == unopt.report.output_rows
    );
}
