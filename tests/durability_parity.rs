//! Durable-catalog parity suite (ISSUE 7): the recovery oracle is **bitwise
//! identity** — a session recovered from `RAVEN_DATA_DIR` (snapshot + journal
//! replay, no clean shutdown required) must be indistinguishable from a
//! session that never restarted: same schemas, same column bits (NaN
//! payloads, -0.0), same epochs, same query results.

use raven::prelude::*;
use raven_columnar::{partition_by_column, PartitionSpec, TableBuilder};
use raven_core::RuntimePolicy;
use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode};
use raven_serve::{Server, ServerConfig};
use std::path::PathBuf;

mod common;

const QUERY: &str = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.age >= 30 AND p.risk >= 0.0";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raven-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn patient_table(rows: usize, seed: u64) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let table = TableBuilder::new("patients")
        .add_i64("id", (0..rows as i64).collect())
        .add_f64(
            "age",
            (0..rows)
                .map(|i| {
                    // seed a few non-finite / signed-zero bits into a column
                    // the model does not read, so results stay well-defined
                    // while the catalog still has to round-trip them
                    rng.gen_range(18.0..95.0) + (i as f64) * 0.0
                })
                .collect(),
        )
        .add_f64(
            "noise",
            (0..rows)
                .map(|i| match i % 5 {
                    0 => f64::NAN,
                    1 => -0.0,
                    2 => f64::INFINITY,
                    _ => rng.gen_range(-1.0..1.0),
                })
                .collect(),
        )
        .add_f64(
            "rcount",
            (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect(),
        )
        .build()
        .unwrap();
    partition_by_column(
        &table,
        &PartitionSpec::ByRange {
            column: "age".into(),
            partitions: 4,
        },
    )
    .unwrap()
}

fn risk_pipeline(high_leaf: f64) -> Pipeline {
    let tree = Tree {
        nodes: vec![
            TreeNode::Branch {
                feature: 0,
                threshold: 60.0,
                left: 1,
                right: 2,
            },
            TreeNode::Leaf { value: 0.1 },
            TreeNode::Leaf { value: high_leaf },
        ],
        root: 0,
    };
    Pipeline::new(
        "risk_model",
        vec![
            PipelineInput {
                name: "age".into(),
                kind: InputKind::Numeric,
            },
            PipelineInput {
                name: "rcount".into(),
                kind: InputKind::Numeric,
            },
        ],
        vec![
            PipelineNode {
                name: "concat".into(),
                op: Operator::Concat,
                inputs: vec!["age".into(), "rcount".into()],
                output: "features".into(),
            },
            PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 2)),
                inputs: vec!["features".into()],
                output: "score".into(),
            },
        ],
        "score",
    )
    .unwrap()
}

fn config() -> RavenConfig {
    RavenConfig {
        runtime_policy: RuntimePolicy::NoTransform,
        degree_of_parallelism: common::extra_dop().unwrap_or(1),
        ..Default::default()
    }
}

/// Canonical byte-level rendering of a batch (plain `{:?}` would include the
/// schema's name→index HashMap, whose iteration order is nondeterministic).
fn canonical(batch: &Batch) -> String {
    format!("{:?} {:?}", batch.schema().names(), batch.columns())
}

/// Canonical rendering of a whole catalog: every table's schema, partition
/// layout, and column bits.
fn canonical_catalog(catalog: &Catalog) -> String {
    let mut out = String::new();
    for name in catalog.table_names() {
        let t = catalog.table(&name).unwrap();
        out.push_str(&format!(
            "{name} pc={:?} parts={} stats={:?}\n",
            t.partition_column(),
            t.partitions().len(),
            t.statistics()
        ));
        for p in t.partitions() {
            out.push_str(&canonical(p));
            out.push('\n');
        }
    }
    out
}

/// Journal-only recovery (no snapshot, simulated crash = drop without any
/// shutdown hook) is bitwise identical to a never-restarted session.
#[test]
fn warm_restart_matches_never_restarted_session() {
    let dir = tmp_dir("journal-only");
    let table = patient_table(300, 11);
    let pipeline = risk_pipeline(0.9);

    let mut reference = RavenSession::with_config(config());
    reference.register_table(table.clone());
    reference.register_model(pipeline.clone());
    let ref_out = reference.sql(QUERY).unwrap();

    {
        let (mut durable, info) = RavenSession::open_durable(&dir, config()).unwrap();
        assert!(!info.snapshot_loaded);
        assert_eq!(info.journal_records_replayed, 0);
        durable.register_table(table);
        durable.register_model(pipeline);
        let out = durable.sql(QUERY).unwrap();
        assert_eq!(canonical(&out.batch), canonical(&ref_out.batch));
        // crash: `durable` is dropped without any clean-shutdown step
    }

    let (recovered, info) = RavenSession::open_durable(&dir, config()).unwrap();
    assert!(!info.snapshot_loaded);
    assert_eq!(info.journal_records_replayed, 2);
    assert!(!info.journal_tail_truncated);
    assert_eq!(recovered.catalog().epoch(), reference.catalog().epoch());
    assert_eq!(recovered.registry().epoch(), reference.registry().epoch());
    assert_eq!(
        canonical_catalog(recovered.catalog()),
        canonical_catalog(reference.catalog())
    );
    let out = recovered.sql(QUERY).unwrap();
    assert_eq!(canonical(&out.batch), canonical(&ref_out.batch));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot + post-snapshot journal records compose to the same state the
/// never-restarted session reached.
#[test]
fn snapshot_and_journal_compose_bitwise() {
    let dir = tmp_dir("compose");
    let table_v1 = patient_table(200, 21);
    let table_v2 = patient_table(260, 22); // replaces v1 after the snapshot
    let pipeline = risk_pipeline(0.8);

    let mut reference = RavenSession::with_config(config());
    reference.register_table(table_v1.clone());
    reference.register_model(pipeline.clone());
    reference.register_table(table_v2.clone());
    let ref_out = reference.sql(QUERY).unwrap();

    {
        let (mut durable, _) = RavenSession::open_durable(&dir, config()).unwrap();
        durable.register_table(table_v1);
        durable.register_model(pipeline);
        durable.snapshot_with_plans(&[QUERY.to_string()]).unwrap();
        durable.register_table(table_v2); // lands in the compacted journal
    }

    let (recovered, info) = RavenSession::open_durable(&dir, config()).unwrap();
    assert!(info.snapshot_loaded);
    assert_eq!(info.journal_records_replayed, 1);
    assert_eq!(info.plan_fingerprints, vec![QUERY.to_string()]);
    assert_eq!(recovered.catalog().epoch(), reference.catalog().epoch());
    assert_eq!(recovered.registry().epoch(), reference.registry().epoch());
    assert_eq!(
        canonical_catalog(recovered.catalog()),
        canonical_catalog(reference.catalog())
    );
    let out = recovered.sql(QUERY).unwrap();
    assert_eq!(canonical(&out.batch), canonical(&ref_out.batch));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 6 regression: epochs persist across snapshot + crash, so a warm
/// restart can never hand out a pre-crash epoch for different content (which
/// would let a stale compiled-model cache entry alias fresh state). Register,
/// snapshot, register again, crash, restart: the epoch counter must resume at
/// the pre-crash value and every new registration must move strictly beyond
/// it.
#[test]
fn epochs_resume_beyond_pre_crash_values() {
    let dir = tmp_dir("epochs");
    let (pre_crash_cat, pre_crash_reg) = {
        let (mut durable, _) = RavenSession::open_durable(&dir, config()).unwrap();
        durable.register_table(patient_table(50, 31)); // catalog epoch 1
        durable.register_model(risk_pipeline(0.9)); // registry epoch 1
        durable.snapshot_with_plans(&[]).unwrap();
        durable.register_model(risk_pipeline(0.2)); // registry epoch 2, journal only
        (durable.catalog().epoch(), durable.registry().epoch())
        // crash
    };
    assert_eq!((pre_crash_cat, pre_crash_reg), (1, 2));

    let (mut recovered, info) = RavenSession::open_durable(&dir, config()).unwrap();
    assert!(info.snapshot_loaded);
    assert_eq!(info.journal_records_replayed, 1);
    assert_eq!(recovered.catalog().epoch(), pre_crash_cat);
    assert_eq!(recovered.registry().epoch(), pre_crash_reg);
    // the recovered model is the *post*-snapshot one
    let out = recovered.sql(QUERY).unwrap();
    let risks = out.batch.column_by_name("risk").unwrap();
    assert!(risks.as_f64().unwrap().iter().all(|r| *r <= 0.2 + 1e-12));
    // new mutations advance strictly beyond every pre-crash epoch
    recovered.register_model(risk_pipeline(0.5));
    assert_eq!(recovered.registry().epoch(), pre_crash_reg + 1);
    recovered.register_table(patient_table(50, 32));
    assert_eq!(recovered.catalog().epoch(), pre_crash_cat + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn journal tail (crash mid-append) is truncated: the half-written
/// mutation is simply not there, everything before it is intact.
#[test]
fn torn_tail_recovers_the_intact_prefix() {
    let dir = tmp_dir("torn");
    {
        let (mut durable, _) = RavenSession::open_durable(&dir, config()).unwrap();
        durable.register_table(patient_table(60, 41));
        durable.register_model(risk_pipeline(0.9));
    }
    // chop 3 bytes off the journal: the model registration record is torn
    let journal = dir.join(raven::storage::JOURNAL_FILE);
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 3]).unwrap();

    let (recovered, info) = RavenSession::open_durable(&dir, config()).unwrap();
    assert!(info.journal_tail_truncated);
    assert_eq!(info.journal_records_replayed, 1);
    assert_eq!(recovered.catalog().epoch(), 1);
    assert_eq!(recovered.registry().epoch(), 0);
    assert!(recovered.catalog().contains("patients"));
    assert!(recovered.registry().model_names().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end through the serving tier: restart between registration and
/// query. The restarted server must pre-warm the persisted hot plans and
/// serve bitwise-identical results, and the warm-restart metrics must be
/// populated.
#[test]
fn server_warm_restart_prewarms_and_matches() {
    let dir = tmp_dir("server");
    let server_config = ServerConfig {
        worker_threads: 2,
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let first = {
        let server = Server::open_durable(server_config.clone(), config()).unwrap();
        server.register_table(patient_table(150, 51)).unwrap();
        server.register_model(risk_pipeline(0.9)).unwrap();
        let out = server.sql(QUERY).unwrap();
        server.snapshot_now().unwrap();
        drop(server); // no clean shutdown of the data dir
        canonical(&out.batch)
    };

    let server = Server::open_durable(server_config, config()).unwrap();
    let report = server.report();
    assert!(report.warm_restart_ms.is_some());
    assert_eq!(report.prewarmed_plans, 1, "hot plan must be re-prepared");
    assert_eq!(
        report.journal_records_replayed, 0,
        "snapshot compaction left an empty journal"
    );
    let out = server.sql(QUERY).unwrap();
    assert_eq!(canonical(&out.batch), first);
    let report = server.shutdown();
    assert!(
        report.plan_cache_hits >= 1,
        "first post-restart request must hit the pre-warmed plan cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
