//! Helpers shared by the root-level parity suites.

/// The extra degree of parallelism requested via `RAVEN_TEST_DOP`, if any.
/// CI re-runs the parity suites with `RAVEN_TEST_DOP=8` — oversubscribed
/// relative to the runner's cores — to stress the shared work-stealing pool.
pub fn extra_dop() -> Option<usize> {
    std::env::var("RAVEN_TEST_DOP")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|d| *d > 0)
}
