//! Property tests for the vectorized scoring kernels (PR 4 + PR 5): the
//! flattened struct-of-arrays scorer must be **bit-identical** to the
//! interpreted row-walker across every ensemble kind, random tree shapes,
//! NaN/missing feature values, and empty inputs; the fused featurize→score
//! pass must be bit-identical to the per-operator interpreted path across
//! featurizer stacks × unknown/NaN categories × empty batches × all three
//! linear models; the AVX2 SIMD tier must agree bit-for-bit with the scalar
//! cursor groups; and selection-vector execution must produce row-identical
//! results to the materializing baseline, with zero intermediate batch
//! copies.

use proptest::prelude::*;
use raven_columnar::TableBuilder;
use raven_ml::{
    force_fusion, force_scorer, force_simd, EnsembleKind, FlatEnsemble, Matrix, ScorerMode, Tree,
    TreeEnsemble, TreeNode,
};
use raven_relational::{col, lit, ExecutionContext, Executor, LogicalPlan};

mod common;

/// Build a random binary tree over `n_features` features with the given
/// depth budget. `shape` drives all structural choices deterministically.
fn random_tree(shape: u64, n_features: usize, max_depth: usize) -> Tree {
    fn grow(
        nodes: &mut Vec<TreeNode>,
        shape: &mut u64,
        n_features: usize,
        depth_left: usize,
    ) -> usize {
        let pick = *shape & 0xf;
        *shape = shape.rotate_right(7).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        // leaf values include 0.0, -0.0, and negatives to pin sign handling
        if depth_left == 0 || pick < 5 {
            let value = match pick % 5 {
                0 => 0.0,
                1 => -0.0,
                2 => 1.0,
                3 => -2.5,
                _ => 0.25,
            };
            nodes.push(TreeNode::Leaf { value });
            return nodes.len() - 1;
        }
        let feature = (pick as usize) % n_features;
        let threshold = match pick % 4 {
            0 => 0.0,
            1 => -1.0,
            2 => 42.5,
            _ => 7.0,
        };
        let pos = nodes.len();
        nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
        let left = grow(nodes, shape, n_features, depth_left - 1);
        let right = grow(nodes, shape, n_features, depth_left - 1);
        nodes[pos] = TreeNode::Branch {
            feature,
            threshold,
            left,
            right,
        };
        pos
    }
    let mut nodes = Vec::new();
    let mut s = shape | 1;
    let root = grow(&mut nodes, &mut s, n_features, max_depth);
    Tree { nodes, root }
}

fn all_kinds() -> [EnsembleKind; 5] {
    [
        EnsembleKind::DecisionTreeClassifier,
        EnsembleKind::DecisionTreeRegressor,
        EnsembleKind::RandomForestClassifier,
        EnsembleKind::GradientBoostingClassifier,
        EnsembleKind::GradientBoostingRegressor,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flattened vs interpreted scoring is bit-identical for every ensemble
    /// kind × random trees × NaN/missing rows × empty batches.
    #[test]
    fn flattened_scorer_is_bit_identical(
        shape in 0u64..0xffff_ffff_ffff,
        n_trees in 0usize..5,
        n_features in 1usize..5,
        rows in 0usize..180,
        nan_stride in 2usize..6,
        learning_rate in 0.05f64..1.0,
        base_score in -1.0f64..1.0,
    ) {
        let trees: Vec<Tree> = (0..n_trees)
            .map(|t| random_tree(shape.wrapping_add(t as u64 * 7919), n_features, 4))
            .collect();
        // feature values cross every threshold the generator uses, plus NaN
        // (the in-band missing marker) at a varying stride
        let columns: Vec<Vec<f64>> = (0..n_features)
            .map(|f| {
                (0..rows)
                    .map(|r| {
                        if (r + f) % nan_stride == 0 {
                            f64::NAN
                        } else {
                            ((r * 13 + f * 29) % 101) as f64 - 50.0
                        }
                    })
                    .collect()
            })
            .collect();
        let x = Matrix::from_columns(&columns).unwrap();
        for kind in all_kinds() {
            let ensemble = TreeEnsemble {
                kind,
                trees: trees.clone(),
                n_features,
                learning_rate,
                base_score,
            };
            let flat = FlatEnsemble::compile(&ensemble).unwrap();
            let interpreted = ensemble.predict(&x).unwrap();
            let flattened = flat.predict(&x).unwrap();
            prop_assert_eq!(interpreted.rows(), flattened.rows());
            for r in 0..rows {
                prop_assert_eq!(
                    interpreted.get(r, 0).to_bits(),
                    flattened.get(r, 0).to_bits(),
                    "kind {:?}, row {}: interpreted {} vs flattened {}",
                    kind, r, interpreted.get(r, 0), flattened.get(r, 0)
                );
            }
        }
    }

    /// Selection-vector plans produce row-identical results to the
    /// materializing baseline across random filtered workloads, and only the
    /// baseline performs intermediate batch copies.
    #[test]
    fn selection_vector_plans_match_materializing_plans(
        rows in 1usize..200,
        partitions in 1usize..6,
        lo in 0i64..80,
        width in 1i64..120,
        limit_sel in 0usize..3,
    ) {
        let table = TableBuilder::new("t")
            .add_i64("id", (0..rows as i64).collect())
            .add_f64("x", (0..rows).map(|i| (i % 97) as f64).collect())
            .add_utf8(
                "tag",
                (0..rows).map(|i| ((i % 3) as i64).to_string()).collect(),
            )
            .build()
            .unwrap();
        let table = raven_columnar::partition_by_column(
            &table,
            &raven_columnar::PartitionSpec::RoundRobin {
                partitions: partitions.min(rows),
            },
        )
        .unwrap();
        let mut catalog = raven_relational::Catalog::new();
        catalog.register(table);
        let mut plan = LogicalPlan::scan("t")
            .filter(col("id").gt_eq(lit(lo)))
            .filter(col("id").lt(lit(lo + width)))
            .project(vec![col("id"), col("x"), col("tag")]);
        if limit_sel == 1 {
            plan = plan.limit((width / 2).max(1) as usize);
        }
        let run = |selection: bool| {
            let exec = Executor::new();
            let ctx = ExecutionContext {
                selection_vectors: selection,
                ..ExecutionContext::with_dop(2)
            };
            let out = exec.execute(&plan, &catalog, &ctx).unwrap();
            (out, exec.metrics().intermediate_materializations())
        };
        let (sel_out, sel_copies) = run(true);
        let (mat_out, mat_copies) = run(false);
        prop_assert_eq!(sel_copies, 0, "selection vectors must never copy mid-pipeline");
        prop_assert!(mat_copies > 0, "the baseline copies at every filter");
        prop_assert_eq!(sel_out.num_rows(), mat_out.num_rows());
        for c in 0..sel_out.num_columns() {
            prop_assert_eq!(
                format!("{:?}", sel_out.column(c).unwrap()),
                format!("{:?}", mat_out.column(c).unwrap())
            );
        }
    }

    /// The fused featurize→score pass is bit-identical to the per-operator
    /// interpreted path across random featurizer stacks (imputer / scaler /
    /// binarizer chains, one-hot and label encoders over string-, integer-
    /// and float-sourced categorical columns with unknown and NaN
    /// categories), empty batches, all three linear models, and tree
    /// ensembles — and the AVX2 SIMD tier agrees with the scalar groups on
    /// the same corpus.
    #[test]
    fn fused_featurize_score_is_bit_identical(
        seed in 0u64..0xffff_ffff,
        rows in 0usize..150,
        model_kind in 0usize..5,
        featurizer_mask in 0usize..8,
        label_encode in 0usize..2,
        nan_stride in 2usize..6,
        cat_source in 0usize..3,
    ) {
        let (use_imputer, use_scaler, use_binarizer) = (
            featurizer_mask & 1 != 0,
            featurizer_mask & 2 != 0,
            featurizer_mask & 4 != 0,
        );
        let label_encode = label_encode == 1;
        use raven_ml::{
            CompiledPipeline, Imputer, InputKind, LabelEncoder, MlRuntime, OneHotEncoder,
            Operator, Pipeline, PipelineInput, PipelineNode, Scaler,
            LinearRegressionModel, LinearSvmModel, LogisticRegressionModel, Binarizer,
        };
        let mix = |k: u64| seed.rotate_left((k % 63) as u32).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // --- source batch: two numerics (NaN-laced) + one categorical ---
        let a: Vec<f64> = (0..rows)
            .map(|r| {
                if r % nan_stride == 0 {
                    f64::NAN
                } else {
                    ((mix(r as u64) % 97) as f64) - 48.0
                }
            })
            .collect();
        let b: Vec<i64> = (0..rows).map(|r| (mix(r as u64 + 7) % 13) as i64 - 6).collect();
        let mut builder = TableBuilder::new("t").add_f64("a", a).add_i64("b", b);
        builder = match cat_source {
            // strings, incl. values outside the category list
            0 => builder.add_utf8(
                "cat",
                (0..rows)
                    .map(|r| ["x", "y", "z", "w", "NaN"][(mix(r as u64 + 13) % 5) as usize].into())
                    .collect(),
            ),
            // integers (the runtime renders them via to_string)
            1 => builder.add_i64(
                "cat",
                (0..rows).map(|r| (mix(r as u64 + 17) % 5) as i64 - 1).collect(),
            ),
            // floats incl. NaN / -0.0 (format_numeric_category semantics)
            _ => builder.add_f64(
                "cat",
                (0..rows)
                    .map(|r| [0.0, 1.0, 2.5, f64::NAN, -0.0, 7.0][(mix(r as u64 + 23) % 6) as usize])
                    .collect(),
            ),
        };
        let batch = builder.build_batch().unwrap();

        // --- pipeline: numeric stack → concat with encoded categorical → model ---
        let mut nodes = Vec::new();
        let mut num_value = None;
        let mut chain_input = vec!["a".to_string(), "b".to_string()];
        if use_imputer {
            nodes.push(PipelineNode {
                name: "imputer".into(),
                op: Operator::Imputer(Imputer {
                    fill: vec![(mix(31) % 9) as f64, -1.5],
                }),
                inputs: chain_input.clone(),
                output: "imputed".into(),
            });
            chain_input = vec!["imputed".into()];
            num_value = Some("imputed".to_string());
        }
        if use_scaler {
            nodes.push(PipelineNode {
                name: "scaler".into(),
                op: Operator::Scaler(Scaler {
                    offsets: vec![(mix(37) % 11) as f64 - 5.0, 2.0],
                    scales: vec![0.25, (mix(41) % 7) as f64 * 0.5 - 1.0],
                }),
                inputs: chain_input.clone(),
                output: "scaled".into(),
            });
            chain_input = vec!["scaled".into()];
            num_value = Some("scaled".to_string());
        }
        if use_binarizer {
            nodes.push(PipelineNode {
                name: "bin".into(),
                op: Operator::Binarizer(Binarizer {
                    threshold: (mix(43) % 9) as f64 - 4.0,
                }),
                inputs: chain_input.clone(),
                output: "binned".into(),
            });
            num_value = Some("binned".to_string());
        }
        // untouched inputs feed the concat directly (implicit multi-input)
        let num_inputs: Vec<String> = match num_value {
            Some(v) => vec![v],
            None => vec!["a".into(), "b".into()],
        };
        // category lists deliberately mix hits, misses, numeric-looking and
        // literal-"NaN" entries
        let cat_width = if label_encode {
            nodes.push(PipelineNode {
                name: "label".into(),
                op: Operator::LabelEncoder(LabelEncoder {
                    classes: vec!["x".into(), "1".into(), "-1".into(), "NaN".into()],
                }),
                inputs: vec!["cat".into()],
                output: "enc".into(),
            });
            1
        } else {
            let categories: Vec<String> = ["0", "1", "2.5", "x", "y", "NaN", "3", "-1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let width = categories.len();
            nodes.push(PipelineNode {
                name: "ohe".into(),
                op: Operator::OneHotEncoder(OneHotEncoder { categories }),
                inputs: vec!["cat".into()],
                output: "enc".into(),
            });
            width
        };
        let mut concat_inputs = num_inputs;
        concat_inputs.push("enc".into());
        nodes.push(PipelineNode {
            name: "concat".into(),
            op: Operator::Concat,
            inputs: concat_inputs,
            output: "features".into(),
        });
        let width = 2 + cat_width;
        let weights: Vec<f64> = (0..width)
            .map(|i| (mix(i as u64 + 51) % 21) as f64 * 0.1 - 1.0)
            .collect();
        let model_op = match model_kind {
            0 => Operator::LinearRegression(LinearRegressionModel {
                weights,
                intercept: 0.5,
            }),
            1 => Operator::LogisticRegression(LogisticRegressionModel {
                weights,
                intercept: -0.25,
            }),
            2 => Operator::LinearSvm(LinearSvmModel {
                weights,
                intercept: 0.1,
            }),
            k => {
                let trees: Vec<Tree> = (0..3)
                    .map(|t| random_tree(mix(t as u64 + 61), width, if k == 3 { 3 } else { 5 }))
                    .collect();
                Operator::TreeEnsemble(TreeEnsemble {
                    kind: EnsembleKind::GradientBoostingClassifier,
                    trees,
                    n_features: width,
                    learning_rate: 0.3,
                    base_score: 0.1,
                })
            }
        };
        nodes.push(PipelineNode {
            name: "model".into(),
            op: model_op,
            inputs: vec!["features".into()],
            output: "score".into(),
        });
        let pipeline = Pipeline::new(
            "fused_parity",
            vec![
                PipelineInput { name: "a".into(), kind: InputKind::Numeric },
                PipelineInput { name: "b".into(), kind: InputKind::Numeric },
                // string-, integer- and float-backed columns all bind as
                // categorical inputs (the runtime renders them to strings;
                // the fused path must match without rendering)
                PipelineInput {
                    name: "cat".into(),
                    kind: InputKind::Categorical,
                },
            ],
            nodes,
            "score",
        )
        .unwrap();

        let compiled = CompiledPipeline::compile(&pipeline).unwrap();
        prop_assert!(compiled.fused().is_some(), "stack should fuse");
        let rt = MlRuntime::new();
        // oracle: fully interpreted operator graph
        force_scorer(Some(ScorerMode::Interpreted));
        let interpreted = rt.run_batch_compiled(&compiled, &batch);
        force_scorer(None);
        // PR 4 baseline: per-operator featurizers + flat tree kernels
        force_fusion(Some(false));
        let per_op = rt.run_batch_compiled(&compiled, &batch);
        force_fusion(None);
        // PR 5: fused pass, with the SIMD tier both off and on
        force_simd(Some(false));
        let fused_scalar = rt.run_batch_compiled(&compiled, &batch);
        force_simd(Some(true));
        let fused_simd = rt.run_batch_compiled(&compiled, &batch);
        force_simd(None);
        let interpreted = interpreted.unwrap();
        let per_op = per_op.unwrap();
        let fused_scalar = fused_scalar.unwrap();
        let fused_simd = fused_simd.unwrap();
        prop_assert_eq!(interpreted.len(), rows);
        prop_assert_eq!(per_op.len(), rows);
        prop_assert_eq!(fused_scalar.len(), rows);
        prop_assert_eq!(fused_simd.len(), rows);
        for r in 0..rows {
            prop_assert_eq!(
                interpreted[r].to_bits(), per_op[r].to_bits(),
                "row {}: interpreted {} vs per-op {}", r, interpreted[r], per_op[r]
            );
            prop_assert_eq!(
                interpreted[r].to_bits(), fused_scalar[r].to_bits(),
                "row {}: interpreted {} vs fused {}", r, interpreted[r], fused_scalar[r]
            );
            prop_assert_eq!(
                fused_scalar[r].to_bits(), fused_simd[r].to_bits(),
                "row {}: fused scalar {} vs fused simd {}", r, fused_scalar[r], fused_simd[r]
            );
        }
    }

    /// End-to-end: a full prediction query scores identically under the
    /// flattened and interpreted scorer modes (the serving-path parity the
    /// `RAVEN_SCORER=interpreted` baseline pins in CI).
    #[test]
    fn session_scores_identically_under_both_scorer_modes(
        rows in 20usize..120,
        seed in 0u64..500,
        threshold in 20.0f64..90.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = TableBuilder::new("patients")
            .add_i64("id", (0..rows as i64).collect())
            .add_f64("age", (0..rows).map(|_| rng.gen_range(18.0..95.0)).collect())
            .add_f64("rcount", (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect())
            .build()
            .unwrap();
        let tree = random_tree(seed | 1, 2, 3);
        let pipeline = raven_ml::Pipeline::new(
            "risk_model",
            vec![
                raven_ml::PipelineInput { name: "age".into(), kind: raven_ml::InputKind::Numeric },
                raven_ml::PipelineInput { name: "rcount".into(), kind: raven_ml::InputKind::Numeric },
            ],
            vec![
                raven_ml::PipelineNode {
                    name: "concat".into(),
                    op: raven_ml::Operator::Concat,
                    inputs: vec!["age".into(), "rcount".into()],
                    output: "features".into(),
                },
                raven_ml::PipelineNode {
                    name: "model".into(),
                    op: raven_ml::Operator::TreeEnsemble(TreeEnsemble {
                        kind: EnsembleKind::GradientBoostingClassifier,
                        trees: vec![tree.clone(), tree],
                        n_features: 2,
                        learning_rate: 0.3,
                        base_score: 0.1,
                    }),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let mut session = raven_core::RavenSession::new();
        session.register_table(table);
        session.register_model(pipeline);
        session.config_mut().runtime_policy = raven_core::RuntimePolicy::NoTransform;
        let query = format!(
            "SELECT d.id, p.score FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (score float) AS p WHERE d.age >= {threshold}"
        );
        force_scorer(Some(ScorerMode::Flattened));
        let flattened = session.sql(&query);
        force_scorer(Some(ScorerMode::Interpreted));
        let interpreted = session.sql(&query);
        force_scorer(None);
        let (flattened, interpreted) = (flattened.unwrap(), interpreted.unwrap());
        prop_assert_eq!(flattened.batch.num_rows(), interpreted.batch.num_rows());
        let fa = flattened.batch.column_by_name("score").unwrap();
        let ia = interpreted.batch.column_by_name("score").unwrap();
        for (a, b) in fa.as_f64().unwrap().iter().zip(ia.as_f64().unwrap()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // the flattened streaming run performed zero intermediate copies
        // (unless RAVEN_SELECTION=materialize pinned the copying baseline)
        if raven_relational::selection_vectors_default() {
            prop_assert_eq!(flattened.report.intermediate_materializations, 0);
        } else {
            prop_assert!(flattened.report.intermediate_materializations > 0);
        }
    }
}

/// Out-of-range feature indices fail with a typed error at compile /
/// validation time instead of silently scoring NaN.
#[test]
fn out_of_range_features_are_rejected() {
    let bad = TreeEnsemble::single_tree(
        Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 7,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
            root: 0,
        },
        2,
    );
    assert!(matches!(
        FlatEnsemble::compile(&bad),
        Err(raven_ml::MlError::InvalidModel(_))
    ));
    assert!(matches!(
        bad.validate_features(),
        Err(raven_ml::MlError::InvalidModel(_))
    ));
    // a pipeline carrying the malformed model fails validation on build
    let p = raven_ml::Pipeline::new(
        "bad",
        vec![raven_ml::PipelineInput {
            name: "x".into(),
            kind: raven_ml::InputKind::Numeric,
        }],
        vec![raven_ml::PipelineNode {
            name: "model".into(),
            op: raven_ml::Operator::TreeEnsemble(bad),
            inputs: vec!["x".into()],
            output: "score".into(),
        }],
        "score",
    );
    assert!(p.is_err());
}

/// `common::extra_dop` is exercised by the other suites; referencing it here
/// keeps the shared module warning-free when this suite compiles alone.
#[test]
fn extra_dop_parses() {
    let _ = common::extra_dop();
}
