//! Property tests for the vectorized scoring kernels (PR 4): the flattened
//! struct-of-arrays scorer must be **bit-identical** to the interpreted
//! row-walker across every ensemble kind, random tree shapes, NaN/missing
//! feature values, and empty inputs — and selection-vector execution must
//! produce row-identical results to the materializing baseline, with zero
//! intermediate batch copies.

use proptest::prelude::*;
use raven_columnar::TableBuilder;
use raven_ml::{
    force_scorer, EnsembleKind, FlatEnsemble, Matrix, ScorerMode, Tree, TreeEnsemble, TreeNode,
};
use raven_relational::{col, lit, ExecutionContext, Executor, LogicalPlan};

mod common;

/// Build a random binary tree over `n_features` features with the given
/// depth budget. `shape` drives all structural choices deterministically.
fn random_tree(shape: u64, n_features: usize, max_depth: usize) -> Tree {
    fn grow(
        nodes: &mut Vec<TreeNode>,
        shape: &mut u64,
        n_features: usize,
        depth_left: usize,
    ) -> usize {
        let pick = *shape & 0xf;
        *shape = shape.rotate_right(7).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        // leaf values include 0.0, -0.0, and negatives to pin sign handling
        if depth_left == 0 || pick < 5 {
            let value = match pick % 5 {
                0 => 0.0,
                1 => -0.0,
                2 => 1.0,
                3 => -2.5,
                _ => 0.25,
            };
            nodes.push(TreeNode::Leaf { value });
            return nodes.len() - 1;
        }
        let feature = (pick as usize) % n_features;
        let threshold = match pick % 4 {
            0 => 0.0,
            1 => -1.0,
            2 => 42.5,
            _ => 7.0,
        };
        let pos = nodes.len();
        nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
        let left = grow(nodes, shape, n_features, depth_left - 1);
        let right = grow(nodes, shape, n_features, depth_left - 1);
        nodes[pos] = TreeNode::Branch {
            feature,
            threshold,
            left,
            right,
        };
        pos
    }
    let mut nodes = Vec::new();
    let mut s = shape | 1;
    let root = grow(&mut nodes, &mut s, n_features, max_depth);
    Tree { nodes, root }
}

fn all_kinds() -> [EnsembleKind; 5] {
    [
        EnsembleKind::DecisionTreeClassifier,
        EnsembleKind::DecisionTreeRegressor,
        EnsembleKind::RandomForestClassifier,
        EnsembleKind::GradientBoostingClassifier,
        EnsembleKind::GradientBoostingRegressor,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flattened vs interpreted scoring is bit-identical for every ensemble
    /// kind × random trees × NaN/missing rows × empty batches.
    #[test]
    fn flattened_scorer_is_bit_identical(
        shape in 0u64..0xffff_ffff_ffff,
        n_trees in 0usize..5,
        n_features in 1usize..5,
        rows in 0usize..180,
        nan_stride in 2usize..6,
        learning_rate in 0.05f64..1.0,
        base_score in -1.0f64..1.0,
    ) {
        let trees: Vec<Tree> = (0..n_trees)
            .map(|t| random_tree(shape.wrapping_add(t as u64 * 7919), n_features, 4))
            .collect();
        // feature values cross every threshold the generator uses, plus NaN
        // (the in-band missing marker) at a varying stride
        let columns: Vec<Vec<f64>> = (0..n_features)
            .map(|f| {
                (0..rows)
                    .map(|r| {
                        if (r + f) % nan_stride == 0 {
                            f64::NAN
                        } else {
                            ((r * 13 + f * 29) % 101) as f64 - 50.0
                        }
                    })
                    .collect()
            })
            .collect();
        let x = Matrix::from_columns(&columns).unwrap();
        for kind in all_kinds() {
            let ensemble = TreeEnsemble {
                kind,
                trees: trees.clone(),
                n_features,
                learning_rate,
                base_score,
            };
            let flat = FlatEnsemble::compile(&ensemble).unwrap();
            let interpreted = ensemble.predict(&x).unwrap();
            let flattened = flat.predict(&x).unwrap();
            prop_assert_eq!(interpreted.rows(), flattened.rows());
            for r in 0..rows {
                prop_assert_eq!(
                    interpreted.get(r, 0).to_bits(),
                    flattened.get(r, 0).to_bits(),
                    "kind {:?}, row {}: interpreted {} vs flattened {}",
                    kind, r, interpreted.get(r, 0), flattened.get(r, 0)
                );
            }
        }
    }

    /// Selection-vector plans produce row-identical results to the
    /// materializing baseline across random filtered workloads, and only the
    /// baseline performs intermediate batch copies.
    #[test]
    fn selection_vector_plans_match_materializing_plans(
        rows in 1usize..200,
        partitions in 1usize..6,
        lo in 0i64..80,
        width in 1i64..120,
        limit_sel in 0usize..3,
    ) {
        let table = TableBuilder::new("t")
            .add_i64("id", (0..rows as i64).collect())
            .add_f64("x", (0..rows).map(|i| (i % 97) as f64).collect())
            .add_utf8(
                "tag",
                (0..rows).map(|i| ((i % 3) as i64).to_string()).collect(),
            )
            .build()
            .unwrap();
        let table = raven_columnar::partition_by_column(
            &table,
            &raven_columnar::PartitionSpec::RoundRobin {
                partitions: partitions.min(rows),
            },
        )
        .unwrap();
        let mut catalog = raven_relational::Catalog::new();
        catalog.register(table);
        let mut plan = LogicalPlan::scan("t")
            .filter(col("id").gt_eq(lit(lo)))
            .filter(col("id").lt(lit(lo + width)))
            .project(vec![col("id"), col("x"), col("tag")]);
        if limit_sel == 1 {
            plan = plan.limit((width / 2).max(1) as usize);
        }
        let run = |selection: bool| {
            let exec = Executor::new();
            let ctx = ExecutionContext {
                selection_vectors: selection,
                ..ExecutionContext::with_dop(2)
            };
            let out = exec.execute(&plan, &catalog, &ctx).unwrap();
            (out, exec.metrics().intermediate_materializations())
        };
        let (sel_out, sel_copies) = run(true);
        let (mat_out, mat_copies) = run(false);
        prop_assert_eq!(sel_copies, 0, "selection vectors must never copy mid-pipeline");
        prop_assert!(mat_copies > 0, "the baseline copies at every filter");
        prop_assert_eq!(sel_out.num_rows(), mat_out.num_rows());
        for c in 0..sel_out.num_columns() {
            prop_assert_eq!(
                format!("{:?}", sel_out.column(c).unwrap()),
                format!("{:?}", mat_out.column(c).unwrap())
            );
        }
    }

    /// End-to-end: a full prediction query scores identically under the
    /// flattened and interpreted scorer modes (the serving-path parity the
    /// `RAVEN_SCORER=interpreted` baseline pins in CI).
    #[test]
    fn session_scores_identically_under_both_scorer_modes(
        rows in 20usize..120,
        seed in 0u64..500,
        threshold in 20.0f64..90.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = TableBuilder::new("patients")
            .add_i64("id", (0..rows as i64).collect())
            .add_f64("age", (0..rows).map(|_| rng.gen_range(18.0..95.0)).collect())
            .add_f64("rcount", (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect())
            .build()
            .unwrap();
        let tree = random_tree(seed | 1, 2, 3);
        let pipeline = raven_ml::Pipeline::new(
            "risk_model",
            vec![
                raven_ml::PipelineInput { name: "age".into(), kind: raven_ml::InputKind::Numeric },
                raven_ml::PipelineInput { name: "rcount".into(), kind: raven_ml::InputKind::Numeric },
            ],
            vec![
                raven_ml::PipelineNode {
                    name: "concat".into(),
                    op: raven_ml::Operator::Concat,
                    inputs: vec!["age".into(), "rcount".into()],
                    output: "features".into(),
                },
                raven_ml::PipelineNode {
                    name: "model".into(),
                    op: raven_ml::Operator::TreeEnsemble(TreeEnsemble {
                        kind: EnsembleKind::GradientBoostingClassifier,
                        trees: vec![tree.clone(), tree],
                        n_features: 2,
                        learning_rate: 0.3,
                        base_score: 0.1,
                    }),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let mut session = raven_core::RavenSession::new();
        session.register_table(table);
        session.register_model(pipeline);
        session.config_mut().runtime_policy = raven_core::RuntimePolicy::NoTransform;
        let query = format!(
            "SELECT d.id, p.score FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (score float) AS p WHERE d.age >= {threshold}"
        );
        force_scorer(Some(ScorerMode::Flattened));
        let flattened = session.sql(&query);
        force_scorer(Some(ScorerMode::Interpreted));
        let interpreted = session.sql(&query);
        force_scorer(None);
        let (flattened, interpreted) = (flattened.unwrap(), interpreted.unwrap());
        prop_assert_eq!(flattened.batch.num_rows(), interpreted.batch.num_rows());
        let fa = flattened.batch.column_by_name("score").unwrap();
        let ia = interpreted.batch.column_by_name("score").unwrap();
        for (a, b) in fa.as_f64().unwrap().iter().zip(ia.as_f64().unwrap()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // the flattened streaming run performed zero intermediate copies
        // (unless RAVEN_SELECTION=materialize pinned the copying baseline)
        if raven_relational::selection_vectors_default() {
            prop_assert_eq!(flattened.report.intermediate_materializations, 0);
        } else {
            prop_assert!(flattened.report.intermediate_materializations > 0);
        }
    }
}

/// Out-of-range feature indices fail with a typed error at compile /
/// validation time instead of silently scoring NaN.
#[test]
fn out_of_range_features_are_rejected() {
    let bad = TreeEnsemble::single_tree(
        Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 7,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
            root: 0,
        },
        2,
    );
    assert!(matches!(
        FlatEnsemble::compile(&bad),
        Err(raven_ml::MlError::InvalidModel(_))
    ));
    assert!(matches!(
        bad.validate_features(),
        Err(raven_ml::MlError::InvalidModel(_))
    ));
    // a pipeline carrying the malformed model fails validation on build
    let p = raven_ml::Pipeline::new(
        "bad",
        vec![raven_ml::PipelineInput {
            name: "x".into(),
            kind: raven_ml::InputKind::Numeric,
        }],
        vec![raven_ml::PipelineNode {
            name: "model".into(),
            op: raven_ml::Operator::TreeEnsemble(bad),
            inputs: vec!["x".into()],
            output: "score".into(),
        }],
        "score",
    );
    assert!(p.is_err());
}

/// `common::extra_dop` is exercised by the other suites; referencing it here
/// keeps the shared module warning-free when this suite compiles alone.
#[test]
fn extra_dop_parses() {
    let _ = common::extra_dop();
}
