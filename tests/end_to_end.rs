//! Cross-crate integration tests: the full parse → optimize → execute path
//! over the synthetic paper workloads, checking that every optimization and
//! runtime choice preserves query results.

use raven::prelude::*;
use raven_core::{BaselineMode, RuntimePolicy};

/// Build a session over a generated dataset with a trained model registered
/// under `model_name`, plus the ready-to-run prediction query text.
fn build_session(
    dataset: &raven::datagen::Dataset,
    model: ModelType,
    model_name: &str,
    with_predicate: bool,
) -> (RavenSession, String) {
    // train over the joined view when the dataset has several tables
    let mut catalog = Catalog::new();
    for t in &dataset.tables {
        catalog.register(t.clone());
    }
    let mut plan = LogicalPlan::scan(dataset.tables[0].name());
    for (_, lk, right, rk) in &dataset.joins {
        plan = plan.join(LogicalPlan::scan(right.clone()), lk, rk);
    }
    let joined = raven_relational::Executor::new()
        .execute(
            &plan,
            &catalog,
            &raven_relational::ExecutionContext::default(),
        )
        .expect("join for training");
    let pipeline = raven::ml::train_pipeline(
        &joined,
        &PipelineSpec {
            name: model_name.into(),
            numeric_inputs: dataset.numeric_inputs.clone(),
            categorical_inputs: dataset.categorical_inputs.clone(),
            label: dataset.label.clone(),
            model,
            seed: 17,
        },
    )
    .expect("pipeline trains");

    let mut session = RavenSession::new();
    for t in &dataset.tables {
        session.register_table(t.clone());
    }
    session.register_model(pipeline);

    let data_clause = if dataset.joins.is_empty() {
        dataset.tables[0].name().to_string()
    } else {
        // WITH data AS (SELECT * FROM fact JOIN dim ON k = k ...)
        format!("WITH data AS (SELECT * FROM {}) ", dataset.from_clause())
    };
    let (from, data_name) = if dataset.joins.is_empty() {
        (String::new(), data_clause)
    } else {
        (data_clause, "data".to_string())
    };
    let predicate = if with_predicate {
        "WHERE p.score >= 0.5"
    } else {
        ""
    };
    let query = format!(
        "{from}SELECT d.id, p.score FROM PREDICT(MODEL = {model_name}, DATA = {data_name} AS d) \
         WITH (score float) AS p {predicate}"
    );
    (session, query)
}

fn sorted_ids(out: &PredictionOutput) -> Vec<i64> {
    let mut ids = out
        .batch
        .column_by_name("id")
        .expect("id column")
        .as_i64()
        .expect("i64 ids")
        .to_vec();
    ids.sort();
    ids
}

#[test]
fn hospital_query_consistent_across_all_configurations() {
    let dataset = raven::datagen::hospital(3_000, 1);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::DecisionTree { max_depth: 8 },
        "hospital_dt",
        true,
    );
    let reference = {
        *session.config_mut() = RavenConfig::no_opt();
        sorted_ids(&session.sql(&query).expect("no-opt run"))
    };
    assert!(!reference.is_empty(), "query should select some rows");

    // every combination of rule toggles and forced transforms agrees
    for (pred, proj, induced) in [
        (true, true, true),
        (true, false, false),
        (false, true, false),
        (false, false, true),
    ] {
        *session.config_mut() = RavenConfig {
            enable_predicate_pruning: pred,
            enable_projection_pushdown: proj,
            enable_data_induced: induced,
            ..RavenConfig::default()
        };
        for choice in [
            TransformChoice::None,
            TransformChoice::MlToSql,
            TransformChoice::MlToDnn,
        ] {
            session.config_mut().runtime_policy = RuntimePolicy::Force(choice);
            let out = session.sql(&query).expect("optimized run");
            assert_eq!(
                sorted_ids(&out),
                reference,
                "result mismatch with pred={pred} proj={proj} induced={induced} choice={choice:?}"
            );
        }
    }
}

#[test]
fn credit_card_logistic_regression_mltosql_matches() {
    let dataset = raven::datagen::credit_card(2_000, 2);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::LogisticRegression { l1_alpha: 0.01 },
        "fraud_lr",
        true,
    );
    session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::MlToSql);
    let sql = session.sql(&query).expect("MLtoSQL run");
    assert_eq!(sql.report.transform, TransformChoice::MlToSql);
    session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::None);
    let ml = session.sql(&query).expect("ML runtime run");
    assert_eq!(sorted_ids(&sql), sorted_ids(&ml));
}

#[test]
fn expedia_join_query_prunes_columns_and_matches() {
    let dataset = raven::datagen::expedia(1_500, 3);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::DecisionTree { max_depth: 6 },
        "expedia_dt",
        false,
    );
    let optimized = session.sql(&query).expect("optimized run");
    // decision trees over a wide one-hot space leave many features unused
    assert!(
        optimized.report.cross.features_after <= optimized.report.cross.features_before,
        "densification should never grow the feature space"
    );
    *session.config_mut() = RavenConfig::no_opt();
    let baseline = session.sql(&query).expect("no-opt run");
    assert_eq!(sorted_ids(&optimized), sorted_ids(&baseline));
}

#[test]
fn flights_four_way_join_runs_end_to_end() {
    let dataset = raven::datagen::flights(1_200, 4);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::RandomForest {
            n_trees: 5,
            max_depth: 5,
        },
        "flights_rf",
        true,
    );
    let out = session.sql(&query).expect("query runs");
    assert!(out.report.output_rows <= 1_200);
    *session.config_mut() = RavenConfig::no_opt();
    let baseline = session.sql(&query).expect("baseline");
    assert_eq!(sorted_ids(&out), sorted_ids(&baseline));
}

#[test]
fn baseline_modes_and_dop_agree() {
    let dataset = raven::datagen::hospital(1_500, 6);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::GradientBoosting {
            n_estimators: 5,
            max_depth: 3,
            learning_rate: 0.2,
        },
        "hospital_gb",
        true,
    );
    session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::None);
    let reference = sorted_ids(&session.sql(&query).expect("reference"));

    session.config_mut().baseline = BaselineMode::RowInterpreted;
    assert_eq!(reference, sorted_ids(&session.sql(&query).unwrap()));
    session.config_mut().baseline = BaselineMode::Materialized;
    assert_eq!(reference, sorted_ids(&session.sql(&query).unwrap()));
    session.config_mut().baseline = BaselineMode::Vectorized;
    session.config_mut().degree_of_parallelism = 4;
    assert_eq!(reference, sorted_ids(&session.sql(&query).unwrap()));
}

#[test]
fn gpu_device_reports_modeled_time_and_same_results() {
    let dataset = raven::datagen::hospital(1_500, 8);
    let (mut session, query) = build_session(
        &dataset,
        ModelType::GradientBoosting {
            n_estimators: 20,
            max_depth: 4,
            learning_rate: 0.1,
        },
        "hospital_gb_big",
        false,
    );
    session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::MlToDnn);
    session.config_mut().device = Device::SimulatedGpu(GpuProfile::tesla_v100());
    let gpu = session.sql(&query).expect("gpu run");
    assert!(gpu.report.ml_time_modeled);
    session.config_mut().device = Device::Cpu;
    let cpu = session.sql(&query).expect("cpu run");
    assert!(!cpu.report.ml_time_modeled);
    assert_eq!(sorted_ids(&gpu), sorted_ids(&cpu));
}
