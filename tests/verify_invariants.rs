//! Mutation tests for the static plan verifier (`relational::verify`), plus a
//! property test that the real optimizer is verifier-clean.
//!
//! Each mutation test hand-crafts the *output a buggy rule would produce* —
//! the exact bug class the rule could realistically have — and asserts the
//! verifier rejects it naming that rule:
//!
//! * `fold_constants` folding `1 + 2` (Int64) to a float literal → root
//!   schema type change,
//! * `push_predicates` dropping or duplicating a conjunct while relocating a
//!   split `AND` → conjunct-conservation violation,
//! * `eliminate_joins` removing a join whose right side is still referenced
//!   (an unsound requirement set) → unresolved column,
//! * `reorder_joins` forgetting its restore projection → root schema
//!   reordered,
//! * `push_projections` over-pruning a scan projection → unresolved column.
//!
//! The property test generates random 2–5-table star plans and runs the full
//! `Optimizer` pipeline with verification force-enabled
//! (`force_verify(Some(true))`, so the check is live in release runs too):
//! every rewrite chain must come out verifier-clean. `force_verify` is a
//! process-global override, so every use of it in the suite lives in this one
//! file.

use proptest::prelude::*;
use raven::relational::{
    baseline, binary, check_rewrite, col, conjunct_count, force_verify, lit, BinaryOp, Catalog,
    Expr, LogicalPlan, Optimizer, RelationalError,
};
use raven_columnar::{Table, TableBuilder};

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn f64_table(name: &str, cols: &[&str], rows: usize) -> Table {
    let mut b = TableBuilder::new(name);
    for (ci, c) in cols.iter().enumerate() {
        b = b.add_f64(c, (0..rows).map(|r| ((r * 7 + ci) % 13) as f64).collect());
    }
    b.build().unwrap()
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(f64_table("facts", &["fk", "m"], 64));
    c.register(f64_table("dims", &["fk", "payload"], 8));
    let mut b = TableBuilder::new("typed");
    b = b.add_i64("n", vec![1, 2, 3]);
    b = b.add_f64("x", vec![1.0, 2.0, 3.0]);
    c.register(b.build().unwrap());
    c
}

/// Unwrap a result into its `VerifyError`, asserting the blamed rule.
fn expect_verify_rejection(result: Result<(), RelationalError>, rule: &str) -> String {
    match result {
        Err(RelationalError::Verify(v)) => {
            assert_eq!(
                v.rule, rule,
                "verifier blamed `{}`, expected `{rule}`",
                v.rule
            );
            assert!(!v.plan.is_empty(), "rejection must dump the plan");
            v.violation.clone()
        }
        Err(other) => panic!("expected a Verify error for `{rule}`, got {other:?}"),
        Ok(()) => panic!("verifier accepted the `{rule}` mutant"),
    }
}

// ---------------------------------------------------------------------------
// rule mutants
// ---------------------------------------------------------------------------

#[test]
fn mutant_fold_constants_changing_literal_type_is_caught() {
    let c = catalog();
    // SELECT n, 1 + 2 AS s FROM typed — the sum is Int64.
    let sum = binary(lit(1i64), BinaryOp::Add, lit(2i64)).alias("s");
    let input = LogicalPlan::scan("typed").project(vec![col("n"), sum]);
    let base = baseline(&input, &c).unwrap();

    // A buggy folder evaluates integer arithmetic in f64 and emits a float
    // literal: names unchanged, type of `s` silently widened.
    let mutant = LogicalPlan::scan("typed").project(vec![col("n"), lit(3.0).alias("s")]);
    let violation = expect_verify_rejection(
        check_rewrite("fold_constants", &base, &mutant, &c),
        "fold_constants",
    );
    assert!(violation.contains("root schema changed"), "{violation}");

    // The real folder keeps `1 + 2` in Int64 and passes.
    let folded = LogicalPlan::scan("typed").project(vec![col("n"), lit(3i64).alias("s")]);
    check_rewrite("fold_constants", &base, &folded, &c).unwrap();
}

#[test]
fn mutant_push_predicates_dropping_a_conjunct_is_caught() {
    let c = catalog();
    let input = LogicalPlan::scan("facts")
        .filter(col("m").gt(lit(1.0)).and(col("fk").lt(lit(9.0))))
        .project(vec![col("fk"), col("m")]);
    let base = baseline(&input, &c).unwrap();
    assert_eq!(conjunct_count(&input), 2);

    // A buggy pushdown splits the AND but loses one leg on the way down.
    let dropped = LogicalPlan::Scan {
        table: "facts".into(),
        projection: None,
        filters: vec![col("m").gt(lit(1.0))],
    }
    .project(vec![col("fk"), col("m")]);
    let violation = expect_verify_rejection(
        check_rewrite("push_predicates", &base, &dropped, &c),
        "push_predicates",
    );
    assert!(violation.contains("conjunct count"), "{violation}");

    // ... or applies a leg twice (PR 6's both-sides leak shape).
    let duplicated = LogicalPlan::Scan {
        table: "facts".into(),
        projection: None,
        filters: vec![col("m").gt(lit(1.0)), col("fk").lt(lit(9.0))],
    }
    .filter(col("fk").lt(lit(9.0)))
    .project(vec![col("fk"), col("m")]);
    let violation = expect_verify_rejection(
        check_rewrite("push_predicates", &base, &duplicated, &c),
        "push_predicates",
    );
    assert!(violation.contains("conjunct count"), "{violation}");

    // The faithful pushdown (both legs, once) passes.
    let pushed = LogicalPlan::Scan {
        table: "facts".into(),
        projection: None,
        filters: vec![col("m").gt(lit(1.0)), col("fk").lt(lit(9.0))],
    }
    .project(vec![col("fk"), col("m")]);
    check_rewrite("push_predicates", &base, &pushed, &c).unwrap();
}

#[test]
fn mutant_eliminate_joins_dropping_a_needed_join_is_caught() {
    let c = catalog();
    // The projection needs `payload` from the dimension side.
    let input = LogicalPlan::scan("facts")
        .join(LogicalPlan::scan("dims"), "fk", "fk")
        .project(vec![col("m"), col("payload")]);
    let base = baseline(&input, &c).unwrap();

    // A buggy requirement set decides the dimension contributes nothing and
    // drops the join; the surviving projection still references `payload`.
    let mutant = LogicalPlan::scan("facts").project(vec![col("m"), col("payload")]);
    let violation = expect_verify_rejection(
        check_rewrite("eliminate_joins", &base, &mutant, &c),
        "eliminate_joins",
    );
    assert!(violation.contains("payload"), "{violation}");
}

#[test]
fn mutant_reorder_joins_without_restore_projection_is_caught() {
    let c = catalog();
    let input = LogicalPlan::scan("facts").join(LogicalPlan::scan("dims"), "fk", "fk");
    let base = baseline(&input, &c).unwrap();

    // A buggy reorder swaps build/probe sides at the root without the
    // restore projection: the merged output columns come out reshuffled.
    let mutant = LogicalPlan::scan("dims").join(LogicalPlan::scan("facts"), "fk", "fk");
    let violation = expect_verify_rejection(
        check_rewrite("reorder_joins", &base, &mutant, &c),
        "reorder_joins",
    );
    assert!(violation.contains("root schema changed"), "{violation}");
}

#[test]
fn mutant_push_projections_overpruning_a_scan_is_caught() {
    let c = catalog();
    let input = LogicalPlan::scan("facts").project(vec![col("fk"), col("m")]);
    let base = baseline(&input, &c).unwrap();

    // A buggy pruner forgets that the outer projection also needs `m`.
    let mutant = LogicalPlan::Scan {
        table: "facts".into(),
        projection: Some(vec!["fk".into()]),
        filters: vec![],
    }
    .project(vec![col("fk"), col("m")]);
    let violation = expect_verify_rejection(
        check_rewrite("push_projections", &base, &mutant, &c),
        "push_projections",
    );
    assert!(violation.contains("unresolved column"), "{violation}");
}

// ---------------------------------------------------------------------------
// the real pipeline is verifier-clean (property)
// ---------------------------------------------------------------------------

/// A star catalog: one fact table keyed to `n_dims` dimensions.
fn star_catalog(n_dims: usize, rows: usize) -> Catalog {
    let mut c = Catalog::new();
    let mut fact_cols: Vec<String> = (0..n_dims).map(|i| format!("fk{i}")).collect();
    fact_cols.push("m".into());
    let col_refs: Vec<&str> = fact_cols.iter().map(|s| s.as_str()).collect();
    c.register(f64_table("fact", &col_refs, rows));
    for i in 0..n_dims {
        c.register(f64_table(
            &format!("dim{i}"),
            &[&format!("fk{i}"), &format!("payload{i}")],
            8 + i,
        ));
    }
    c
}

/// `fact ⋈ dim0 ⋈ … ⋈ dim{n-1}`, optionally filtered, optionally projected.
fn star_plan(n_dims: usize, with_filter: bool, project_payloads: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::scan("fact");
    for i in 0..n_dims {
        let key = format!("fk{i}");
        plan = plan.join(LogicalPlan::scan(format!("dim{i}")), &key, &key);
    }
    if with_filter {
        plan = plan.filter(col("m").gt(lit(2.0)).and(col("fk0").lt(lit(11.0))));
    }
    if project_payloads > 0 {
        let mut exprs: Vec<Expr> = vec![col("m")];
        for i in 0..project_payloads.min(n_dims) {
            exprs.push(col(format!("payload{i}")));
        }
        plan = plan.project(exprs);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every optimizer rewrite chain on a random 2–5-table star plan passes
    /// the rule-by-rule verifier with verification force-enabled.
    #[test]
    fn optimizer_is_verifier_clean_on_random_star_plans(
        n_dims in 1usize..5,
        rows in 16usize..96,
        filter_flag in 0usize..2,
        project_payloads in 0usize..5,
    ) {
        let c = star_catalog(n_dims, rows);
        let plan = star_plan(n_dims, filter_flag == 1, project_payloads);

        force_verify(Some(true));
        let result = Optimizer::new().optimize(&plan, &c);
        force_verify(None);

        let optimized = result.expect("optimizer output failed verification");
        // and the verified output really is equivalent at the root
        prop_assert_eq!(
            plan.schema(&c).unwrap().fields().len(),
            optimized.schema(&c).unwrap().fields().len()
        );
    }
}

/// The deterministic end-to-end case the proptest generalizes, pinned so a
/// verifier regression fails with a readable single plan.
#[test]
fn optimizer_is_verifier_clean_on_the_canonical_star() {
    let c = star_catalog(4, 64);
    let plan = star_plan(4, true, 2);
    force_verify(Some(true));
    let result = Optimizer::new().optimize(&plan, &c);
    force_verify(None);
    result.unwrap();
}
