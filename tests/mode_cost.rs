//! Satellite: cost-based execution-mode selection. For a multi-join plan the
//! legacy `Auto` heuristic only sees the fact table's row count and picks
//! streaming; the estimate-aware path feeds the optimizer's join-cardinality
//! estimate through `choose_execution_mode_from_estimates`, sees that a
//! selective dimension filter leaves only a few hundred output rows, and
//! picks materialized (per-partition task overhead dominates at tiny
//! outputs). Both modes must stay bitwise identical — the knob moves cost,
//! never results.

use raven::prelude::*;
use raven_columnar::{partition_by_column, PartitionSpec};
use raven_core::{ExecutionMode, RuntimePolicy};
use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode};

const QUERY: &str = "WITH data AS (SELECT * FROM orders JOIN customers ON cust_id = cust_key) \
                     SELECT d.id, p.score FROM PREDICT(MODEL = amount_model, DATA = data AS d) \
                     WITH (score float) AS p WHERE d.tier < 0.02";

fn orders(rows: usize) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let table = TableBuilder::new("orders")
        .add_i64("id", (0..rows as i64).collect())
        .add_f64(
            "amount",
            (0..rows).map(|_| rng.gen_range(1.0..500.0)).collect(),
        )
        .add_i64("cust_id", (0..rows).map(|i| (i % 50) as i64).collect())
        .build()
        .unwrap();
    partition_by_column(
        &table,
        &PartitionSpec::ByRange {
            column: "amount".into(),
            partitions: 8,
        },
    )
    .unwrap()
}

fn customers() -> Table {
    TableBuilder::new("customers")
        .add_i64("cust_key", (0..50).collect())
        .add_f64("tier", (0..50).map(|i| i as f64 / 50.0).collect())
        .build()
        .unwrap()
}

fn amount_model() -> Pipeline {
    let tree = Tree {
        nodes: vec![
            TreeNode::Branch {
                feature: 0,
                threshold: 250.0,
                left: 1,
                right: 2,
            },
            TreeNode::Leaf { value: 0.2 },
            TreeNode::Leaf { value: 0.8 },
        ],
        root: 0,
    };
    Pipeline::new(
        "amount_model",
        vec![PipelineInput {
            name: "amount".into(),
            kind: InputKind::Numeric,
        }],
        vec![PipelineNode {
            name: "model".into(),
            op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 1)),
            inputs: vec!["amount".into()],
            output: "score".into(),
        }],
        "score",
    )
    .unwrap()
}

fn run(cost_based: bool) -> (ExecutionMode, Vec<(i64, u64)>) {
    let mut session = RavenSession::with_config(RavenConfig {
        execution_mode: ExecutionMode::Auto,
        cost_based_mode: cost_based,
        runtime_policy: RuntimePolicy::NoTransform,
        degree_of_parallelism: 1,
        ..Default::default()
    });
    session.register_table(orders(20_000));
    session.register_table(customers());
    session.register_model(amount_model());
    let out = session.sql(QUERY).unwrap();
    let ids = out.batch.column_by_name("id").unwrap().as_i64().unwrap();
    let scores = out.batch.column_by_name("score").unwrap().as_f64().unwrap();
    let mut rows: Vec<(i64, u64)> = ids
        .iter()
        .zip(scores)
        .map(|(id, s)| (*id, s.to_bits()))
        .collect();
    rows.sort_unstable();
    (out.report.execution_mode, rows)
}

/// The legacy heuristic streams the whole 20k-row fact scan; the
/// estimate-aware path sees the ~2% dimension filter shrink the join output
/// to a few hundred rows and materializes instead of paying per-partition
/// streaming task overhead. Results are bitwise identical either way.
#[test]
fn join_estimates_flip_auto_mode_without_changing_results() {
    let (legacy_mode, legacy_rows) = run(false);
    let (cost_mode, cost_rows) = run(true);
    assert_eq!(legacy_mode, ExecutionMode::Streaming);
    assert_eq!(cost_mode, ExecutionMode::Materialized);
    assert!(!legacy_rows.is_empty());
    assert_eq!(legacy_rows, cost_rows);
}
