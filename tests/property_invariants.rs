//! Property-based tests (proptest) for the core invariants the Raven paper's
//! optimizations rely on:
//!
//! * tree pruning with predicate-induced domains never changes predictions on
//!   rows satisfying the predicate,
//! * model densification + feature remapping preserves predictions,
//! * MLtoSQL and MLtoDNN agree with the native ML runtime,
//! * relational optimizer rewrites preserve query results.

use proptest::prelude::*;
use raven::prelude::*;
use raven_ml::{
    train_decision_tree_classifier, train_gradient_boosting, BoostingConfig, Matrix, TreeConfig,
};
use raven_relational::{evaluate, ExecutionContext, Executor, Optimizer};
use raven_tensor::{compile_ensemble, Strategy as TensorStrategy};
use std::collections::BTreeMap;

fn feature_matrix(rows: &[Vec<f64>]) -> Matrix {
    let cols = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        data.extend_from_slice(r);
    }
    Matrix::new(rows.len(), cols, data).unwrap()
}

prop_compose! {
    /// A random small binary-classification dataset: 40-120 rows, 3-6 features.
    fn dataset()(
        n in 40usize..120,
        d in 3usize..6,
        seed in 0u64..1_000,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] - 0.7 * r[1] + 0.2 * r[2] > 0.1 { 1.0 } else { 0.0 })
            .collect();
        (rows, labels)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pruning a tree ensemble with a feature domain keeps predictions
    /// identical for every row inside that domain.
    #[test]
    fn domain_pruning_preserves_in_domain_predictions(
        (rows, labels) in dataset(),
        threshold in -1.0f64..1.0,
    ) {
        let x = feature_matrix(&rows);
        let ensemble = train_decision_tree_classifier(
            &x,
            &labels,
            &TreeConfig { max_depth: 6, ..Default::default() },
        ).unwrap();
        // constrain feature 0 to (-inf, threshold]
        let mut domains = BTreeMap::new();
        domains.insert(0usize, (f64::NEG_INFINITY, threshold));
        let pruned = ensemble.prune_with_domains(&domains);
        prop_assert!(pruned.total_nodes() <= ensemble.total_nodes());
        for row in rows.iter().filter(|r| r[0] <= threshold) {
            prop_assert_eq!(ensemble.predict_row(row), pruned.predict_row(row));
        }
    }

    /// Densifying an ensemble to its used features and remapping the feature
    /// vector accordingly never changes predictions.
    #[test]
    fn densification_preserves_predictions((rows, labels) in dataset()) {
        let x = feature_matrix(&rows);
        let ensemble = train_gradient_boosting(
            &x,
            &labels,
            &BoostingConfig { n_estimators: 5, max_depth: 3, ..Default::default() },
        ).unwrap();
        let used: Vec<usize> = ensemble.used_features().into_iter().collect();
        prop_assume!(!used.is_empty());
        let dense = ensemble.select(&used).unwrap();
        for row in &rows {
            let dense_row: Vec<f64> = used.iter().map(|&i| row[i]).collect();
            let a = ensemble.predict_row(row);
            let b = dense.predict_row(&dense_row);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// The GEMM and TreeTraversal tensor compilations agree with native
    /// ensemble inference.
    #[test]
    fn tensor_compilation_matches_native((rows, labels) in dataset()) {
        let x = feature_matrix(&rows);
        let ensemble = train_gradient_boosting(
            &x,
            &labels,
            &BoostingConfig { n_estimators: 4, max_depth: 3, ..Default::default() },
        ).unwrap();
        let native = ensemble.predict(&x).unwrap();
        for strategy in [TensorStrategy::Gemm, TensorStrategy::TreeTraversal] {
            let compiled = compile_ensemble(&ensemble, strategy).unwrap();
            let scores = compiled.predict(&x).unwrap();
            for (a, b) in native.column(0).iter().zip(scores.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// MLtoSQL translation of a trained tree agrees with the native runtime.
    #[test]
    fn mltosql_matches_native((rows, labels) in dataset()) {
        let x = feature_matrix(&rows);
        let ensemble = train_decision_tree_classifier(
            &x,
            &labels,
            &TreeConfig { max_depth: 5, ..Default::default() },
        ).unwrap();
        // build a batch with one column per feature named f0..fd
        let mut builder = TableBuilder::new("t");
        for j in 0..x.cols() {
            builder = builder.add_f64(&format!("f{j}"), x.column(j));
        }
        let batch = builder.build_batch().unwrap();
        let features: Vec<Expr> = (0..x.cols()).map(|j| col(format!("f{j}"))).collect();
        let expr = raven_core::ensemble_to_sql(&ensemble, &features).unwrap();
        let sql_scores = evaluate(&expr, &batch).unwrap().to_f64_vec().unwrap();
        let native = ensemble.predict(&x).unwrap();
        for (a, b) in native.column(0).iter().zip(sql_scores.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Relational optimizer rewrites (predicate/projection pushdown, join
    /// elimination, constant folding) preserve query results.
    #[test]
    fn relational_optimizer_preserves_results(
        rows in 20usize..200,
        threshold in 0.0f64..100.0,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();
        catalog.register(
            TableBuilder::new("fact")
                .add_i64("id", (0..rows as i64).collect())
                .add_f64("x", (0..rows).map(|_| rng.gen_range(0.0..100.0)).collect())
                .add_i64("dim_id", (0..rows).map(|_| rng.gen_range(0..10)).collect())
                .build()
                .unwrap(),
        );
        catalog.register(
            TableBuilder::new("dim")
                .add_i64("dim_id", (0..10).collect())
                .add_f64("weight", (0..10).map(|_| rng.gen_range(0.0..1.0)).collect())
                .build()
                .unwrap(),
        );
        let plan = LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim"), "dim_id", "dim_id")
            .filter(col("x").lt(lit(threshold)))
            .project(vec![col("id"), col("x"), col("weight")]);
        let optimized = Optimizer::new().optimize(&plan, &catalog).unwrap();
        let ctx = ExecutionContext::default();
        let a = Executor::new().execute(&plan, &catalog, &ctx).unwrap();
        let b = Executor::new().execute(&optimized, &catalog, &ctx).unwrap();
        prop_assert_eq!(a.num_rows(), b.num_rows());
        let mut ax = a.column_by_name("id").unwrap().as_i64().unwrap().to_vec();
        let mut bx = b.column_by_name("id").unwrap().as_i64().unwrap().to_vec();
        ax.sort();
        bx.sort();
        prop_assert_eq!(ax, bx);
    }
}
