//! Property tests for the streaming partition-parallel execution pipeline:
//! for any randomly generated workload, the streaming path must produce
//! row-identical output to the materialized path across dop ∈ {1, 4} and
//! partitioned/unpartitioned tables, and statistics-based partition pruning
//! must never change results.

use proptest::prelude::*;
use raven::prelude::*;
use raven_columnar::{partition_by_column, PartitionSpec, TableBuilder};
use raven_core::ExecutionMode;
use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode};
use raven_relational::{col, lit, ExecutionContext, Executor, LogicalPlan, Optimizer};

mod common;

/// Degrees of parallelism every parity property runs at: {1, 4} plus an
/// optional extra from `RAVEN_TEST_DOP` (see [`common::extra_dop`]).
fn test_dops() -> Vec<usize> {
    let mut dops = vec![1usize, 4];
    if let Some(extra) = common::extra_dop() {
        if !dops.contains(&extra) {
            dops.push(extra);
        }
    }
    dops
}

fn patient_table(rows: usize, seed: u64) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TableBuilder::new("patients")
        .add_i64("id", (0..rows as i64).collect())
        .add_f64(
            "age",
            (0..rows).map(|_| rng.gen_range(18.0..95.0)).collect(),
        )
        .add_f64(
            "rcount",
            (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect(),
        )
        .build()
        .unwrap()
}

/// A small fixed decision tree over (age, rcount) — no training needed, so
/// property cases stay fast and deterministic.
fn risk_pipeline() -> Pipeline {
    let tree = Tree {
        nodes: vec![
            TreeNode::Branch {
                feature: 0,
                threshold: 60.0,
                left: 1,
                right: 2,
            },
            TreeNode::Branch {
                feature: 1,
                threshold: 2.0,
                left: 3,
                right: 4,
            },
            TreeNode::Leaf { value: 0.9 },
            TreeNode::Leaf { value: 0.1 },
            TreeNode::Leaf { value: 0.5 },
        ],
        root: 0,
    };
    Pipeline::new(
        "risk_model",
        vec![
            PipelineInput {
                name: "age".into(),
                kind: InputKind::Numeric,
            },
            PipelineInput {
                name: "rcount".into(),
                kind: InputKind::Numeric,
            },
        ],
        vec![
            PipelineNode {
                name: "concat".into(),
                op: Operator::Concat,
                inputs: vec!["age".into(), "rcount".into()],
                output: "features".into(),
            },
            PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 2)),
                inputs: vec!["features".into()],
                output: "score".into(),
            },
        ],
        "score",
    )
    .unwrap()
}

fn partitioned(table: &Table, partitions: usize, by_range: bool) -> Table {
    if partitions <= 1 {
        return table.clone();
    }
    let spec = if by_range {
        PartitionSpec::ByRange {
            column: "age".into(),
            partitions,
        }
    } else {
        PartitionSpec::RoundRobin { partitions }
    };
    partition_by_column(table, &spec).unwrap()
}

fn sorted_ids(batch: &Batch) -> Vec<i64> {
    let mut v = batch
        .column_by_name("id")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec();
    v.sort();
    v
}

prop_compose! {
    /// A random workload: table size, seed, partition layout, predicate
    /// threshold.
    fn workload()(
        rows in 40usize..250,
        seed in 0u64..1_000,
        partitions in 1usize..7,
        by_range_sel in 0u64..2,
        threshold in 20.0f64..95.0,
    ) -> (usize, u64, usize, bool, f64) {
        (rows, seed, partitions, by_range_sel == 1, threshold)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Relational layer: for any query, the streaming executor with
    /// statistics-based partition pruning produces exactly the rows of the
    /// legacy no-pruning execution, at dop 1 and 4.
    #[test]
    fn relational_pruning_never_changes_results(
        (rows, seed, partitions, by_range, threshold) in workload(),
    ) {
        let table = partitioned(&patient_table(rows, seed), partitions, by_range);
        let mut catalog = raven_relational::Catalog::new();
        catalog.register(table);
        let plan = LogicalPlan::scan("patients")
            .filter(col("age").gt_eq(lit(threshold)))
            .project(vec![col("id"), col("age")]);
        let plan = Optimizer::new().optimize(&plan, &catalog).unwrap();
        let legacy = Executor::new()
            .execute(
                &plan,
                &catalog,
                &ExecutionContext {
                    partition_pruning: false,
                    ..ExecutionContext::default()
                },
            )
            .unwrap();
        for dop in test_dops() {
            let exec = Executor::new();
            let streamed = exec
                .execute(
                    &plan,
                    &catalog,
                    &ExecutionContext {
                        degree_of_parallelism: dop,
                        partition_pruning: true,
                        ..ExecutionContext::default()
                    },
                )
                .unwrap();
            prop_assert_eq!(sorted_ids(&streamed), sorted_ids(&legacy));
        }
    }

    /// Session layer: any prediction query executed via the streaming
    /// pipeline produces row-identical output to the materialized path,
    /// across dop ∈ {1, 4} and partitioned/unpartitioned tables.
    #[test]
    fn session_streaming_matches_materialized(
        (rows, seed, partitions, by_range, threshold) in workload(),
    ) {
        let table = partitioned(&patient_table(rows, seed), partitions, by_range);
        let mut session = RavenSession::new();
        session.register_table(table);
        session.register_model(risk_pipeline());
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let query = format!(
            "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (risk float) AS p WHERE d.age >= {threshold:.3} AND p.risk >= 0.2"
        );

        session.config_mut().execution_mode = ExecutionMode::Materialized;
        let materialized = session.sql(&query).unwrap();
        prop_assert_eq!(materialized.report.pruned_partitions, 0);

        for dop in test_dops() {
            session.config_mut().execution_mode = ExecutionMode::Streaming;
            session.config_mut().degree_of_parallelism = dop;
            let streamed = session.sql(&query).unwrap();
            prop_assert_eq!(
                sorted_ids(&streamed.batch),
                sorted_ids(&materialized.batch),
                "streaming (dop {}) diverged from materialized on {} partitions",
                dop,
                partitions
            );
            // pruning is observable but must never change results (asserted
            // above); pruned + streamed covers every partition
            prop_assert_eq!(
                streamed.report.pruned_partitions + streamed.report.streamed_partitions,
                partitions.max(1)
            );
        }
    }
}
