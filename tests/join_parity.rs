//! Property-based parity tests for the cost-based join optimizer (PR 6):
//! random 2–5-table join plans must produce bitwise-identical results under
//! the as-written order (`RAVEN_JOIN_ORDER=asis` semantics: no reordering, no
//! build-side selection) and the cost-based order, including row multiplicity
//! under duplicate keys and NaN float join keys, and the `Optimizer` must
//! preserve the plan's output schema.
//!
//! The logical reorder pins the as-written leftmost leaf as the probe root,
//! but the physical build-side swap legitimately permutes output rows (the
//! probe side drives emission order), so rows are compared as canonically
//! sorted multisets — bit-exact within each row.

use proptest::prelude::*;
use raven::prelude::*;
use raven_relational::{ExecutionContext, Executor, Optimizer, OptimizerOptions};

/// Render one row of a batch with bit-exact float encoding so sorting and
/// comparing strings is a bitwise row comparison.
fn canonical_rows(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = (0..batch.num_rows())
        .map(|r| {
            batch
                .columns()
                .iter()
                .map(|c| match c.as_ref() {
                    Column::Int64(v) => format!("i{}", v[r]),
                    Column::Float64(v) => format!("f{:016x}", v[r].to_bits()),
                    Column::Utf8(v) => format!("s{}", v[r]),
                    Column::Boolean(v) => format!("b{}", v[r]),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort_unstable();
    rows
}

fn run(
    plan: &LogicalPlan,
    catalog: &Catalog,
    reorder: bool,
    cost_based_build_side: bool,
) -> (Batch, Vec<String>) {
    let optimizer = Optimizer::with_options(OptimizerOptions {
        join_reordering: reorder,
        ..Default::default()
    });
    let optimized = optimizer.optimize(plan, catalog).expect("optimize");
    let ctx = ExecutionContext {
        cost_based_build_side,
        ..ExecutionContext::default()
    };
    let batch = Executor::new()
        .execute(&optimized, catalog, &ctx)
        .expect("execute");
    let rows = canonical_rows(&batch);
    (batch, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random join chains: a fact table joined against 1–4 dimension tables,
    /// with deliberately small key domains (duplicate keys on both sides →
    /// row multiplication) and one float-keyed dimension whose keys include
    /// NaN (never matches, in both modes alike).
    #[test]
    fn random_join_chains_are_order_invariant(
        fact_rows in 20usize..120,
        n_dims in 1usize..5,
        key_range in 2i64..6,
        nan_share in 0u32..3,
        filtered in 0u32..2,
        threshold in 0.0f64..100.0,
        seed in 0u64..1_000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut catalog = Catalog::new();

        let mut fact = TableBuilder::new("fact")
            .add_i64("id", (0..fact_rows as i64).collect())
            .add_f64(
                "v0",
                (0..fact_rows).map(|_| rng.gen_range(0.0..100.0)).collect(),
            );
        // integer FK columns with duplicates; the last dimension joins on a
        // float key where `nan_share`/10 of fact keys are NaN
        for d in 0..n_dims {
            if d == n_dims - 1 {
                let col: Vec<f64> = (0..fact_rows)
                    .map(|_| {
                        if rng.gen_range(0u32..10) < nan_share {
                            f64::NAN
                        } else {
                            rng.gen_range(0..key_range) as f64
                        }
                    })
                    .collect();
                fact = fact.add_f64(&format!("fk{d}"), col);
            } else {
                let col: Vec<i64> =
                    (0..fact_rows).map(|_| rng.gen_range(0..key_range)).collect();
                fact = fact.add_i64(&format!("fk{d}"), col);
            }
        }
        catalog.register(fact.build().unwrap());

        let mut plan = LogicalPlan::scan("fact");
        for d in 0..n_dims {
            let dim_rows = rng.gen_range(3usize..15);
            let name = format!("dim{d}");
            let mut dim = TableBuilder::new(&name);
            if d == n_dims - 1 {
                // float keys with duplicates and a NaN row of their own
                let col: Vec<f64> = (0..dim_rows)
                    .map(|i| {
                        if i == 0 && nan_share > 0 {
                            f64::NAN
                        } else {
                            rng.gen_range(0..key_range) as f64
                        }
                    })
                    .collect();
                dim = dim.add_f64(&format!("k{d}"), col);
            } else {
                let col: Vec<i64> =
                    (0..dim_rows).map(|_| rng.gen_range(0..key_range)).collect();
                dim = dim.add_i64(&format!("k{d}"), col);
            }
            dim = dim.add_f64(
                &format!("w{d}"),
                (0..dim_rows).map(|_| rng.gen_range(0.0..1.0)).collect(),
            );
            catalog.register(dim.build().unwrap());
            plan = plan.join(
                LogicalPlan::scan(&name),
                &format!("fk{d}"),
                &format!("k{d}"),
            );
        }
        if filtered == 1 {
            plan = plan.filter(col("v0").lt(lit(threshold)));
        }

        // the optimizer must preserve the plan's output schema
        let optimized = Optimizer::new().optimize(&plan, &catalog).unwrap();
        prop_assert_eq!(
            plan.schema(&catalog).unwrap().names(),
            optimized.schema(&catalog).unwrap().names()
        );

        let (asis_batch, asis_rows) = run(&plan, &catalog, false, false);
        let (cost_batch, cost_rows) = run(&plan, &catalog, true, true);
        prop_assert_eq!(
            asis_batch.schema().names(),
            cost_batch.schema().names(),
            "both modes must produce the same output schema"
        );
        prop_assert_eq!(
            asis_rows,
            cost_rows,
            "as-written and cost-based plans must agree bitwise as row multisets"
        );
    }
}
