//! Property tests for the serving subsystem: for any randomly generated
//! workload, N concurrent clients driving the micro-batching scheduler must
//! produce byte-identical outputs to sequential `session.sql` calls, across
//! scheduler dop ∈ {1, 4} and micro-batch sizes ∈ {1, 8}, and micro-batched
//! point requests must score exactly like solo runtime evaluation.

use proptest::prelude::*;
use raven::prelude::*;
use raven_columnar::{partition_by_column, PartitionSpec, TableBuilder};
use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode};
use raven_serve::Request;
use std::sync::Arc;
use std::time::Duration;

mod common;

/// Scheduler worker × micro-batch combinations every parity property runs
/// at: workers {1, 4} plus an optional extra worker count from
/// `RAVEN_TEST_DOP` (see [`common::extra_dop`]), crossed with micro-batch
/// sizes {1, 8}.
fn scheduler_combos() -> Vec<(usize, usize)> {
    let mut workers = vec![1usize, 4];
    if let Some(extra) = common::extra_dop() {
        if !workers.contains(&extra) {
            workers.push(extra);
        }
    }
    workers
        .into_iter()
        .flat_map(|w| [(w, 1usize), (w, 8)])
        .collect()
}

fn patient_table(rows: usize, seed: u64) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TableBuilder::new("patients")
        .add_i64("id", (0..rows as i64).collect())
        .add_f64(
            "age",
            (0..rows).map(|_| rng.gen_range(18.0..95.0)).collect(),
        )
        .add_f64(
            "rcount",
            (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect(),
        )
        .build()
        .unwrap()
}

/// A small fixed decision tree over (age, rcount) — deterministic, no
/// training, so property cases stay fast.
fn risk_pipeline() -> Pipeline {
    let tree = Tree {
        nodes: vec![
            TreeNode::Branch {
                feature: 0,
                threshold: 60.0,
                left: 1,
                right: 2,
            },
            TreeNode::Branch {
                feature: 1,
                threshold: 2.0,
                left: 3,
                right: 4,
            },
            TreeNode::Leaf { value: 0.9 },
            TreeNode::Leaf { value: 0.1 },
            TreeNode::Leaf { value: 0.5 },
        ],
        root: 0,
    };
    Pipeline::new(
        "risk_model",
        vec![
            PipelineInput {
                name: "age".into(),
                kind: InputKind::Numeric,
            },
            PipelineInput {
                name: "rcount".into(),
                kind: InputKind::Numeric,
            },
        ],
        vec![
            PipelineNode {
                name: "concat".into(),
                op: Operator::Concat,
                inputs: vec!["age".into(), "rcount".into()],
                output: "features".into(),
            },
            PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 2)),
                inputs: vec!["features".into()],
                output: "score".into(),
            },
        ],
        "score",
    )
    .unwrap()
}

fn build_session(rows: usize, seed: u64, partitions: usize) -> RavenSession {
    let table = if partitions > 1 {
        partition_by_column(
            &patient_table(rows, seed),
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions,
            },
        )
        .unwrap()
    } else {
        patient_table(rows, seed)
    };
    let mut session = RavenSession::new();
    session.register_table(table);
    session.register_model(risk_pipeline());
    session.config_mut().runtime_policy = raven::core::RuntimePolicy::NoTransform;
    session
}

/// Canonical byte-level rendering of a batch (plain `{:?}` would include the
/// schema's name→index HashMap, whose iteration order is nondeterministic).
fn canonical(batch: &Batch) -> String {
    format!("{:?} {:?}", batch.schema().names(), batch.columns())
}

prop_compose! {
    fn workload()(
        rows in 40usize..200,
        seed in 0u64..1_000,
        partitions in 1usize..7,
        threshold in 20.0f64..95.0,
    ) -> (usize, u64, usize, f64) {
        (rows, seed, partitions, threshold)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduler parity: 4 concurrent clients through the server produce
    /// byte-identical outputs to sequential `session.sql`, for every
    /// (worker-count, micro-batch-size) combination.
    #[test]
    fn concurrent_scheduler_matches_sequential_sql(
        (rows, seed, partitions, threshold) in workload(),
    ) {
        let session = build_session(rows, seed, partitions);
        let queries: Vec<String> = [threshold, 30.0]
            .iter()
            .map(|t| {
                format!(
                    "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
                     DATA = patients AS d) WITH (risk float) AS p \
                     WHERE d.age >= {t:.3} AND p.risk >= 0.2"
                )
            })
            .collect();
        let expected: Vec<String> = queries
            .iter()
            .map(|q| canonical(&session.sql(q).unwrap().batch))
            .collect();

        for (workers, micro_batch) in scheduler_combos() {
            let server = Arc::new(Server::new(
                session.clone(),
                ServerConfig {
                    worker_threads: workers,
                    micro_batch_size: micro_batch,
                    micro_batch_wait: Duration::from_micros(100),
                    ..Default::default()
                },
            ));
            let handles: Vec<_> = (0..4usize)
                .map(|client| {
                    let server = server.clone();
                    let queries = queries.clone();
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        for (q, want) in queries.iter().zip(&expected) {
                            let got = canonical(&server.sql(q).unwrap().batch);
                            assert_eq!(
                                &got, want,
                                "client {client} diverged (workers={workers}, \
                                 micro_batch={micro_batch})"
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                prop_assert!(h.join().is_ok(), "workers={workers} micro_batch={micro_batch}");
            }
        }
    }

    /// Point parity: rows scored through the micro-batching scheduler get
    /// exactly the score the runtime produces for the row alone.
    #[test]
    fn micro_batched_points_match_solo_scoring(
        (rows, seed, partitions, _threshold) in workload(),
    ) {
        let session = build_session(rows, seed, partitions);
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
                     DATA = patients AS d) WITH (risk float) AS p \
                     WHERE p.risk >= 0.0";
        let pipeline = risk_pipeline();
        let runtime = MlRuntime::new();

        for micro_batch in [1usize, 8] {
            let server = Server::new(
                session.clone(),
                ServerConfig {
                    worker_threads: 1,
                    micro_batch_size: micro_batch,
                    micro_batch_wait: Duration::from_millis(20),
                    ..Default::default()
                },
            );
            let points: Vec<Vec<(String, Value)>> = (0..8u64)
                .map(|i| {
                    vec![
                        (
                            "age".to_string(),
                            Value::Float64(20.0 + (seed + i * 11) as f64 % 70.0),
                        ),
                        ("rcount".to_string(), Value::Float64((i % 5) as f64)),
                    ]
                })
                .collect();
            let tickets: Vec<_> = points
                .iter()
                .map(|row| {
                    server
                        .submit(Request::Point {
                            sql: query.to_string(),
                            row: row.clone(),
                        })
                        .unwrap()
                })
                .collect();
            for (row, ticket) in points.iter().zip(tickets) {
                let got = ticket.wait_point().unwrap().score;
                let batch = Batch::from_rows(
                    Arc::new(
                        Schema::new(vec![
                            Field::new("age", DataType::Float64),
                            Field::new("rcount", DataType::Float64),
                        ])
                        .unwrap(),
                    ),
                    &[vec![row[0].1.clone(), row[1].1.clone()]],
                )
                .unwrap();
                let want = runtime.run_batch(&pipeline, &batch).unwrap()[0];
                prop_assert_eq!(got, want, "micro_batch={}", micro_batch);
            }
        }
    }
}
