//! Property tests for the serving subsystem: for any randomly generated
//! workload, N concurrent clients driving the micro-batching scheduler must
//! produce byte-identical outputs to sequential `session.sql` calls, across
//! scheduler dop ∈ {1, 4} and micro-batch sizes ∈ {1, 8}, and micro-batched
//! point requests must score exactly like solo runtime evaluation.

use proptest::prelude::*;
use raven::prelude::*;
use raven_columnar::{partition_by_column, PartitionSpec, TableBuilder};
use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode};
use raven_serve::Request;
use std::sync::Arc;
use std::time::Duration;

mod common;

/// Scheduler worker × micro-batch combinations every parity property runs
/// at: workers {1, 4} plus an optional extra worker count from
/// `RAVEN_TEST_DOP` (see [`common::extra_dop`]), crossed with micro-batch
/// sizes {1, 8}.
fn scheduler_combos() -> Vec<(usize, usize)> {
    let mut workers = vec![1usize, 4];
    if let Some(extra) = common::extra_dop() {
        if !workers.contains(&extra) {
            workers.push(extra);
        }
    }
    workers
        .into_iter()
        .flat_map(|w| [(w, 1usize), (w, 8)])
        .collect()
}

fn patient_table(rows: usize, seed: u64) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    TableBuilder::new("patients")
        .add_i64("id", (0..rows as i64).collect())
        .add_f64(
            "age",
            (0..rows).map(|_| rng.gen_range(18.0..95.0)).collect(),
        )
        .add_f64(
            "rcount",
            (0..rows).map(|_| rng.gen_range(0.0..5.0)).collect(),
        )
        .build()
        .unwrap()
}

/// A small fixed decision tree over (age, rcount) — deterministic, no
/// training, so property cases stay fast.
fn risk_pipeline() -> Pipeline {
    let tree = Tree {
        nodes: vec![
            TreeNode::Branch {
                feature: 0,
                threshold: 60.0,
                left: 1,
                right: 2,
            },
            TreeNode::Branch {
                feature: 1,
                threshold: 2.0,
                left: 3,
                right: 4,
            },
            TreeNode::Leaf { value: 0.9 },
            TreeNode::Leaf { value: 0.1 },
            TreeNode::Leaf { value: 0.5 },
        ],
        root: 0,
    };
    Pipeline::new(
        "risk_model",
        vec![
            PipelineInput {
                name: "age".into(),
                kind: InputKind::Numeric,
            },
            PipelineInput {
                name: "rcount".into(),
                kind: InputKind::Numeric,
            },
        ],
        vec![
            PipelineNode {
                name: "concat".into(),
                op: Operator::Concat,
                inputs: vec!["age".into(), "rcount".into()],
                output: "features".into(),
            },
            PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 2)),
                inputs: vec!["features".into()],
                output: "score".into(),
            },
        ],
        "score",
    )
    .unwrap()
}

/// The `patients` table for a given seed, partitioned the same way the
/// session under test partitions it — re-registrations must use the exact
/// same layout or "matches a consistent snapshot" checks compare against the
/// wrong row order.
fn snapshot_table(rows: usize, seed: u64, partitions: usize) -> Table {
    if partitions > 1 {
        partition_by_column(
            &patient_table(rows, seed),
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions,
            },
        )
        .unwrap()
    } else {
        patient_table(rows, seed)
    }
}

fn build_session(rows: usize, seed: u64, partitions: usize) -> RavenSession {
    let table = snapshot_table(rows, seed, partitions);
    let mut session = RavenSession::new();
    session.register_table(table);
    session.register_model(risk_pipeline());
    session.config_mut().runtime_policy = raven::core::RuntimePolicy::NoTransform;
    session
}

/// Canonical byte-level rendering of a batch (plain `{:?}` would include the
/// schema's name→index HashMap, whose iteration order is nondeterministic).
fn canonical(batch: &Batch) -> String {
    format!("{:?} {:?}", batch.schema().names(), batch.columns())
}

prop_compose! {
    fn workload()(
        rows in 40usize..200,
        seed in 0u64..1_000,
        partitions in 1usize..7,
        threshold in 20.0f64..95.0,
    ) -> (usize, u64, usize, f64) {
        (rows, seed, partitions, threshold)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduler parity: 4 concurrent clients through the server produce
    /// byte-identical outputs to sequential `session.sql`, for every
    /// (worker-count, micro-batch-size) combination.
    #[test]
    fn concurrent_scheduler_matches_sequential_sql(
        (rows, seed, partitions, threshold) in workload(),
    ) {
        let session = build_session(rows, seed, partitions);
        let queries: Vec<String> = [threshold, 30.0]
            .iter()
            .map(|t| {
                format!(
                    "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
                     DATA = patients AS d) WITH (risk float) AS p \
                     WHERE d.age >= {t:.3} AND p.risk >= 0.2"
                )
            })
            .collect();
        let expected: Vec<String> = queries
            .iter()
            .map(|q| canonical(&session.sql(q).unwrap().batch))
            .collect();

        for (workers, micro_batch) in scheduler_combos() {
            let server = Arc::new(Server::new(
                session.clone(),
                ServerConfig {
                    worker_threads: workers,
                    micro_batch_size: micro_batch,
                    micro_batch_wait: Duration::from_micros(100),
                    ..Default::default()
                },
            ));
            let handles: Vec<_> = (0..4usize)
                .map(|client| {
                    let server = server.clone();
                    let queries = queries.clone();
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        for (q, want) in queries.iter().zip(&expected) {
                            let got = canonical(&server.sql(q).unwrap().batch);
                            assert_eq!(
                                &got, want,
                                "client {client} diverged (workers={workers}, \
                                 micro_batch={micro_batch})"
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                prop_assert!(h.join().is_ok(), "workers={workers} micro_batch={micro_batch}");
            }
        }
    }

    /// Point parity: rows scored through the micro-batching scheduler get
    /// exactly the score the runtime produces for the row alone.
    #[test]
    fn micro_batched_points_match_solo_scoring(
        (rows, seed, partitions, _threshold) in workload(),
    ) {
        let session = build_session(rows, seed, partitions);
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
                     DATA = patients AS d) WITH (risk float) AS p \
                     WHERE p.risk >= 0.0";
        let pipeline = risk_pipeline();
        let runtime = MlRuntime::new();

        for micro_batch in [1usize, 8] {
            let server = Server::new(
                session.clone(),
                ServerConfig {
                    worker_threads: 1,
                    micro_batch_size: micro_batch,
                    micro_batch_wait: Duration::from_millis(20),
                    ..Default::default()
                },
            );
            let points: Vec<Vec<(String, Value)>> = (0..8u64)
                .map(|i| {
                    vec![
                        (
                            "age".to_string(),
                            Value::Float64(20.0 + (seed + i * 11) as f64 % 70.0),
                        ),
                        ("rcount".to_string(), Value::Float64((i % 5) as f64)),
                    ]
                })
                .collect();
            let tickets: Vec<_> = points
                .iter()
                .map(|row| {
                    server
                        .submit(Request::Point {
                            sql: query.to_string(),
                            row: row.clone(),
                        })
                        .unwrap()
                })
                .collect();
            for (row, ticket) in points.iter().zip(tickets) {
                let got = ticket.wait_point().unwrap().score;
                let batch = Batch::from_rows(
                    Arc::new(
                        Schema::new(vec![
                            Field::new("age", DataType::Float64),
                            Field::new("rcount", DataType::Float64),
                        ])
                        .unwrap(),
                    ),
                    &[vec![row[0].1.clone(), row[1].1.clone()]],
                )
                .unwrap();
                let want = runtime.run_batch(&pipeline, &batch).unwrap()[0];
                prop_assert_eq!(got, want, "micro_batch={}", micro_batch);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fusion parity: for any workload and any duplicate/distinct request
    /// mix, concurrent clients through a fusing scheduler produce outputs
    /// bitwise-identical to the fusion-off (one-drive-per-request) oracle —
    /// both must equal sequential `session.sql` — across workers {1, 4}.
    #[test]
    fn fused_execution_is_bitwise_identical_to_fusion_off(
        (rows, seed, partitions, threshold) in workload(),
        dup_share in 0usize..101,
    ) {
        let session = build_session(rows, seed, partitions);
        let queries: Vec<String> = [threshold, 30.0]
            .iter()
            .map(|t| {
                format!(
                    "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
                     DATA = patients AS d) WITH (risk float) AS p \
                     WHERE d.age >= {t:.3} AND p.risk >= 0.2"
                )
            })
            .collect();
        let expected: Vec<String> = queries
            .iter()
            .map(|q| canonical(&session.sql(q).unwrap().batch))
            .collect();

        for workers in [1usize, 4] {
            for fusion in [true, false] {
                let server = Arc::new(Server::new(
                    session.clone(),
                    ServerConfig {
                        worker_threads: workers,
                        sql_fusion: fusion,
                        ..Default::default()
                    },
                ));
                let handles: Vec<_> = (0..4usize)
                    .map(|client| {
                        let server = server.clone();
                        let queries = queries.clone();
                        let expected = expected.clone();
                        std::thread::spawn(move || {
                            for round in 0..6usize {
                                // dup_share percent of requests repeat query
                                // 0 (fusable duplicates); the rest alternate
                                let idx = if (client * 31 + round * 17) % 100 < dup_share {
                                    0
                                } else {
                                    (client + round) % 2
                                };
                                let got = canonical(&server.sql(&queries[idx]).unwrap().batch);
                                assert_eq!(
                                    got, expected[idx],
                                    "client {client} round {round} diverged \
                                     (workers={workers}, fusion={fusion})"
                                );
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    prop_assert!(h.join().is_ok(), "workers={workers} fusion={fusion}");
                }
            }
        }
    }

    /// A fused group never spans a re-registration: while a writer swaps the
    /// table between two snapshots, every fused response must match one of
    /// the two consistent ground truths exactly — a group that straddled an
    /// epoch change would hand at least one member a result from the wrong
    /// snapshot's plan (e.g. a model pruned with the other snapshot's
    /// data-induced bounds).
    #[test]
    fn fused_groups_never_span_a_reregistration(
        (rows, seed, partitions, threshold) in workload(),
    ) {
        let session = build_session(rows, seed, partitions);
        let query = format!(
            "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
             DATA = patients AS d) WITH (risk float) AS p \
             WHERE d.age >= {threshold:.3} AND p.risk >= 0.2"
        );
        let canon_a = canonical(&session.sql(&query).unwrap().batch);
        let canon_b = {
            let mut oracle = session.clone();
            oracle.register_table(snapshot_table(rows, seed + 1, partitions));
            canonical(&oracle.sql(&query).unwrap().batch)
        };

        let server = Arc::new(Server::new(
            session.clone(),
            ServerConfig {
                worker_threads: 4,
                ..Default::default()
            },
        ));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let server = server.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                for i in 0..8u64 {
                    let table = snapshot_table(rows, seed + (i % 2 != 0) as u64, partitions);
                    server.register_table(table).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            })
        };
        let clients: Vec<_> = (0..4usize)
            .map(|_| {
                let server = server.clone();
                let stop = stop.clone();
                let query = query.clone();
                let canon_a = canon_a.clone();
                let canon_b = canon_b.clone();
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) || served == 0 {
                        let got = canonical(&server.sql(&query).unwrap().batch);
                        assert!(
                            got == canon_a || got == canon_b,
                            "a response matched neither snapshot: torn fusion group"
                        );
                        served += 1;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for c in clients {
            prop_assert!(c.join().is_ok());
        }
    }
}

/// Deficit round-robin admission: a saturating adversary (heavier weight,
/// dozens of distinct queued queries) cannot starve a light tenant — the
/// light tenant's single request is served after at most a few adversary
/// completions, not after the whole backlog.
#[test]
fn no_tenant_starves_under_a_saturating_adversary() {
    // enough rows that one drive takes a measurable slice of wall time: the
    // fairness check below compares the light tenant's latency against the
    // whole backlog's drain time, and both need to dwarf OS scheduling
    // noise for the ratio to mean anything
    let session = build_session(20_000, 7, 2);
    let server = Arc::new(Server::new(
        session,
        ServerConfig {
            worker_threads: 1,
            qos: raven_serve::QosConfig {
                // even a *heavier* adversary only gets proportionally more
                // turns; it can never monopolize the ring
                tenant_weights: vec![("adversary".to_string(), 4)],
                ..Default::default()
            },
            ..Default::default()
        },
    ));
    let adversary_query = |i: usize| {
        format!(
            "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, \
             DATA = patients AS d) WITH (risk float) AS p \
             WHERE d.age >= {}.0 AND p.risk >= 0.0",
            20 + i // distinct literals: no fusion, every request is a drive
        )
    };
    // saturate: the lone worker executes one adversary query while 59 more
    // pile up in the adversary's lane
    let backlog: Vec<_> = (0..60usize)
        .map(|i| {
            server
                .submit_as("adversary", Request::Sql(adversary_query(i)))
                .unwrap()
        })
        .collect();
    // a literal outside the adversary's pool: the light request must win a
    // round-robin turn of its own, not piggyback on a fused duplicate
    let start = std::time::Instant::now();
    let light = server
        .submit_as("light", Request::Sql(adversary_query(1_000)))
        .unwrap();
    assert!(light.wait_sql().is_ok(), "light tenant must be served");
    let light_wait = start.elapsed();
    for t in backlog {
        assert!(t.wait_sql().is_ok(), "adversary request failed");
    }
    let full_drain = start.elapsed();
    // DRR with weights 4:1 serves the light request within ~5 adversary
    // turns of the ~60 queued, i.e. well inside the first third of the
    // drain. A starved light tenant (served FIFO behind the backlog) waits
    // ~the whole drain. Comparing the two latencies is race-free: unlike a
    // completed-count snapshot, neither side can be inflated by the worker
    // racing ahead between the light tenant's completion and the read.
    assert!(
        light_wait < full_drain / 3,
        "light tenant waited {light_wait:?} of the {full_drain:?} backlog \
         drain — starved; report:\n{}",
        server.report()
    );
    let report = server.report();
    assert_eq!(report.tenant("light").unwrap().completed, 1);
    assert_eq!(report.tenant("adversary").unwrap().completed, 60);
}
