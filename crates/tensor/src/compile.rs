//! Hummingbird-style compilation of traditional ML models into tensor
//! programs (the MLtoDNN transformation's back end, paper §5.1).
//!
//! Two strategies are implemented, mirroring Hummingbird:
//!
//! * **GEMM** — the tree is flattened into dense matrices so that evaluating
//!   it becomes three matrix multiplications plus comparisons. Highest
//!   arithmetic intensity; the strategy of choice for GPUs and wide batches.
//! * **TreeTraversal** — the tree's node arrays become tensors and evaluation
//!   iterates `depth` gather/compare steps over all rows at once. Less
//!   redundant compute than GEMM for deep trees.
//!
//! Linear and logistic models compile to a single GEMM plus (optionally) a
//! sigmoid.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use raven_ml::{
    EnsembleKind, LinearRegressionModel, LogisticRegressionModel, Matrix, Operator, Tree,
    TreeEnsemble, TreeNode,
};
use serde::{Deserialize, Serialize};

/// Compilation strategy for tree ensembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Flatten trees into dense GEMM operations.
    Gemm,
    /// Iterative tensorized tree traversal.
    TreeTraversal,
}

/// A single tree compiled for the GEMM strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmTree {
    /// features × internal-nodes indicator matrix (A).
    pub a: Tensor,
    /// 1 × internal-nodes thresholds (B).
    pub b: Tensor,
    /// internal-nodes × leaves path matrix (C): +1 left-path, -1 right-path.
    pub c: Tensor,
    /// 1 × leaves expected true-count per leaf (D).
    pub d: Tensor,
    /// leaves × 1 leaf output values (E).
    pub e: Tensor,
}

/// A single tree compiled for the TreeTraversal strategy (structure-of-arrays).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraversalTree {
    /// Per node: feature index (leaves hold 0).
    pub features: Vec<usize>,
    /// Per node: threshold (leaves hold +inf so comparison always goes "left").
    pub thresholds: Vec<f64>,
    /// Per node: left child index (leaves point to themselves).
    pub lefts: Vec<usize>,
    /// Per node: right child index (leaves point to themselves).
    pub rights: Vec<usize>,
    /// Per node: output value (internal nodes hold 0).
    pub values: Vec<f64>,
    /// Root node index.
    pub root: usize,
    /// Iterations needed to reach any leaf.
    pub depth: usize,
}

/// A model compiled into a tensor program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompiledModel {
    /// Tree ensemble compiled with the GEMM strategy.
    GemmEnsemble {
        trees: Vec<GemmTree>,
        kind: EnsembleKind,
        learning_rate: f64,
        base_score: f64,
        n_features: usize,
    },
    /// Tree ensemble compiled with the TreeTraversal strategy.
    TraversalEnsemble {
        trees: Vec<TraversalTree>,
        kind: EnsembleKind,
        learning_rate: f64,
        base_score: f64,
        n_features: usize,
    },
    /// Linear model compiled to a single GEMM (+ sigmoid when logistic).
    Linear {
        /// features × 1 weight tensor.
        weights: Tensor,
        intercept: f64,
        logistic: bool,
    },
}

impl CompiledModel {
    /// Evaluate the compiled model over a feature matrix, producing one score
    /// per row.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let xt = Tensor::new(x.rows(), x.cols(), x.data().to_vec())?;
        match self {
            CompiledModel::Linear {
                weights,
                intercept,
                logistic,
            } => {
                let scores = xt.matmul(weights)?;
                let out = scores.map(|v| {
                    let z = v + intercept;
                    if *logistic {
                        raven_ml::sigmoid(z)
                    } else {
                        z
                    }
                });
                Ok(out.data().to_vec())
            }
            CompiledModel::GemmEnsemble {
                trees,
                kind,
                learning_rate,
                base_score,
                n_features,
            } => {
                check_width(x.cols(), *n_features)?;
                let mut acc = vec![0.0; x.rows()];
                for tree in trees {
                    let scores = eval_gemm_tree(&xt, tree)?;
                    for (a, s) in acc.iter_mut().zip(scores.iter()) {
                        *a += s;
                    }
                }
                Ok(combine(
                    &acc,
                    trees.len(),
                    *kind,
                    *learning_rate,
                    *base_score,
                ))
            }
            CompiledModel::TraversalEnsemble {
                trees,
                kind,
                learning_rate,
                base_score,
                n_features,
            } => {
                check_width(x.cols(), *n_features)?;
                let mut acc = vec![0.0; x.rows()];
                for tree in trees {
                    let scores = eval_traversal_tree(&xt, tree);
                    for (a, s) in acc.iter_mut().zip(scores.iter()) {
                        *a += s;
                    }
                }
                Ok(combine(
                    &acc,
                    trees.len(),
                    *kind,
                    *learning_rate,
                    *base_score,
                ))
            }
        }
    }

    /// Approximate floating-point operations needed to score `rows` rows —
    /// the input of the simulated-GPU cost model.
    pub fn flops(&self, rows: u64) -> u64 {
        match self {
            CompiledModel::Linear { weights, .. } => rows * weights.rows() as u64 * 2,
            CompiledModel::GemmEnsemble { trees, .. } => trees
                .iter()
                .map(|t| {
                    let internals = t.b.cols() as u64;
                    let leaves = t.e.rows() as u64;
                    let features = t.a.rows() as u64;
                    // X*A, S*C, Z*E plus comparisons
                    rows * (features * internals * 2 + internals * leaves * 2 + leaves * 2)
                })
                .sum(),
            CompiledModel::TraversalEnsemble { trees, .. } => {
                trees.iter().map(|t| rows * (t.depth as u64 + 1) * 6).sum()
            }
        }
    }

    /// Approximate parameter bytes that must be resident on the device
    /// (transferred once per invocation in the cost model).
    pub fn parameter_bytes(&self) -> usize {
        match self {
            CompiledModel::Linear { weights, .. } => weights.len() * 8,
            CompiledModel::GemmEnsemble { trees, .. } => trees
                .iter()
                .map(|t| (t.a.len() + t.b.len() + t.c.len() + t.d.len() + t.e.len()) * 8)
                .sum(),
            CompiledModel::TraversalEnsemble { trees, .. } => {
                trees.iter().map(|t| t.features.len() * 5 * 8).sum()
            }
        }
    }

    /// The strategy used (None for linear models).
    pub fn strategy(&self) -> Option<Strategy> {
        match self {
            CompiledModel::GemmEnsemble { .. } => Some(Strategy::Gemm),
            CompiledModel::TraversalEnsemble { .. } => Some(Strategy::TreeTraversal),
            CompiledModel::Linear { .. } => None,
        }
    }
}

fn check_width(got: usize, expected: usize) -> Result<()> {
    if got < expected {
        return Err(TensorError::Shape(format!(
            "input has {got} features, model expects {expected}"
        )));
    }
    Ok(())
}

fn combine(
    acc: &[f64],
    n_trees: usize,
    kind: EnsembleKind,
    learning_rate: f64,
    base_score: f64,
) -> Vec<f64> {
    acc.iter()
        .map(|&raw| match kind {
            EnsembleKind::DecisionTreeClassifier | EnsembleKind::DecisionTreeRegressor => raw,
            EnsembleKind::RandomForestClassifier => raw / n_trees.max(1) as f64,
            EnsembleKind::GradientBoostingClassifier => {
                raven_ml::sigmoid(base_score + learning_rate * raw)
            }
            EnsembleKind::GradientBoostingRegressor => base_score + learning_rate * raw,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile a tree ensemble with the requested strategy.
pub fn compile_ensemble(ensemble: &TreeEnsemble, strategy: Strategy) -> Result<CompiledModel> {
    match strategy {
        Strategy::Gemm => {
            let trees = ensemble
                .trees
                .iter()
                .map(|t| compile_gemm_tree(t, ensemble.n_features))
                .collect::<Result<Vec<_>>>()?;
            Ok(CompiledModel::GemmEnsemble {
                trees,
                kind: ensemble.kind,
                learning_rate: ensemble.learning_rate,
                base_score: ensemble.base_score,
                n_features: ensemble.n_features,
            })
        }
        Strategy::TreeTraversal => {
            let trees = ensemble.trees.iter().map(compile_traversal_tree).collect();
            Ok(CompiledModel::TraversalEnsemble {
                trees,
                kind: ensemble.kind,
                learning_rate: ensemble.learning_rate,
                base_score: ensemble.base_score,
                n_features: ensemble.n_features,
            })
        }
    }
}

/// Compile the model operator of a pipeline (tree ensembles and linear
/// models); featurizers stay on the ML runtime, as in Raven's integration.
pub fn compile_operator(op: &Operator, strategy: Strategy) -> Result<CompiledModel> {
    match op {
        Operator::TreeEnsemble(e) => compile_ensemble(e, strategy),
        Operator::LinearRegression(m) => Ok(compile_linear(m)),
        Operator::LogisticRegression(m) => Ok(compile_logistic(m)),
        other => Err(TensorError::Unsupported(format!(
            "operator {} cannot be compiled to tensors",
            other.name()
        ))),
    }
}

/// Compile a linear regression model.
pub fn compile_linear(m: &LinearRegressionModel) -> CompiledModel {
    CompiledModel::Linear {
        weights: Tensor::new(m.weights.len(), 1, m.weights.clone()).expect("weights are a vector"),
        intercept: m.intercept,
        logistic: false,
    }
}

/// Compile a logistic regression model.
pub fn compile_logistic(m: &LogisticRegressionModel) -> CompiledModel {
    CompiledModel::Linear {
        weights: Tensor::new(m.weights.len(), 1, m.weights.clone()).expect("weights are a vector"),
        intercept: m.intercept,
        logistic: true,
    }
}

fn compile_gemm_tree(tree: &Tree, n_features: usize) -> Result<GemmTree> {
    // collect reachable internal nodes and leaves in a stable order
    let mut internals = Vec::new();
    let mut leaves = Vec::new();
    collect_nodes(tree, tree.root, &mut internals, &mut leaves);
    let n_int = internals.len().max(1);
    let n_leaves = leaves.len();

    let mut a = Tensor::zeros(n_features, n_int);
    let mut b = Tensor::zeros(1, n_int);
    let mut c = Tensor::zeros(n_int, n_leaves);
    let mut d = Tensor::zeros(1, n_leaves);
    let mut e = Tensor::zeros(n_leaves, 1);

    for (j, &node_idx) in internals.iter().enumerate() {
        if let TreeNode::Branch {
            feature, threshold, ..
        } = &tree.nodes[node_idx]
        {
            if *feature >= n_features {
                return Err(TensorError::Shape(format!(
                    "tree references feature {feature} but model width is {n_features}"
                )));
            }
            a.set(*feature, j, 1.0);
            b.set(0, j, *threshold);
        }
    }

    // path matrix: walk from root to each leaf
    for (l, &leaf_idx) in leaves.iter().enumerate() {
        if let TreeNode::Leaf { value } = &tree.nodes[leaf_idx] {
            e.set(l, 0, *value);
        }
        let path = path_to(tree, tree.root, leaf_idx)
            .ok_or_else(|| TensorError::Shape("leaf unreachable from root".into()))?;
        let mut expected = 0.0;
        for window in path.windows(2) {
            let (parent, child) = (window[0], window[1]);
            let j = internals
                .iter()
                .position(|&n| n == parent)
                .ok_or_else(|| TensorError::Shape("path through non-internal node".into()))?;
            if let TreeNode::Branch { left, .. } = &tree.nodes[parent] {
                if *left == child {
                    c.set(j, l, 1.0);
                    expected += 1.0;
                } else {
                    c.set(j, l, -1.0);
                }
            }
        }
        d.set(0, l, expected);
    }
    Ok(GemmTree { a, b, c, d, e })
}

fn collect_nodes(tree: &Tree, idx: usize, internals: &mut Vec<usize>, leaves: &mut Vec<usize>) {
    match &tree.nodes[idx] {
        TreeNode::Leaf { .. } => leaves.push(idx),
        TreeNode::Branch { left, right, .. } => {
            internals.push(idx);
            collect_nodes(tree, *left, internals, leaves);
            collect_nodes(tree, *right, internals, leaves);
        }
    }
}

fn path_to(tree: &Tree, from: usize, target: usize) -> Option<Vec<usize>> {
    if from == target {
        return Some(vec![from]);
    }
    match &tree.nodes[from] {
        TreeNode::Leaf { .. } => None,
        TreeNode::Branch { left, right, .. } => {
            for child in [*left, *right] {
                if let Some(mut p) = path_to(tree, child, target) {
                    let mut path = vec![from];
                    path.append(&mut p);
                    return Some(path);
                }
            }
            None
        }
    }
}

fn compile_traversal_tree(tree: &Tree) -> TraversalTree {
    let n = tree.nodes.len();
    let mut features = vec![0usize; n];
    let mut thresholds = vec![f64::INFINITY; n];
    let mut lefts = vec![0usize; n];
    let mut rights = vec![0usize; n];
    let mut values = vec![0.0f64; n];
    for (i, node) in tree.nodes.iter().enumerate() {
        match node {
            TreeNode::Leaf { value } => {
                lefts[i] = i;
                rights[i] = i;
                values[i] = *value;
            }
            TreeNode::Branch {
                feature,
                threshold,
                left,
                right,
            } => {
                features[i] = *feature;
                thresholds[i] = *threshold;
                lefts[i] = *left;
                rights[i] = *right;
            }
        }
    }
    TraversalTree {
        features,
        thresholds,
        lefts,
        rights,
        values,
        root: tree.root,
        depth: tree.depth(),
    }
}

// ---------------------------------------------------------------------------
// Evaluation kernels
// ---------------------------------------------------------------------------

fn eval_gemm_tree(x: &Tensor, tree: &GemmTree) -> Result<Vec<f64>> {
    // S = (X · A) <= B  (per internal node decision)
    let xa = x.matmul(&tree.a)?;
    let s = xa.zip_broadcast(&tree.b, |v, t| if v <= t { 1.0 } else { 0.0 })?;
    // E = S · C ; leaf selected where E == D
    let e = s.matmul(&tree.c)?;
    let z = e.zip_broadcast(&tree.d, |v, d| if (v - d).abs() < 1e-9 { 1.0 } else { 0.0 })?;
    // output = Z · leaf_values
    let out = z.matmul(&tree.e)?;
    Ok(out.data().to_vec())
}

fn eval_traversal_tree(x: &Tensor, tree: &TraversalTree) -> Vec<f64> {
    let rows = x.rows();
    let mut idx = vec![tree.root; rows];
    for _ in 0..=tree.depth {
        #[allow(clippy::needless_range_loop)] // r indexes both idx and x rows
        for r in 0..rows {
            let i = idx[r];
            let f = tree.features[i];
            let v = x.get(r, f.min(x.cols().saturating_sub(1)));
            idx[r] = if v <= tree.thresholds[i] {
                tree.lefts[i]
            } else {
                tree.rights[i]
            };
        }
    }
    idx.iter().map(|&i| tree.values[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_ml::{train_gradient_boosting, train_random_forest, BoostingConfig, ForestConfig};

    fn dataset(n: usize, d: usize) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(9);
        let cols: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if cols[0][i] + 0.5 * cols[1][i] > 0.2 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (Matrix::from_columns(&cols).unwrap(), y)
    }

    fn example_ensemble() -> TreeEnsemble {
        TreeEnsemble::single_tree(
            Tree {
                nodes: vec![
                    TreeNode::Branch {
                        feature: 0,
                        threshold: 0.5,
                        left: 1,
                        right: 2,
                    },
                    TreeNode::Leaf { value: 0.1 },
                    TreeNode::Branch {
                        feature: 1,
                        threshold: -1.0,
                        left: 3,
                        right: 4,
                    },
                    TreeNode::Leaf { value: 0.7 },
                    TreeNode::Leaf { value: 0.9 },
                ],
                root: 0,
            },
            2,
        )
    }

    #[test]
    fn gemm_matches_native_single_tree() {
        let ens = example_ensemble();
        let compiled = compile_ensemble(&ens, Strategy::Gemm).unwrap();
        let x = Matrix::from_columns(&[vec![0.0, 1.0, 2.0], vec![0.0, -2.0, 1.0]]).unwrap();
        let native = ens.predict(&x).unwrap();
        let tensorized = compiled.predict(&x).unwrap();
        assert_eq!(native.column(0), tensorized);
    }

    #[test]
    fn traversal_matches_native_single_tree() {
        let ens = example_ensemble();
        let compiled = compile_ensemble(&ens, Strategy::TreeTraversal).unwrap();
        let x = Matrix::from_columns(&[vec![0.0, 1.0, 2.0], vec![0.0, -2.0, 1.0]]).unwrap();
        assert_eq!(
            ens.predict(&x).unwrap().column(0),
            compiled.predict(&x).unwrap()
        );
    }

    #[test]
    fn gemm_matches_native_trained_forest() {
        let (x, y) = dataset(200, 4);
        let rf = train_random_forest(&x, &y, &ForestConfig::default()).unwrap();
        let compiled = compile_ensemble(&rf, Strategy::Gemm).unwrap();
        let native = rf.predict(&x).unwrap();
        let tens = compiled.predict(&x).unwrap();
        for (a, b) in native.column(0).iter().zip(tens.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn traversal_matches_native_trained_gbm() {
        let (x, y) = dataset(200, 4);
        let gb = train_gradient_boosting(&x, &y, &BoostingConfig::default()).unwrap();
        let compiled = compile_ensemble(&gb, Strategy::TreeTraversal).unwrap();
        let native = gb.predict(&x).unwrap();
        let tens = compiled.predict(&x).unwrap();
        for (a, b) in native.column(0).iter().zip(tens.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn linear_compilation_matches() {
        let m = LogisticRegressionModel {
            weights: vec![0.5, -1.0],
            intercept: 0.2,
        };
        let compiled = compile_logistic(&m);
        let x = Matrix::from_columns(&[vec![1.0, -1.0], vec![0.0, 2.0]]).unwrap();
        let native = m.predict_proba(&x).unwrap();
        let tens = compiled.predict(&x).unwrap();
        for (a, b) in native.column(0).iter().zip(tens.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(compiled.strategy(), None);
    }

    #[test]
    fn compile_operator_dispatch() {
        let op = Operator::TreeEnsemble(example_ensemble());
        assert!(compile_operator(&op, Strategy::Gemm).is_ok());
        let op = Operator::LinearRegression(LinearRegressionModel {
            weights: vec![1.0],
            intercept: 0.0,
        });
        assert!(compile_operator(&op, Strategy::Gemm).is_ok());
        let op = Operator::Concat;
        assert!(compile_operator(&op, Strategy::Gemm).is_err());
    }

    #[test]
    fn flops_and_bytes_scale_with_model_size() {
        let (x, y) = dataset(100, 4);
        let small = train_gradient_boosting(
            &x,
            &y,
            &BoostingConfig {
                n_estimators: 5,
                max_depth: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let big = train_gradient_boosting(
            &x,
            &y,
            &BoostingConfig {
                n_estimators: 50,
                max_depth: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let cs = compile_ensemble(&small, Strategy::Gemm).unwrap();
        let cb = compile_ensemble(&big, Strategy::Gemm).unwrap();
        assert!(cb.flops(1000) > cs.flops(1000));
        assert!(cb.parameter_bytes() > cs.parameter_bytes());
    }

    #[test]
    fn width_check_rejects_narrow_input() {
        let ens = example_ensemble();
        let compiled = compile_ensemble(&ens, Strategy::Gemm).unwrap();
        let narrow = Matrix::from_columns(&[vec![1.0]]).unwrap();
        assert!(compiled.predict(&narrow).is_err());
    }

    #[test]
    fn feature_out_of_range_rejected_at_compile_time() {
        let mut ens = example_ensemble();
        ens.n_features = 1; // tree uses feature 1 → invalid
        assert!(compile_ensemble(&ens, Strategy::Gemm).is_err());
    }
}
