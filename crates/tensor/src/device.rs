//! Execution devices for compiled tensor models.
//!
//! The paper evaluates MLtoDNN on NVIDIA P100/K80/V100 GPUs. No GPU is
//! available in this reproduction, so [`Device::SimulatedGpu`] executes the
//! compiled model on the CPU (so results are exact) and *models* the elapsed
//! time with a calibrated analytic cost: a fixed kernel-launch/driver
//! overhead, PCIe transfer time for the input batch and model parameters, and
//! compute time proportional to the model's FLOPs at the device's throughput.
//! This reproduces the paper's qualitative finding (§7.3): small models lose
//! on GPU because of the fixed overheads, large gradient-boosting ensembles
//! win by up to ~8×.

use crate::compile::CompiledModel;
use crate::error::Result;
use raven_ml::Matrix;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Performance profile of a simulated accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuProfile {
    /// Human-readable device name.
    pub name: String,
    /// Fixed per-invocation overhead (kernel launches, driver, Python glue).
    pub launch_overhead: Duration,
    /// Host-to-device transfer bandwidth in bytes/second (PCIe).
    pub transfer_bytes_per_sec: f64,
    /// Sustained throughput in FLOP/s for the dense kernels we emit.
    pub flops_per_sec: f64,
}

impl GpuProfile {
    /// A profile loosely modelled on the NVIDIA Tesla K80 used in the paper's
    /// Spark GPU cluster (§7.3): high launch overhead, ~10 GB/s effective
    /// PCIe bandwidth, ~1 TFLOP/s sustained on these kernels.
    pub fn tesla_k80() -> Self {
        GpuProfile {
            name: "SimulatedTeslaK80".into(),
            launch_overhead: Duration::from_millis(12),
            transfer_bytes_per_sec: 10.0e9,
            flops_per_sec: 1.0e12,
        }
    }

    /// A profile loosely modelled on the Tesla V100 used for the SQL Server
    /// GPU runs (§7.3): lower overhead, faster transfers and compute.
    pub fn tesla_v100() -> Self {
        GpuProfile {
            name: "SimulatedTeslaV100".into(),
            launch_overhead: Duration::from_millis(8),
            transfer_bytes_per_sec: 14.0e9,
            flops_per_sec: 6.0e12,
        }
    }
}

/// Where a compiled model executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// Execute on the host CPU; reported time is measured wall-clock.
    Cpu,
    /// Execute on the CPU for correctness but report a modelled GPU time.
    SimulatedGpu(GpuProfile),
}

impl Device {
    /// Short display name.
    pub fn name(&self) -> &str {
        match self {
            Device::Cpu => "CPU",
            Device::SimulatedGpu(p) => &p.name,
        }
    }

    /// Whether this device's reported times are modelled rather than measured.
    pub fn is_simulated(&self) -> bool {
        matches!(self, Device::SimulatedGpu(_))
    }
}

/// The outcome of executing a compiled model on a device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRun {
    /// Per-row scores.
    pub scores: Vec<f64>,
    /// Measured CPU wall-clock time for the execution.
    pub measured: Duration,
    /// The time the device is *reported* to take: equal to `measured` on the
    /// CPU, and the cost-model estimate on a simulated GPU.
    pub reported: Duration,
}

/// A compiled model bound to a device.
#[derive(Debug, Clone)]
pub struct TensorModel {
    /// The compiled tensor program.
    pub model: CompiledModel,
    /// The execution device.
    pub device: Device,
}

impl TensorModel {
    /// Bind a compiled model to a device.
    pub fn new(model: CompiledModel, device: Device) -> Self {
        TensorModel { model, device }
    }

    /// Execute over a feature matrix.
    pub fn run(&self, x: &Matrix) -> Result<DeviceRun> {
        let start = Instant::now();
        let scores = self.model.predict(x)?;
        let measured = start.elapsed();
        let reported = match &self.device {
            Device::Cpu => measured,
            Device::SimulatedGpu(profile) => self.estimate_gpu_time(profile, x.rows(), x.cols()),
        };
        Ok(DeviceRun {
            scores,
            measured,
            reported,
        })
    }

    /// The analytic GPU cost model: launch overhead + data/parameter transfer
    /// + compute at the profile's throughput.
    pub fn estimate_gpu_time(&self, profile: &GpuProfile, rows: usize, cols: usize) -> Duration {
        let input_bytes = (rows * cols * 8 + rows * 8) as f64;
        let param_bytes = self.model.parameter_bytes() as f64;
        let transfer = (input_bytes + param_bytes) / profile.transfer_bytes_per_sec;
        let compute = self.model.flops(rows as u64) as f64 / profile.flops_per_sec;
        profile.launch_overhead + Duration::from_secs_f64(transfer + compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_ensemble, Strategy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_ml::{train_gradient_boosting, BoostingConfig, Matrix};

    fn model(n_estimators: usize, depth: usize) -> (CompiledModel, Matrix) {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let cols: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| if cols[0][i] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_columns(&cols).unwrap();
        let gb = train_gradient_boosting(
            &x,
            &y,
            &BoostingConfig {
                n_estimators,
                max_depth: depth,
                ..Default::default()
            },
        )
        .unwrap();
        (compile_ensemble(&gb, Strategy::Gemm).unwrap(), x)
    }

    #[test]
    fn cpu_run_reports_measured_time() {
        let (compiled, x) = model(5, 3);
        let tm = TensorModel::new(compiled, Device::Cpu);
        let run = tm.run(&x).unwrap();
        assert_eq!(run.scores.len(), x.rows());
        assert_eq!(run.measured, run.reported);
        assert!(!tm.device.is_simulated());
        assert_eq!(tm.device.name(), "CPU");
    }

    #[test]
    fn simulated_gpu_scores_match_cpu() {
        let (compiled, x) = model(5, 3);
        let cpu = TensorModel::new(compiled.clone(), Device::Cpu)
            .run(&x)
            .unwrap();
        let gpu = TensorModel::new(compiled, Device::SimulatedGpu(GpuProfile::tesla_k80()))
            .run(&x)
            .unwrap();
        assert_eq!(cpu.scores, gpu.scores);
        assert!(Device::SimulatedGpu(GpuProfile::tesla_k80()).is_simulated());
    }

    #[test]
    fn gpu_model_has_fixed_overhead_floor() {
        let (compiled, x) = model(2, 2);
        let profile = GpuProfile::tesla_k80();
        let tm = TensorModel::new(compiled, Device::SimulatedGpu(profile.clone()));
        let est = tm.estimate_gpu_time(&profile, x.rows(), x.cols());
        assert!(est >= profile.launch_overhead);
    }

    #[test]
    fn gpu_estimate_grows_with_model_and_batch() {
        let (small, x) = model(5, 2);
        let (large, _) = model(60, 5);
        let profile = GpuProfile::tesla_v100();
        let ts = TensorModel::new(small, Device::SimulatedGpu(profile.clone()));
        let tl = TensorModel::new(large, Device::SimulatedGpu(profile.clone()));
        let e_small = ts.estimate_gpu_time(&profile, 10_000, x.cols());
        let e_large = tl.estimate_gpu_time(&profile, 10_000, x.cols());
        assert!(e_large > e_small);
        let e_few_rows = tl.estimate_gpu_time(&profile, 100, x.cols());
        assert!(e_large > e_few_rows);
    }

    #[test]
    fn profiles_are_distinct() {
        let k80 = GpuProfile::tesla_k80();
        let v100 = GpuProfile::tesla_v100();
        assert!(v100.flops_per_sec > k80.flops_per_sec);
        assert_ne!(k80.name, v100.name);
    }
}
