//! # raven-tensor
//!
//! The DNN-runtime substrate of the Raven reproduction: a minimal dense
//! tensor runtime plus a Hummingbird-style compiler that turns traditional ML
//! models (tree ensembles, linear models) into tensor programs, and a device
//! abstraction with a real CPU backend and a simulated GPU whose execution is
//! exact (runs on CPU) but whose reported latency follows a calibrated
//! transfer + compute cost model. This is the back end of Raven's MLtoDNN
//! transformation (paper §5.1, §7.3).

pub mod compile;
pub mod device;
pub mod error;
pub mod tensor;

pub use compile::{
    compile_ensemble, compile_linear, compile_logistic, compile_operator, CompiledModel, GemmTree,
    Strategy, TraversalTree,
};
pub use device::{Device, DeviceRun, GpuProfile, TensorModel};
pub use error::{Result, TensorError};
pub use tensor::Tensor;
