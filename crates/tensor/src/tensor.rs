//! A minimal dense tensor runtime: the small set of operations Hummingbird's
//! GEMM and TreeTraversal strategies need (matmul, elementwise ops, gather,
//! comparisons, sigmoid, reductions).

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense 2-D tensor of `f64` (rows × cols, row-major). Traditional-ML
/// inference compiled by Hummingbird only needs rank-2 tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// Create a tensor from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::Shape(format!(
                "tensor data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Tensor { rows, cols, data })
    }

    /// A zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element update.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Matrix multiplication.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(TensorError::Shape(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Elementwise binary operation with broadcasting over rows (other may be
    /// a 1×cols tensor).
    pub fn zip_broadcast(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Result<Tensor> {
        if other.rows == self.rows && other.cols == self.cols {
            let data = self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Tensor::new(self.rows, self.cols, data);
        }
        if other.rows == 1 && other.cols == self.cols {
            let mut out = self.clone();
            for r in 0..self.rows {
                for c in 0..self.cols {
                    out.data[r * self.cols + c] = f(self.get(r, c), other.get(0, c));
                }
            }
            return Ok(out);
        }
        Err(TensorError::Shape(format!(
            "cannot broadcast {}x{} with {}x{}",
            self.rows, self.cols, other.rows, other.cols
        )))
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Row-wise sum, producing a rows×1 tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.data[r * self.cols..(r + 1) * self.cols].iter().sum();
        }
        out
    }

    /// Gather: out[r][j] = self[r][ indices[r][j] ] where `indices` holds
    /// column indices (as floats). Used by the TreeTraversal strategy.
    pub fn gather_cols(&self, indices: &Tensor) -> Result<Tensor> {
        if indices.rows != self.rows {
            return Err(TensorError::Shape(
                "gather index rows must match input rows".into(),
            ));
        }
        let mut out = Tensor::zeros(self.rows, indices.cols);
        for r in 0..self.rows {
            for c in 0..indices.cols {
                let idx = indices.get(r, c) as usize;
                if idx >= self.cols {
                    return Err(TensorError::Shape(format!(
                        "gather index {idx} out of bounds for width {}",
                        self.cols
                    )));
                }
                out.set(r, c, self.get(r, idx));
            }
        }
        Ok(out)
    }

    /// Approximate floating-point operation count for executing this tensor as
    /// the left operand of a matmul — used by the simulated-GPU cost model.
    pub fn matmul_flops(&self, other: &Tensor) -> u64 {
        (self.rows as u64) * (self.cols as u64) * (other.cols as u64) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!(Tensor::new(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn matmul_correctness() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
        assert!(b.matmul(&b).is_err());
        assert_eq!(a.matmul_flops(&b), 2 * 2 * 3 * 2);
    }

    #[test]
    fn broadcasting() {
        let a = Tensor::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let bias = Tensor::new(1, 2, vec![10.0, 20.0]).unwrap();
        let out = a.zip_broadcast(&bias, |x, y| x + y).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
        let same = a.zip_broadcast(&a, |x, y| x * y).unwrap();
        assert_eq!(same.data(), &[1.0, 4.0, 9.0, 16.0]);
        let bad = Tensor::new(1, 3, vec![0.0; 3]).unwrap();
        assert!(a.zip_broadcast(&bad, |x, _| x).is_err());
    }

    #[test]
    fn map_sum_gather() {
        let a = Tensor::new(2, 3, vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]).unwrap();
        assert_eq!(a.map(f64::abs).data()[1], 2.0);
        assert_eq!(a.sum_rows().data(), &[2.0, -5.0]);
        let idx = Tensor::new(2, 1, vec![2.0, 0.0]).unwrap();
        assert_eq!(a.gather_cols(&idx).unwrap().data(), &[3.0, -4.0]);
        let bad_idx = Tensor::new(2, 1, vec![9.0, 0.0]).unwrap();
        assert!(a.gather_cols(&bad_idx).is_err());
        let misaligned = Tensor::new(1, 1, vec![0.0]).unwrap();
        assert!(a.gather_cols(&misaligned).is_err());
    }
}
