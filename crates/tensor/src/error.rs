//! Error type for the tensor runtime and compiler.

use std::fmt;

/// Result alias used throughout `raven-tensor`.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations and ML-to-tensor compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Shape mismatch between tensors.
    Shape(String),
    /// The model cannot be compiled to tensors.
    Unsupported(String),
    /// Error from the ML layer.
    Ml(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(m) => write!(f, "shape error: {m}"),
            TensorError::Unsupported(m) => write!(f, "unsupported: {m}"),
            TensorError::Ml(m) => write!(f, "ml error: {m}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<raven_ml::MlError> for TensorError {
    fn from(e: raven_ml::MlError) -> Self {
        TensorError::Ml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(TensorError::Shape("x".into()).to_string().contains("shape"));
        assert!(TensorError::Unsupported("y".into())
            .to_string()
            .contains("unsupported"));
    }
}
