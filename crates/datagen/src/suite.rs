//! An OpenML-CC18-like suite of trained pipelines (paper §2.1, Fig. 1, §5.2).
//!
//! The paper studies 508 scikit-learn pipelines over 72 OpenML datasets and
//! trains its optimization strategies on 138 of them. This module generates a
//! configurable number of synthetic classification datasets and trains
//! pipelines over them, drawing the pipeline shapes (model family, number of
//! inputs, categorical cardinalities, ensemble size, depth) from distributions
//! chosen to match the wide variation of Fig. 1.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raven_columnar::{Batch, TableBuilder};
use raven_ml::{train_pipeline, ModelType, Pipeline, PipelineSpec};

/// One generated suite entry: a trained pipeline plus the dataset it was
/// trained on (kept so the pipeline can be scored again).
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The trained pipeline.
    pub pipeline: Pipeline,
    /// The training/scoring data.
    pub data: Batch,
    /// The model family used.
    pub model_kind: &'static str,
}

/// Configuration for suite generation.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Number of pipelines to generate.
    pub n_pipelines: usize,
    /// Rows per synthetic training dataset.
    pub rows_per_dataset: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            n_pipelines: 100,
            rows_per_dataset: 300,
            seed: 7,
        }
    }
}

/// Generate the suite. Model families follow the paper's observation that
/// ~88% of OpenML models are tree-based, with the rest linear.
pub fn generate_suite(config: &SuiteConfig) -> Vec<SuiteEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.n_pipelines);
    for i in 0..config.n_pipelines {
        let n_numeric = rng.gen_range(2..12usize);
        let n_categorical = rng.gen_range(0..8usize);
        let rows = config.rows_per_dataset;
        let mut builder = TableBuilder::new(format!("openml_{i}"));
        let mut numeric_inputs = Vec::new();
        let mut numeric_cols: Vec<Vec<f64>> = Vec::new();
        for j in 0..n_numeric {
            let name = format!("num{j}");
            let col: Vec<f64> = (0..rows).map(|_| rng.gen_range(-2.0..2.0)).collect();
            numeric_cols.push(col.clone());
            numeric_inputs.push(name.clone());
            builder = builder.add_f64(&name, col);
        }
        let mut categorical_inputs = Vec::new();
        let mut cat_first: Vec<Vec<bool>> = Vec::new();
        for j in 0..n_categorical {
            let name = format!("cat{j}");
            // heavy-tailed cardinality like the OpenML study
            let card = if rng.gen_bool(0.15) {
                rng.gen_range(20..120usize)
            } else {
                rng.gen_range(2..8usize)
            };
            let col: Vec<String> = (0..rows)
                .map(|_| format!("k{}", rng.gen_range(0..card)))
                .collect();
            cat_first.push(col.iter().map(|v| v == "k0").collect());
            categorical_inputs.push(name.clone());
            builder = builder.add_utf8(&name, col);
        }
        // label depends on a random subset of the inputs so some features end
        // up unused by the trained models (the 46%-unused observation of §2.1)
        let used_numeric = rng.gen_range(1..=n_numeric.min(4));
        let label: Vec<f64> = (0..rows)
            .map(|r| {
                let mut score = 0.0;
                for col in numeric_cols.iter().take(used_numeric) {
                    score += col[r];
                }
                if let Some(first) = cat_first.first() {
                    if first[r] {
                        score += 1.0;
                    }
                }
                if score > 0.3 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        builder = builder.add_f64("label", label);
        let data = builder.build_batch().expect("valid suite dataset");

        let model = pick_model(&mut rng);
        let model_kind = match &model {
            ModelType::LogisticRegression { .. } => "LR",
            ModelType::DecisionTree { .. } => "DT",
            ModelType::RandomForest { .. } => "RF",
            ModelType::GradientBoosting { .. } => "GB",
        };
        let spec = PipelineSpec {
            name: format!("openml_{i}.onnx"),
            numeric_inputs,
            categorical_inputs,
            label: "label".into(),
            model,
            seed: config.seed.wrapping_add(i as u64),
        };
        if let Ok(pipeline) = train_pipeline(&data, &spec) {
            out.push(SuiteEntry {
                pipeline,
                data,
                model_kind,
            });
        }
    }
    out
}

fn pick_model(rng: &mut StdRng) -> ModelType {
    let roll: f64 = rng.gen();
    if roll < 0.12 {
        ModelType::LogisticRegression {
            l1_alpha: [0.0, 0.001, 0.01, 0.1][rng.gen_range(0..4)],
        }
    } else if roll < 0.40 {
        ModelType::DecisionTree {
            max_depth: rng.gen_range(3..14),
        }
    } else if roll < 0.72 {
        ModelType::RandomForest {
            n_trees: rng.gen_range(3..30),
            max_depth: rng.gen_range(3..10),
        }
    } else {
        ModelType::GradientBoosting {
            n_estimators: rng.gen_range(5..80),
            max_depth: rng.gen_range(2..6),
            learning_rate: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::MlRuntime;

    #[test]
    fn suite_generates_varied_pipelines() {
        let entries = generate_suite(&SuiteConfig {
            n_pipelines: 12,
            rows_per_dataset: 120,
            seed: 3,
        });
        assert_eq!(entries.len(), 12);
        let kinds: std::collections::HashSet<&str> = entries.iter().map(|e| e.model_kind).collect();
        assert!(kinds.len() >= 2, "expected varied model families");
        // every pipeline scores its own data
        let rt = MlRuntime::new();
        for e in &entries {
            let scores = rt.run_batch(&e.pipeline, &e.data).unwrap();
            assert_eq!(scores.len(), e.data.num_rows());
            assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let cfg = SuiteConfig {
            n_pipelines: 5,
            rows_per_dataset: 80,
            seed: 11,
        };
        let a = generate_suite(&cfg);
        let b = generate_suite(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.pipeline, y.pipeline);
        }
    }
}
