//! # raven-datagen
//!
//! Synthetic workload generators for the Raven reproduction: the four
//! evaluation datasets of the paper's Table 1 (Credit Card, Hospital,
//! Expedia, Flights) with matching shapes and join structures, and an
//! OpenML-CC18-like suite of trained pipelines used for the Fig. 1 study and
//! the strategy training of §5.2, plus deterministic mixed-tenant traffic
//! schedules for the serving benchmarks.

pub mod datasets;
pub mod suite;
pub mod traffic;

pub use datasets::{credit_card, expedia, five_table_star, flights, hospital, Dataset};
pub use suite::{generate_suite, SuiteConfig, SuiteEntry};
pub use traffic::{tenant_schedule, ScheduledRequest, TenantProfile};
