//! Synthetic versions of the paper's four evaluation datasets (Table 1).
//!
//! The real datasets (Kaggle Credit Card fraud, the hospital length-of-stay
//! dataset, and Project Hamlet's Expedia / Flights) are not redistributable
//! here, so each generator produces tables with the same *shape*: the same
//! number of tables, numeric/categorical input split, join structure (PK-FK
//! star schemas for Expedia and Flights), learnable label functions, and
//! categorical cardinalities large enough that one-hot encoding produces the
//! paper's wide feature spaces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raven_columnar::{Table, TableBuilder};

/// A generated dataset: one or more tables plus the prediction-query join
/// structure and the input columns a pipeline should use.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name ("credit_card", "hospital", "expedia", "flights").
    pub name: String,
    /// The tables (the first one is the fact table holding the label).
    pub tables: Vec<Table>,
    /// (left_table, left_key, right_table, right_key) join edges, in order.
    pub joins: Vec<(String, String, String, String)>,
    /// Numeric model-input columns.
    pub numeric_inputs: Vec<String>,
    /// Categorical model-input columns.
    pub categorical_inputs: Vec<String>,
    /// The label column (on the fact table).
    pub label: String,
}

impl Dataset {
    /// Total number of rows in the fact table.
    pub fn fact_rows(&self) -> usize {
        self.tables.first().map(|t| t.num_rows()).unwrap_or(0)
    }

    /// Total number of data input columns (Table 1's "# of data inputs").
    pub fn n_inputs(&self) -> usize {
        self.numeric_inputs.len() + self.categorical_inputs.len()
    }

    /// Number of features after one-hot encoding all categorical inputs
    /// (Table 1's "# of features after encoding").
    pub fn n_features_after_encoding(&self) -> usize {
        let mut total = self.numeric_inputs.len();
        for c in &self.categorical_inputs {
            let mut distinct = 0usize;
            for t in &self.tables {
                if t.schema().contains(c) {
                    if let Some(stats) = t.statistics().column(c) {
                        distinct = distinct.max(stats.distinct_count);
                    }
                }
            }
            total += distinct.max(1);
        }
        total
    }

    /// The prediction query's data part as SQL text (FROM/JOIN chain), used by
    /// examples and harnesses to build `WITH data AS (...)` clauses.
    pub fn from_clause(&self) -> String {
        let mut out = self.tables[0].name().to_string();
        for (left, lk, right, rk) in &self.joins {
            let _ = left;
            out.push_str(&format!(" JOIN {right} ON {lk} = {rk}"));
        }
        out
    }
}

/// Credit Card (single table, 28 numeric inputs, no categoricals).
pub fn credit_card(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TableBuilder::new("transactions").add_i64("id", (0..rows as i64).collect());
    let mut numeric_inputs = Vec::new();
    let mut features: Vec<Vec<f64>> = Vec::new();
    for i in 0..28 {
        let col: Vec<f64> = (0..rows).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let name = format!("v{i}");
        numeric_inputs.push(name.clone());
        features.push(col.clone());
        builder = builder.add_f64(&name, col);
    }
    let amount: Vec<f64> = (0..rows).map(|_| rng.gen_range(1.0..500.0)).collect();
    let label: Vec<f64> = (0..rows)
        .map(|r| {
            let score = 1.8 * features[0][r] - 1.2 * features[1][r]
                + 0.8 * features[2][r] * features[3][r]
                + rng.gen_range(-0.3..0.3);
            if score > 1.0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    builder = builder.add_f64("amount", amount).add_f64("is_fraud", label);
    let table = builder.build().expect("valid credit card table");
    Dataset {
        name: "credit_card".into(),
        tables: vec![table],
        joins: vec![],
        numeric_inputs,
        categorical_inputs: vec![],
        label: "is_fraud".into(),
    }
}

/// Hospital length-of-stay (single table, 9 numeric + 15 categorical inputs).
pub fn hospital(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let numeric_names = [
        "age",
        "bmi",
        "pulse",
        "respiration",
        "bloodureanitro",
        "creatinine",
        "sodium",
        "glucose",
        "hematocrit",
    ];
    let categorical_specs: [(&str, usize); 15] = [
        ("rcount", 6),
        ("gender", 2),
        ("facid", 5),
        ("dialysisrenalendstage", 2),
        ("asthma", 2),
        ("irondef", 2),
        ("pneum", 2),
        ("substancedependence", 2),
        ("psychologicaldisordermajor", 2),
        ("depress", 2),
        ("psychother", 2),
        ("fibrosisandother", 2),
        ("malnutrition", 2),
        ("hemo", 2),
        ("num_issues", 2),
    ];
    let mut builder = TableBuilder::new("hospital_stays").add_i64("id", (0..rows as i64).collect());
    let mut numeric = Vec::new();
    let mut numeric_cols: Vec<Vec<f64>> = Vec::new();
    for name in numeric_names {
        let (lo, hi) = match name {
            "age" => (18.0, 95.0),
            "bmi" => (15.0, 45.0),
            "pulse" => (45.0, 130.0),
            _ => (0.0, 100.0),
        };
        let col: Vec<f64> = (0..rows).map(|_| rng.gen_range(lo..hi)).collect();
        numeric_cols.push(col.clone());
        numeric.push(name.to_string());
        builder = builder.add_f64(name, col);
    }
    let mut categorical = Vec::new();
    let mut cat_cols: Vec<Vec<i64>> = Vec::new();
    for (name, card) in categorical_specs {
        let col: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..card as i64)).collect();
        cat_cols.push(col.clone());
        categorical.push(name.to_string());
        builder = builder.add_i64(name, col);
    }
    let label: Vec<f64> = (0..rows)
        .map(|r| {
            let score = 0.04 * (numeric_cols[0][r] - 60.0)
                + 0.06 * (numeric_cols[1][r] - 30.0)
                + 0.8 * cat_cols[0][r] as f64
                + 1.2 * cat_cols[4][r] as f64
                + 0.7 * cat_cols[6][r] as f64
                + rng.gen_range(-0.5..0.5);
            if score > 1.2 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    builder = builder.add_f64("long_stay", label);
    Dataset {
        name: "hospital".into(),
        tables: vec![builder.build().expect("valid hospital table")],
        joins: vec![],
        numeric_inputs: numeric,
        categorical_inputs: categorical,
        label: "long_stay".into(),
    }
}

/// Expedia (3 tables: searches ⋈ hotels ⋈ destinations; 8 numeric + 20
/// categorical inputs; wide one-hot space from high-cardinality categoricals).
pub fn expedia(rows: usize, seed: u64) -> Dataset {
    star_schema(StarSpec {
        name: "expedia",
        fact: "searches",
        fact_rows: rows,
        dims: vec![
            DimSpec {
                name: "hotels",
                key: "hotel_id",
                rows: (rows / 10).clamp(20, 2000),
                numeric: 3,
                categorical: 8,
                max_cardinality: 60,
            },
            DimSpec {
                name: "destinations",
                key: "dest_id",
                rows: (rows / 20).clamp(10, 1000),
                numeric: 2,
                categorical: 6,
                max_cardinality: 40,
            },
        ],
        fact_numeric: 3,
        fact_categorical: 6,
        fact_max_cardinality: 30,
        label: "booking",
        seed,
    })
}

/// Flights (4 tables: flights ⋈ carriers ⋈ origin airports ⋈ destination
/// airports; 4 numeric + 33 categorical inputs).
pub fn flights(rows: usize, seed: u64) -> Dataset {
    star_schema(StarSpec {
        name: "flights",
        fact: "flights",
        fact_rows: rows,
        dims: vec![
            DimSpec {
                name: "carriers",
                key: "carrier_id",
                rows: 30,
                numeric: 1,
                categorical: 9,
                max_cardinality: 30,
            },
            DimSpec {
                name: "airports_origin",
                key: "origin_id",
                rows: (rows / 15).clamp(20, 1500),
                numeric: 1,
                categorical: 10,
                max_cardinality: 80,
            },
            DimSpec {
                name: "airports_dest",
                key: "dest_id",
                rows: (rows / 15).clamp(20, 1500),
                numeric: 1,
                categorical: 10,
                max_cardinality: 80,
            },
        ],
        fact_numeric: 1,
        fact_categorical: 4,
        fact_max_cardinality: 25,
        label: "delayed",
        seed,
    })
}

/// Five-table star schema for the join-optimizer study: a `sales` fact table
/// joined against four dimensions declared **largest first** (customers,
/// products, suppliers, promotions), so the as-written join order drags the
/// full fact cardinality through every wide dimension before the selective
/// one. The `promotions` dimension is tiny and carries the numeric column
/// `promotions_num0` (uniform in `0..10`): filtering it below `0.5` keeps
/// ~5% of promotions — and hence ~5% of fact rows — which a cost-based
/// optimizer exploits by joining promotions first.
pub fn five_table_star(rows: usize, seed: u64) -> Dataset {
    star_schema(StarSpec {
        name: "star5",
        fact: "sales",
        fact_rows: rows,
        dims: vec![
            DimSpec {
                name: "customers",
                key: "customer_id",
                rows: (rows / 5).clamp(50, 20_000),
                numeric: 2,
                categorical: 2,
                max_cardinality: 12,
            },
            DimSpec {
                name: "products",
                key: "product_id",
                rows: (rows / 10).clamp(25, 10_000),
                numeric: 2,
                categorical: 2,
                max_cardinality: 10,
            },
            DimSpec {
                name: "suppliers",
                key: "supplier_id",
                rows: (rows / 20).clamp(12, 5_000),
                numeric: 1,
                categorical: 1,
                max_cardinality: 8,
            },
            DimSpec {
                name: "promotions",
                key: "promo_id",
                rows: (rows / 100).clamp(8, 1_000),
                numeric: 1,
                categorical: 1,
                max_cardinality: 4,
            },
        ],
        fact_numeric: 2,
        fact_categorical: 2,
        fact_max_cardinality: 8,
        label: "big_ticket",
        seed,
    })
}

struct DimSpec {
    name: &'static str,
    key: &'static str,
    rows: usize,
    numeric: usize,
    categorical: usize,
    max_cardinality: usize,
}

struct StarSpec {
    name: &'static str,
    fact: &'static str,
    fact_rows: usize,
    dims: Vec<DimSpec>,
    fact_numeric: usize,
    fact_categorical: usize,
    fact_max_cardinality: usize,
    label: &'static str,
    seed: u64,
}

fn star_schema(spec: StarSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut tables = Vec::new();
    let mut joins = Vec::new();
    let mut numeric_inputs = Vec::new();
    let mut categorical_inputs = Vec::new();

    // fact table
    let mut fact = TableBuilder::new(spec.fact).add_i64("id", (0..spec.fact_rows as i64).collect());
    let mut driver: Vec<f64> = vec![0.0; spec.fact_rows];
    for i in 0..spec.fact_numeric {
        let name = format!("{}_num{i}", spec.fact);
        let col: Vec<f64> = (0..spec.fact_rows)
            .map(|_| rng.gen_range(0.0..100.0))
            .collect();
        for (d, v) in driver.iter_mut().zip(col.iter()) {
            *d += 0.01 * (v - 50.0);
        }
        numeric_inputs.push(name.clone());
        fact = fact.add_f64(&name, col);
    }
    for i in 0..spec.fact_categorical {
        let card = rng.gen_range(2..=spec.fact_max_cardinality);
        let name = format!("{}_cat{i}", spec.fact);
        let col: Vec<String> = (0..spec.fact_rows)
            .map(|_| format!("c{}", rng.gen_range(0..card)))
            .collect();
        for (d, v) in driver.iter_mut().zip(col.iter()) {
            if v == "c0" {
                *d += 0.6;
            }
        }
        categorical_inputs.push(name.clone());
        fact = fact.add_utf8(&name, col);
    }
    // foreign keys + dimension tables
    for dim in &spec.dims {
        let fk: Vec<i64> = (0..spec.fact_rows)
            .map(|_| rng.gen_range(0..dim.rows as i64))
            .collect();
        fact = fact.add_i64(dim.key, fk);
        joins.push((
            spec.fact.to_string(),
            dim.key.to_string(),
            dim.name.to_string(),
            dim.key.to_string(),
        ));

        let mut dtable =
            TableBuilder::new(dim.name).add_i64(dim.key, (0..dim.rows as i64).collect());
        for i in 0..dim.numeric {
            let name = format!("{}_num{i}", dim.name);
            numeric_inputs.push(name.clone());
            dtable = dtable.add_f64(
                &name,
                (0..dim.rows).map(|_| rng.gen_range(0.0..10.0)).collect(),
            );
        }
        for i in 0..dim.categorical {
            let card = rng.gen_range(2..=dim.max_cardinality);
            let name = format!("{}_cat{i}", dim.name);
            categorical_inputs.push(name.clone());
            dtable = dtable.add_utf8(
                &name,
                (0..dim.rows)
                    .map(|_| format!("v{}", rng.gen_range(0..card)))
                    .collect(),
            );
        }
        tables.push(dtable.build().expect("valid dimension table"));
    }
    let label: Vec<f64> = driver
        .iter()
        .map(|&d| {
            if d + rng.gen_range(-0.4..0.4) > 0.4 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let fact = fact
        .add_f64(spec.label, label)
        .build()
        .expect("valid fact table");
    tables.insert(0, fact);

    Dataset {
        name: spec.name.to_string(),
        tables,
        joins,
        numeric_inputs,
        categorical_inputs,
        label: spec.label.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_card_shape_matches_table1() {
        let d = credit_card(500, 1);
        assert_eq!(d.tables.len(), 1);
        assert_eq!(d.n_inputs(), 28);
        assert_eq!(d.numeric_inputs.len(), 28);
        assert_eq!(d.n_features_after_encoding(), 28);
        assert_eq!(d.fact_rows(), 500);
        // both classes present
        let labels = d.tables[0]
            .to_batch()
            .unwrap()
            .column_by_name("is_fraud")
            .unwrap()
            .to_f64_vec()
            .unwrap();
        assert!(labels.contains(&1.0));
        assert!(labels.contains(&0.0));
    }

    #[test]
    fn hospital_shape_matches_table1() {
        let d = hospital(400, 2);
        assert_eq!(d.tables.len(), 1);
        assert_eq!(d.numeric_inputs.len(), 9);
        assert_eq!(d.categorical_inputs.len(), 15);
        assert_eq!(d.n_inputs(), 24);
        // after encoding: 9 numeric + ~50 one-hot columns (paper: 59 total)
        let f = d.n_features_after_encoding();
        assert!((30..=70).contains(&f), "features after encoding = {f}");
    }

    #[test]
    fn expedia_is_three_way_join() {
        let d = expedia(600, 3);
        assert_eq!(d.tables.len(), 3);
        assert_eq!(d.joins.len(), 2);
        assert_eq!(d.n_inputs(), 28);
        assert!(d.n_features_after_encoding() > 100);
        assert!(d.from_clause().contains("JOIN hotels"));
    }

    #[test]
    fn flights_is_four_way_join() {
        let d = flights(600, 4);
        assert_eq!(d.tables.len(), 4);
        assert_eq!(d.joins.len(), 3);
        assert_eq!(d.n_inputs(), 37);
        assert!(d.n_features_after_encoding() > 100);
    }

    #[test]
    fn five_table_star_shape() {
        let d = five_table_star(2000, 5);
        assert_eq!(d.tables.len(), 5);
        assert_eq!(d.joins.len(), 4);
        assert!(d.from_clause().contains("JOIN promotions"));
        // dimensions are declared largest-first so the as-written join order
        // is pessimal; promotions is the small selective one
        let dim_rows: Vec<usize> = d.tables[1..].iter().map(|t| t.num_rows()).collect();
        assert!(dim_rows.windows(2).all(|w| w[0] >= w[1]), "{dim_rows:?}");
        let promos = d.tables.iter().find(|t| t.name() == "promotions").unwrap();
        assert_eq!(promos.num_rows(), 20);
        // the selective filter column spans 0..10 so `< 0.5` keeps ~5%
        let stats = promos.statistics().column("promotions_num0").unwrap();
        assert!(stats.numeric_range().is_some());
        // both label classes present
        let labels = d.tables[0]
            .to_batch()
            .unwrap()
            .column_by_name("big_ticket")
            .unwrap()
            .to_f64_vec()
            .unwrap();
        assert!(labels.contains(&1.0) && labels.contains(&0.0));
    }

    #[test]
    fn deterministic_generation() {
        let a = hospital(100, 7);
        let b = hospital(100, 7);
        assert_eq!(
            a.tables[0]
                .to_batch()
                .unwrap()
                .column_by_name("age")
                .unwrap(),
            b.tables[0]
                .to_batch()
                .unwrap()
                .column_by_name("age")
                .unwrap()
        );
    }
}
