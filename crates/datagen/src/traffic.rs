//! Deterministic mixed-tenant request schedules for serving benchmarks.
//!
//! A serving study needs traffic that is (a) reproducible run-to-run so A/B
//! comparisons (fusion on/off, cache policies) see the *same* request
//! sequence, and (b) shaped like real multi-tenant load: tenants with
//! different volumes, different duplicate rates (dashboards refresh one hot
//! query; analysts fire distinct literals), and different QoS weights. This
//! module turns a set of [`TenantProfile`]s into one interleaved
//! [`ScheduledRequest`] list, seeded, with no global randomness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tenant's traffic shape in a generated schedule.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Tenant id, as passed to `Server::submit_as`.
    pub name: String,
    /// Deficit-round-robin weight for the server's QoS config (not used by
    /// the generator itself; carried so benches build both the schedule and
    /// the `QosConfig` from one source of truth).
    pub weight: u64,
    /// Relative share of total request volume (2 = twice as many requests
    /// as a share-1 tenant).
    pub share: u32,
    /// Percentage (0..=100) of this tenant's requests that repeat the hot
    /// query (`variant: None`) instead of using a distinct literal.
    pub duplicate_pct: u32,
}

/// One request slot in a generated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledRequest {
    /// Index into the profile slice the schedule was built from.
    pub tenant: usize,
    /// `None` = the shared hot query (fusable duplicate); `Some(k)` = the
    /// tenant's k-th distinct query variant (a distinct fingerprint).
    pub variant: Option<usize>,
}

/// Build a deterministic interleaved schedule of `requests` slots across
/// `profiles`, proportional to each profile's `share`, with each slot marked
/// duplicate/distinct by the profile's `duplicate_pct`.
///
/// Interleaving uses smooth weighted round-robin over shares, so tenants mix
/// at fine grain (no long single-tenant bursts that would understate queue
/// contention). Same inputs → same schedule, bit for bit.
pub fn tenant_schedule(
    requests: usize,
    profiles: &[TenantProfile],
    seed: u64,
) -> Vec<ScheduledRequest> {
    assert!(!profiles.is_empty(), "schedule needs at least one tenant");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current: Vec<i64> = vec![0; profiles.len()];
    let total_share: i64 = profiles.iter().map(|p| p.share.max(1) as i64).sum();
    let mut next_variant: Vec<usize> = vec![0; profiles.len()];
    let mut out = Vec::with_capacity(requests);
    for _ in 0..requests {
        // smooth weighted round-robin: bump every tenant by its share, pick
        // the largest accumulator, charge it the total
        for (c, p) in current.iter_mut().zip(profiles) {
            *c += p.share.max(1) as i64;
        }
        let tenant = current
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        current[tenant] -= total_share;

        let variant = if rng.gen_range(0..100u32) < profiles[tenant].duplicate_pct {
            None
        } else {
            let k = next_variant[tenant];
            next_variant[tenant] += 1;
            Some(k)
        };
        out.push(ScheduledRequest { tenant, variant });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<TenantProfile> {
        vec![
            TenantProfile {
                name: "dashboard".into(),
                weight: 2,
                share: 6,
                duplicate_pct: 100,
            },
            TenantProfile {
                name: "analyst".into(),
                weight: 1,
                share: 3,
                duplicate_pct: 0,
            },
            TenantProfile {
                name: "batch".into(),
                weight: 1,
                share: 1,
                duplicate_pct: 50,
            },
        ]
    }

    #[test]
    fn schedules_are_deterministic() {
        let a = tenant_schedule(500, &profiles(), 42);
        let b = tenant_schedule(500, &profiles(), 42);
        assert_eq!(a, b);
        let c = tenant_schedule(500, &profiles(), 43);
        assert_ne!(a, c, "different seeds must differ somewhere");
    }

    #[test]
    fn volume_tracks_shares_and_interleaving_is_fine_grained() {
        let schedule = tenant_schedule(1000, &profiles(), 7);
        let counts = [0usize, 1, 2].map(|t| schedule.iter().filter(|r| r.tenant == t).count());
        assert_eq!(counts, [600, 300, 100], "6:3:1 shares over 1000 slots");
        // smooth WRR: the share-6 tenant never waits more than a couple of
        // slots between turns, so there are no long single-tenant bursts
        let max_gap = schedule
            .iter()
            .enumerate()
            .filter(|(_, r)| r.tenant == 0)
            .map(|(i, _)| i)
            .scan(None, |prev, i| {
                let gap = prev.map(|p: usize| i - p).unwrap_or(0);
                *prev = Some(i);
                Some(gap)
            })
            .max()
            .unwrap();
        assert!(max_gap <= 3, "dashboard gap {max_gap} slots");
    }

    #[test]
    fn duplicate_rates_follow_profiles_and_variants_are_distinct() {
        let schedule = tenant_schedule(1000, &profiles(), 11);
        let dup = |t: usize| {
            let (d, n) = schedule
                .iter()
                .filter(|r| r.tenant == t)
                .fold((0usize, 0usize), |(d, n), r| {
                    (d + r.variant.is_none() as usize, n + 1)
                });
            (d, n)
        };
        let (d0, n0) = dup(0);
        assert_eq!(d0, n0, "100% duplicate tenant");
        let (d1, _) = dup(1);
        assert_eq!(d1, 0, "0% duplicate tenant");
        let (d2, n2) = dup(2);
        let pct = d2 * 100 / n2;
        assert!((30..=70).contains(&pct), "~50% duplicates, got {pct}%");
        // distinct variants within a tenant never repeat
        let mut analyst: Vec<usize> = schedule
            .iter()
            .filter(|r| r.tenant == 1)
            .filter_map(|r| r.variant)
            .collect();
        let len = analyst.len();
        analyst.dedup();
        assert_eq!(analyst.len(), len);
    }
}
