//! Error type for the unified IR and prediction-query parser.

use std::fmt;

/// Result alias used throughout `raven-ir`.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced while building, parsing, or validating the unified IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Parse error in the prediction-query text, with position information.
    Parse { message: String, position: usize },
    /// The query references a model that is not registered.
    UnknownModel(String),
    /// Error from the relational layer.
    Relational(String),
    /// Error from the ML layer.
    Ml(String),
    /// The query or IR is structurally invalid.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse { message, position } => {
                write!(f, "parse error at offset {position}: {message}")
            }
            IrError::UnknownModel(m) => write!(f, "unknown model: {m}"),
            IrError::Relational(m) => write!(f, "relational error: {m}"),
            IrError::Ml(m) => write!(f, "ml error: {m}"),
            IrError::Invalid(m) => write!(f, "invalid prediction query: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<raven_relational::RelationalError> for IrError {
    fn from(e: raven_relational::RelationalError) -> Self {
        IrError::Relational(e.to_string())
    }
}

impl From<raven_ml::MlError> for IrError {
    fn from(e: raven_ml::MlError) -> Self {
        IrError::Ml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = IrError::Parse {
            message: "unexpected token".into(),
            position: 12,
        };
        assert!(e.to_string().contains("offset 12"));
        assert!(IrError::UnknownModel("m".into())
            .to_string()
            .contains("unknown model"));
    }
}
