//! Parser for prediction queries using the paper's `PREDICT` table-valued
//! function syntax (Fig. 2 ➊), e.g.:
//!
//! ```sql
//! WITH data AS (
//!   SELECT * FROM patient_info AS pi
//!   JOIN pulmonary_test AS pt ON pi.id = pt.id
//!   JOIN blood_test AS bt ON pt.id = bt.id)
//! SELECT d.id
//! FROM PREDICT(MODEL = covid_risk.onnx, DATA = data AS d) WITH (risk_of_covid float) AS p
//! WHERE d.asthma = 1 AND p.risk_of_covid >= 0.5;
//! ```
//!
//! The parser produces a [`UnifiedPlan`]: the data part as a relational
//! [`LogicalPlan`], the resolved trained pipeline, and the query's predicates
//! and projection — the unified IR the Raven optimizer consumes.

use crate::error::{IrError, Result};
use crate::registry::ModelRegistry;
use crate::unified::UnifiedPlan;
use raven_columnar::Value;
use raven_relational::{BinaryOp, Catalog, Expr, LogicalPlan};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    StringLit(String),
    Symbol(String),
}

fn tokenize(sql: &str) -> Result<Vec<(Token, usize)>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            while i < bytes.len() && bytes[i] != '\'' {
                s.push(bytes[i]);
                i += 1;
            }
            if i >= bytes.len() {
                return Err(IrError::Parse {
                    message: "unterminated string literal".into(),
                    position: start,
                });
            }
            i += 1;
            out.push((Token::StringLit(s), start));
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut s = String::new();
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                s.push(bytes[i]);
                i += 1;
            }
            let n = s.parse::<f64>().map_err(|_| IrError::Parse {
                message: format!("invalid number {s}"),
                position: start,
            })?;
            out.push((Token::Number(n), start));
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut s = String::new();
            while i < bytes.len()
                && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
            {
                s.push(bytes[i]);
                i += 1;
            }
            out.push((Token::Ident(s), start));
            continue;
        }
        // multi-char operators
        let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
        if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
            out.push((Token::Symbol(two), i));
            i += 2;
            continue;
        }
        if "()=<>,*+-/;".contains(c) {
            out.push((Token::Symbol(c.to_string()), i));
            i += 1;
            continue;
        }
        return Err(IrError::Parse {
            message: format!("unexpected character '{c}'"),
            position: i,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// The raw result of parsing a prediction query, before model resolution.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The data-processing plan (the `DATA =` argument, resolved through any
    /// `WITH` common table expression).
    pub data: LogicalPlan,
    /// Model name referenced in `MODEL = ...` (None for plain SELECTs).
    pub model: Option<String>,
    /// The declared prediction output column (from `WITH (<col> <type>)`).
    pub prediction_column: Option<String>,
    /// Conjunctive WHERE predicates (aliases already stripped).
    pub predicates: Vec<Expr>,
    /// SELECT expressions (aliases already stripped); empty for `SELECT *`.
    pub projection: Vec<Expr>,
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    /// alias → kind; tracks table aliases, the DATA alias, and the PREDICT alias
    aliases: HashMap<String, AliasKind>,
    prediction_column: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
enum AliasKind {
    Data,
    Prediction,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
            aliases: HashMap::new(),
            prediction_column: None,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, p)| *p)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(IrError::Parse {
            message: message.into(),
            position: self.position(),
        })
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(format!("expected keyword {kw}"))
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.next() {
            Some(Token::Symbol(s)) if s == sym => Ok(()),
            other => self.error(format!("expected '{sym}', found {other:?}")),
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.error(format!("expected identifier, found {other:?}")),
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_query(&mut self) -> Result<ParsedQuery> {
        // optional WITH <name> AS ( <select> )
        let mut ctes: HashMap<String, LogicalPlan> = HashMap::new();
        if self.eat_keyword("WITH") {
            loop {
                let name = self.expect_ident()?;
                self.expect_keyword("AS")?;
                self.expect_symbol("(")?;
                let plan = self.parse_select_core()?;
                self.expect_symbol(")")?;
                ctes.insert(name.to_lowercase(), plan);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_keyword("SELECT")?;
        let select_items = self.parse_select_list()?;
        self.expect_keyword("FROM")?;

        let (data, model, prediction_column) = if self.peek_keyword("PREDICT") {
            self.parse_predict_tvf(&ctes)?
        } else {
            let plan = self.parse_from_joins(&ctes)?;
            (plan, None, None)
        };
        self.prediction_column = prediction_column.clone();

        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            let e = self.parse_expr()?;
            predicates = e.split_conjunction().into_iter().cloned().collect();
        }
        self.eat_symbol(";");
        if self.pos < self.tokens.len() {
            return self.error("unexpected trailing tokens");
        }
        Ok(ParsedQuery {
            data,
            model,
            prediction_column,
            predicates,
            projection: select_items,
        })
    }

    /// `SELECT <list> FROM t [AS a] [JOIN u ON x = y]* [WHERE e]` — used for CTE bodies.
    fn parse_select_core(&mut self) -> Result<LogicalPlan> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let mut plan = self.parse_from_joins(&HashMap::new())?;
        if self.eat_keyword("WHERE") {
            plan = plan.filter(self.parse_expr()?);
        }
        if !select.is_empty() {
            plan = plan.project(select);
        }
        Ok(plan)
    }

    fn parse_from_joins(&mut self, ctes: &HashMap<String, LogicalPlan>) -> Result<LogicalPlan> {
        let mut plan = self.parse_table_ref(ctes)?;
        while self.eat_keyword("JOIN") {
            let right = self.parse_table_ref(ctes)?;
            self.expect_keyword("ON")?;
            let left_key = self.expect_ident()?;
            self.expect_symbol("=")?;
            let right_key = self.expect_ident()?;
            plan = plan.join(right, &strip_alias(&left_key), &strip_alias(&right_key));
        }
        Ok(plan)
    }

    fn parse_table_ref(&mut self, ctes: &HashMap<String, LogicalPlan>) -> Result<LogicalPlan> {
        let name = self.expect_ident()?;
        if self.eat_keyword("AS") {
            let alias = self.expect_ident()?;
            self.aliases.insert(alias.to_lowercase(), AliasKind::Data);
        }
        if let Some(plan) = ctes.get(&name.to_lowercase()) {
            Ok(plan.clone())
        } else {
            Ok(LogicalPlan::scan(name))
        }
    }

    fn parse_predict_tvf(
        &mut self,
        ctes: &HashMap<String, LogicalPlan>,
    ) -> Result<(LogicalPlan, Option<String>, Option<String>)> {
        self.expect_keyword("PREDICT")?;
        self.expect_symbol("(")?;
        self.expect_keyword("MODEL")?;
        self.expect_symbol("=")?;
        let model = self.expect_ident()?;
        self.expect_symbol(",")?;
        self.expect_keyword("DATA")?;
        self.expect_symbol("=")?;
        let data_name = self.expect_ident()?;
        if self.eat_keyword("AS") {
            let alias = self.expect_ident()?;
            self.aliases.insert(alias.to_lowercase(), AliasKind::Data);
        }
        self.expect_symbol(")")?;
        // WITH (<column> <type>) AS <alias>
        let mut prediction_column = None;
        if self.eat_keyword("WITH") {
            self.expect_symbol("(")?;
            let col = self.expect_ident()?;
            let _ty = self.expect_ident()?; // float / int / ...
            self.expect_symbol(")")?;
            prediction_column = Some(col);
            if self.eat_keyword("AS") {
                let alias = self.expect_ident()?;
                self.aliases
                    .insert(alias.to_lowercase(), AliasKind::Prediction);
            }
        }
        let data = if let Some(plan) = ctes.get(&data_name.to_lowercase()) {
            plan.clone()
        } else {
            LogicalPlan::scan(data_name)
        };
        Ok((data, Some(model), prediction_column))
    }

    fn parse_select_list(&mut self) -> Result<Vec<Expr>> {
        if self.eat_symbol("*") {
            // Allow `d.*, p.score`-style mixing by skipping the star and
            // treating the query as "everything" when only the star appears.
            if self.eat_symbol(",") {
                let mut rest = self.parse_select_list()?;
                let mut out = Vec::new();
                out.append(&mut rest);
                return Ok(out);
            }
            return Ok(vec![]);
        }
        let mut out = Vec::new();
        loop {
            // handle `alias.*`
            if let Some(Token::Ident(name)) = self.peek() {
                if name.ends_with(".*") || name == "*" {
                    self.pos += 1;
                    if !self.eat_symbol(",") {
                        break;
                    }
                    continue;
                }
            }
            let e = self.parse_expr()?;
            let e = if self.eat_keyword("AS") {
                e.alias(self.expect_ident()?)
            } else {
                e
            };
            out.push(e);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(out)
    }

    // -- expressions ----------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(self.parse_not()?.negate())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => Some(BinaryOp::Eq),
                "<>" | "!=" => Some(BinaryOp::NotEq),
                "<" => Some(BinaryOp::Lt),
                "<=" => Some(BinaryOp::LtEq),
                ">" => Some(BinaryOp::Gt),
                ">=" => Some(BinaryOp::GtEq),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(raven_relational::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(s)) if s == "+" => Some(BinaryOp::Add),
                Some(Token::Symbol(s)) if s == "-" => Some(BinaryOp::Subtract),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = raven_relational::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(s)) if s == "*" => Some(BinaryOp::Multiply),
                Some(Token::Symbol(s)) if s == "/" => Some(BinaryOp::Divide),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_primary()?;
            left = raven_relational::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    Ok(Expr::Literal(Value::Int64(n as i64)))
                } else {
                    Ok(Expr::Literal(Value::Float64(n)))
                }
            }
            Some(Token::StringLit(s)) => Ok(Expr::Literal(Value::Utf8(s))),
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Value::Boolean(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Value::Boolean(false)));
                }
                Ok(Expr::Column(self.resolve_column(&name)))
            }
            Some(Token::Symbol(s)) if s == "(" => {
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol(s)) if s == "-" => {
                let e = self.parse_primary()?;
                Ok(Expr::Literal(Value::Float64(0.0)).sub(e))
            }
            other => self.error(format!("expected expression, found {other:?}")),
        }
    }

    /// Resolve `alias.column` against known aliases: prediction-alias columns
    /// keep the declared prediction column name, everything else strips the
    /// qualifier (column names are globally unique in our catalogs, as in the
    /// paper's star-schema datasets).
    fn resolve_column(&self, name: &str) -> String {
        match name.split_once('.') {
            None => name.to_string(),
            Some((alias, col)) => match self.aliases.get(&alias.to_lowercase()) {
                Some(AliasKind::Prediction) => col.to_string(),
                _ => col.to_string(),
            },
        }
    }
}

fn strip_alias(name: &str) -> String {
    name.split_once('.')
        .map(|(_, c)| c.to_string())
        .unwrap_or_else(|| name.to_string())
}

/// Parse a prediction query into a [`ParsedQuery`] (no model resolution).
pub fn parse(sql: &str) -> Result<ParsedQuery> {
    Parser::new(sql)?.parse_query()
}

/// Parse a prediction query and resolve it into a [`UnifiedPlan`] using the
/// model registry and the table catalog.
pub fn parse_prediction_query(
    sql: &str,
    registry: &ModelRegistry,
    catalog: &Catalog,
) -> Result<UnifiedPlan> {
    let parsed = parse(sql)?;
    let model_name = parsed
        .model
        .clone()
        .ok_or_else(|| IrError::Invalid("query does not contain a PREDICT statement".into()))?;
    let pipeline = registry.get(&model_name)?;
    let prediction_column = parsed
        .prediction_column
        .clone()
        .unwrap_or_else(|| "score".to_string());
    let mut plan = UnifiedPlan::new(
        parsed.data.clone(),
        pipeline.as_ref().clone(),
        prediction_column,
        catalog,
    )?;
    plan.predicates = parsed.predicates;
    plan.projection = parsed.projection;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_columnar::TableBuilder;
    use raven_ml::{
        InputKind, Operator, Pipeline, PipelineInput, PipelineNode, Tree, TreeEnsemble,
    };
    use raven_relational::col;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [
            ("patient_info", vec!["id", "age", "asthma"]),
            ("pulmonary_test", vec!["id", "fev"]),
            ("blood_test", vec!["id", "iron"]),
        ] {
            let mut b = TableBuilder::new(name).add_i64(cols[0], vec![1, 2]);
            for c2 in &cols[1..] {
                b = b.add_f64(c2, vec![1.0, 2.0]);
            }
            c.register(b.build().unwrap());
        }
        c
    }

    fn registry() -> ModelRegistry {
        let mut r = ModelRegistry::new();
        let p = Pipeline::new(
            "covid_risk.onnx",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(0.9), 2)),
                inputs: vec!["age".into(), "asthma".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap();
        r.register(p);
        r
    }

    const RUNNING_EXAMPLE: &str = "
        WITH data AS (
            SELECT * FROM patient_info AS pi
            JOIN pulmonary_test AS pt ON pi.id = pt.id
            JOIN blood_test AS bt ON pt.id = bt.id)
        SELECT d.id
        FROM PREDICT(MODEL = covid_risk.onnx, DATA = data AS d) WITH (risk_of_covid float) AS p
        WHERE d.asthma = 1 AND p.risk_of_covid >= 0.5;";

    #[test]
    fn parses_running_example() {
        let parsed = parse(RUNNING_EXAMPLE).unwrap();
        assert_eq!(parsed.model.as_deref(), Some("covid_risk.onnx"));
        assert_eq!(parsed.prediction_column.as_deref(), Some("risk_of_covid"));
        assert_eq!(parsed.predicates.len(), 2);
        assert_eq!(parsed.projection, vec![col("id")]);
        // the data plan is a 3-way join
        let display = parsed.data.display_indent();
        assert_eq!(display.matches("Join").count(), 2);
        assert_eq!(display.matches("Scan").count(), 3);
    }

    #[test]
    fn resolves_to_unified_plan() {
        let plan = parse_prediction_query(RUNNING_EXAMPLE, &registry(), &catalog()).unwrap();
        assert_eq!(plan.prediction_column, "risk_of_covid");
        assert_eq!(plan.input_predicates().len(), 1);
        assert_eq!(plan.output_predicates().len(), 1);
        assert_eq!(plan.pipeline.name, "covid_risk.onnx");
    }

    #[test]
    fn predict_as_udf_style_without_with_clause() {
        let sql = "SELECT id FROM PREDICT(MODEL = covid_risk, DATA = patient_info AS d) \
                   WITH (score float) AS p WHERE p.score > 0.5";
        let plan = parse_prediction_query(sql, &registry(), &catalog()).unwrap();
        assert_eq!(plan.prediction_column, "score");
        assert_eq!(plan.output_predicates().len(), 1);
    }

    #[test]
    fn plain_select_parses_without_model() {
        let parsed = parse("SELECT age FROM patient_info WHERE asthma = 1 AND age >= 30").unwrap();
        assert!(parsed.model.is_none());
        assert_eq!(parsed.predicates.len(), 2);
        let err = parse_prediction_query("SELECT age FROM patient_info", &registry(), &catalog())
            .unwrap_err();
        assert!(matches!(err, IrError::Invalid(_)));
    }

    #[test]
    fn expression_precedence_and_literals() {
        let parsed =
            parse("SELECT id FROM patient_info WHERE age * 2 + 1 > 81 AND asthma = 1 OR age < 10")
                .unwrap();
        assert_eq!(parsed.predicates.len(), 1); // OR at top level → single predicate
        let s = parsed.predicates[0].to_string();
        assert!(s.contains("OR"));
        assert!(s.contains("((age * 2) + 1)"));

        let parsed = parse("SELECT id FROM t WHERE name = 'high' AND flag = true").unwrap();
        assert_eq!(parsed.predicates.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT * FROM PREDICT(MODEL covid, DATA = t)").is_err());
        assert!(parse("SELECT * FROM t WHERE 'unterminated").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 1 extra garbage ^").is_err());
    }

    #[test]
    fn unknown_model_is_reported() {
        let sql = "SELECT id FROM PREDICT(MODEL = nope, DATA = patient_info) WITH (s float) AS p";
        assert!(matches!(
            parse_prediction_query(sql, &registry(), &catalog()),
            Err(IrError::UnknownModel(_))
        ));
    }

    #[test]
    fn negative_numbers_and_parens() {
        let parsed = parse("SELECT id FROM t WHERE x > -1.5 AND (a = 1 OR b = 2)").unwrap();
        assert_eq!(parsed.predicates.len(), 2);
    }
}
