//! The unified intermediate representation (paper §3).
//!
//! A [`UnifiedPlan`] holds every operator of a prediction query — relational
//! operators (scans, joins, filters, projections of the data-processing part)
//! and ML operators (the featurizers and models of the trained pipeline) — in
//! one structure, so the Raven optimizer can pass information between the two
//! sides (cross-optimizations, §4) and choose a runtime per part (§5).

use crate::error::{IrError, Result};
use raven_ml::Pipeline;
use raven_relational::{AggregateExpr, Catalog, Expr, LogicalPlan};
use std::collections::BTreeSet;
use std::fmt;

/// One node of the unified operator graph, used for display, statistics, and
/// coverage analysis. Nodes are produced on demand from the plan parts.
#[derive(Debug, Clone, PartialEq)]
pub enum UnifiedNode {
    /// A relational operator (rendered from the data plan or post-processing).
    Relational { name: String, detail: String },
    /// An ML operator from the trained pipeline.
    Ml { name: String, detail: String },
}

/// A prediction query in the unified IR.
#[derive(Debug, Clone)]
pub struct UnifiedPlan {
    /// The data-processing part feeding the trained pipeline (scans, joins,
    /// filters, projections below the `PREDICT`).
    pub data: LogicalPlan,
    /// The trained pipeline `M` invoked by the `PREDICT` statement.
    pub pipeline: Pipeline,
    /// The column name the prediction is exposed as (e.g. `risk_of_covid`).
    pub prediction_column: String,
    /// Conjunctive predicates of the query's WHERE clause. They may reference
    /// data columns (input-side) and/or the prediction column (output-side).
    pub predicates: Vec<Expr>,
    /// Final SELECT expressions (may reference data columns and the
    /// prediction column). Empty means "all data columns plus the prediction".
    pub projection: Vec<Expr>,
    /// Optional final aggregation (group-by columns, aggregate expressions).
    pub aggregate: Option<(Vec<String>, Vec<AggregateExpr>)>,
}

impl UnifiedPlan {
    /// Build a unified plan, validating that the pipeline's inputs are
    /// produced by the data part.
    pub fn new(
        data: LogicalPlan,
        pipeline: Pipeline,
        prediction_column: impl Into<String>,
        catalog: &Catalog,
    ) -> Result<Self> {
        let plan = UnifiedPlan {
            data,
            pipeline,
            prediction_column: prediction_column.into(),
            predicates: vec![],
            projection: vec![],
            aggregate: None,
        };
        plan.validate(catalog)?;
        Ok(plan)
    }

    /// Check that every pipeline input is available from the data part.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let schema = self.data.schema(catalog)?;
        for input in &self.pipeline.inputs {
            if !schema.contains(&input.name) {
                return Err(IrError::Invalid(format!(
                    "pipeline input '{}' is not produced by the data part",
                    input.name
                )));
            }
        }
        self.pipeline.validate()?;
        Ok(())
    }

    /// Predicates that only reference data columns (candidates for
    /// predicate-based model pruning and for pushing into the data part).
    pub fn input_predicates(&self) -> Vec<&Expr> {
        self.predicates
            .iter()
            .filter(|p| !self.references_prediction(p))
            .collect()
    }

    /// Predicates that reference the prediction column (candidates for
    /// output-based model pruning).
    pub fn output_predicates(&self) -> Vec<&Expr> {
        self.predicates
            .iter()
            .filter(|p| self.references_prediction(p))
            .collect()
    }

    /// Whether an expression references the prediction column.
    pub fn references_prediction(&self, expr: &Expr) -> bool {
        expr.referenced_columns().contains(&self.prediction_column)
    }

    /// Data columns required by the final projection and predicates (other
    /// than the prediction itself). Used to decide which columns must survive
    /// even if the model does not use them.
    pub fn externally_required_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for e in self.projection.iter().chain(self.predicates.iter()) {
            for c in e.referenced_columns() {
                if c != self.prediction_column {
                    out.insert(c);
                }
            }
        }
        if let Some((group_by, aggs)) = &self.aggregate {
            out.extend(group_by.iter().cloned());
            for a in aggs {
                for c in a.arg.referenced_columns() {
                    if c != self.prediction_column {
                        out.insert(c);
                    }
                }
            }
        }
        out
    }

    /// Enumerate every operator of the query as unified nodes (relational and
    /// ML operators in one list) — the "single graph structure" view of §3.
    pub fn nodes(&self) -> Vec<UnifiedNode> {
        let mut out = Vec::new();
        collect_relational(&self.data, &mut out);
        for n in &self.pipeline.nodes {
            out.push(UnifiedNode::Ml {
                name: n.op.name().to_string(),
                detail: format!("{} -> {}", n.inputs.join(", "), n.output),
            });
        }
        for p in &self.predicates {
            out.push(UnifiedNode::Relational {
                name: "Filter".into(),
                detail: p.to_string(),
            });
        }
        if !self.projection.is_empty() {
            out.push(UnifiedNode::Relational {
                name: "Projection".into(),
                detail: self
                    .projection
                    .iter()
                    .map(|e| e.output_name())
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        if let Some((group_by, aggs)) = &self.aggregate {
            out.push(UnifiedNode::Relational {
                name: "Aggregate".into(),
                detail: format!("group_by=[{}], aggs={}", group_by.join(", "), aggs.len()),
            });
        }
        out
    }

    /// Number of operators in the unified graph.
    pub fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// Number of ML operators.
    pub fn ml_node_count(&self) -> usize {
        self.nodes()
            .iter()
            .filter(|n| matches!(n, UnifiedNode::Ml { .. }))
            .count()
    }

    /// Render an EXPLAIN-style description of the whole prediction query.
    pub fn display(&self) -> String {
        let mut out = String::new();
        out.push_str("PredictionQuery\n");
        out.push_str(&format!(
            "  prediction column: {}\n",
            self.prediction_column
        ));
        out.push_str(&format!("  pipeline: {}\n", self.pipeline.summary()));
        out.push_str("  data part:\n");
        for line in self.data.display_indent().lines() {
            out.push_str(&format!("    {line}\n"));
        }
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("  where: {}\n", preds.join(" AND ")));
        }
        if !self.projection.is_empty() {
            let cols: Vec<String> = self.projection.iter().map(|e| e.output_name()).collect();
            out.push_str(&format!("  select: {}\n", cols.join(", ")));
        }
        if let Some((group_by, aggs)) = &self.aggregate {
            out.push_str(&format!(
                "  aggregate: group_by=[{}], {} aggregates\n",
                group_by.join(", "),
                aggs.len()
            ));
        }
        out
    }
}

impl fmt::Display for UnifiedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

fn collect_relational(plan: &LogicalPlan, out: &mut Vec<UnifiedNode>) {
    let (name, detail) = match plan {
        LogicalPlan::Scan { table, .. } => ("Scan".to_string(), table.clone()),
        LogicalPlan::Filter { predicate, .. } => ("Filter".to_string(), predicate.to_string()),
        LogicalPlan::Projection { exprs, .. } => (
            "Projection".to_string(),
            exprs
                .iter()
                .map(|e| e.output_name())
                .collect::<Vec<_>>()
                .join(", "),
        ),
        LogicalPlan::Join {
            left_key,
            right_key,
            ..
        } => ("Join".to_string(), format!("{left_key} = {right_key}")),
        LogicalPlan::Aggregate { aggregates, .. } => {
            ("Aggregate".to_string(), format!("{}", aggregates.len()))
        }
        LogicalPlan::Limit { n, .. } => ("Limit".to_string(), n.to_string()),
    };
    out.push(UnifiedNode::Relational { name, detail });
    for input in plan.inputs() {
        collect_relational(input, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_columnar::TableBuilder;
    use raven_ml::{
        InputKind, Operator, Pipeline, PipelineInput, PipelineNode, Scaler, Tree, TreeEnsemble,
    };
    use raven_relational::{col, lit, AggregateFunction};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("patient_info")
                .add_i64("id", vec![1, 2])
                .add_f64("age", vec![40.0, 70.0])
                .add_i64("asthma", vec![1, 0])
                .build()
                .unwrap(),
        );
        c
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            "m.onnx",
            vec![PipelineInput {
                name: "age".into(),
                kind: InputKind::Numeric,
            }],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler::identity(1)),
                    inputs: vec!["age".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(0.8), 1)),
                    inputs: vec!["scaled".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    fn plan() -> (UnifiedPlan, Catalog) {
        let c = catalog();
        let mut p =
            UnifiedPlan::new(LogicalPlan::scan("patient_info"), pipeline(), "risk", &c).unwrap();
        p.predicates = vec![col("asthma").eq(lit(1i64)), col("risk").gt_eq(lit(0.5))];
        p.projection = vec![col("id"), col("risk")];
        (p, c)
    }

    #[test]
    fn construction_and_validation() {
        let (p, c) = plan();
        assert!(p.validate(&c).is_ok());

        // pipeline input missing from data part
        let bad_pipeline = Pipeline::new(
            "m",
            vec![PipelineInput {
                name: "bmi".into(),
                kind: InputKind::Numeric,
            }],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(1.0), 1)),
                inputs: vec!["bmi".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap();
        assert!(
            UnifiedPlan::new(LogicalPlan::scan("patient_info"), bad_pipeline, "risk", &c).is_err()
        );
    }

    #[test]
    fn predicate_classification() {
        let (p, _) = plan();
        assert_eq!(p.input_predicates().len(), 1);
        assert_eq!(p.output_predicates().len(), 1);
        assert!(p.references_prediction(&col("risk").gt(lit(0.0))));
        assert!(!p.references_prediction(&col("age").gt(lit(0.0))));
    }

    #[test]
    fn externally_required_columns() {
        let (mut p, _) = plan();
        let req = p.externally_required_columns();
        assert!(req.contains("id"));
        assert!(req.contains("asthma"));
        assert!(!req.contains("risk"));
        p.aggregate = Some((
            vec!["asthma".into()],
            vec![AggregateExpr {
                func: AggregateFunction::Count,
                arg: col("id"),
                alias: "n".into(),
            }],
        ));
        assert!(p.externally_required_columns().contains("asthma"));
    }

    #[test]
    fn unified_nodes_mix_both_sides() {
        let (p, _) = plan();
        let nodes = p.nodes();
        assert!(nodes
            .iter()
            .any(|n| matches!(n, UnifiedNode::Relational { name, .. } if name == "Scan")));
        assert!(nodes
            .iter()
            .any(|n| matches!(n, UnifiedNode::Ml { name, .. } if name == "Scaler")));
        assert_eq!(p.ml_node_count(), 2);
        assert!(p.node_count() >= 5);
    }

    #[test]
    fn display_contains_parts() {
        let (p, _) = plan();
        let s = p.to_string();
        assert!(s.contains("PredictionQuery"));
        assert!(s.contains("patient_info"));
        assert!(s.contains("risk"));
        assert!(s.contains("where"));
    }
}
