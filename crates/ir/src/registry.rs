//! Model registry: maps model names (the `MODEL = ...` argument of the
//! `PREDICT` statement) to trained pipelines, playing the role of the model
//! files on HDFS/disk in the paper's deployment.

use crate::error::{IrError, Result};
use raven_ml::Pipeline;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of named trained pipelines.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: HashMap<String, Arc<Pipeline>>,
    epoch: u64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Register a pipeline under its own name.
    pub fn register(&mut self, pipeline: Pipeline) {
        self.epoch += 1;
        self.models
            .insert(pipeline.name.clone(), Arc::new(pipeline));
    }

    /// Register a pipeline under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, pipeline: Pipeline) {
        self.epoch += 1;
        self.models.insert(name.into(), Arc::new(pipeline));
    }

    /// Drop a model (exact name only — no `.onnx` fuzzing, so journal replay
    /// is deterministic). Bumps the epoch, invalidating cached compiled
    /// artifacts the same way a registration does.
    pub fn drop_model(&mut self, name: &str) -> Result<()> {
        match self.models.remove(name) {
            Some(_) => {
                self.epoch += 1;
                Ok(())
            }
            None => Err(IrError::UnknownModel(name.to_string())),
        }
    }

    /// Monotonic version counter, bumped on every registration. Serving-side
    /// caches compare epochs to invalidate prepared plans and compiled models
    /// after a model is (re-)registered.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restore the epoch counter during recovery (see
    /// `Catalog::restore_epoch`): warm restart must resume at the pre-crash
    /// epoch so epoch-tagged cache keys can never alias different model
    /// content. Recovery-only.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Resolve a model name. Names are matched exactly, then with a `.onnx`
    /// suffix appended, so queries can say `MODEL = covid_risk.onnx` or just
    /// `covid_risk`.
    pub fn get(&self, name: &str) -> Result<Arc<Pipeline>> {
        if let Some(m) = self.models.get(name) {
            return Ok(m.clone());
        }
        let with_ext = format!("{name}.onnx");
        if let Some(m) = self.models.get(&with_ext) {
            return Ok(m.clone());
        }
        let trimmed = name.strip_suffix(".onnx").unwrap_or(name);
        self.models
            .get(trimmed)
            .cloned()
            .ok_or_else(|| IrError::UnknownModel(name.to_string()))
    }

    /// Whether a model with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_ok()
    }

    /// Names of all registered models (sorted).
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::{InputKind, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble};

    fn pipeline(name: &str) -> Pipeline {
        Pipeline::new(
            name,
            vec![PipelineInput {
                name: "x".into(),
                kind: InputKind::Numeric,
            }],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(1.0), 1)),
                inputs: vec!["x".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap()
    }

    #[test]
    fn epoch_bumps_on_every_registration() {
        let mut r = ModelRegistry::new();
        assert_eq!(r.epoch(), 0);
        r.register(pipeline("m"));
        assert_eq!(r.epoch(), 1);
        r.register(pipeline("m"));
        assert_eq!(r.epoch(), 2);
        r.register_as("other", pipeline("m"));
        assert_eq!(r.epoch(), 3);
    }

    #[test]
    fn drop_model_is_exact_name_and_bumps_epoch() {
        let mut r = ModelRegistry::new();
        r.register(pipeline("covid_risk.onnx"));
        let before = r.epoch();
        // exact-name only: the fuzzy-resolved alias must not drop
        assert!(r.drop_model("covid_risk").is_err());
        assert_eq!(r.epoch(), before);
        r.drop_model("covid_risk.onnx").unwrap();
        assert!(!r.contains("covid_risk.onnx"));
        assert_eq!(r.epoch(), before + 1);
    }

    #[test]
    fn restore_epoch_resumes_counter() {
        let mut r = ModelRegistry::new();
        r.restore_epoch(7);
        assert_eq!(r.epoch(), 7);
        r.register(pipeline("m"));
        assert_eq!(r.epoch(), 8);
    }

    #[test]
    fn register_and_resolve_with_extension_handling() {
        let mut r = ModelRegistry::new();
        r.register(pipeline("covid_risk.onnx"));
        r.register_as("fraud", pipeline("other"));
        assert!(r.get("covid_risk.onnx").is_ok());
        assert!(r.get("covid_risk").is_ok());
        assert!(r.get("fraud").is_ok());
        assert!(r.get("fraud.onnx").is_ok());
        assert!(matches!(r.get("missing"), Err(IrError::UnknownModel(_))));
        assert!(r.contains("covid_risk"));
        assert!(!r.contains("missing"));
        assert_eq!(r.model_names(), vec!["covid_risk.onnx", "fraud"]);
    }
}
