//! Query fingerprinting for the serving layer's prepared-plan cache.
//!
//! A fingerprint is computed from the *parsed* query, not its text, so two
//! spellings of the same prediction query — different whitespace, different
//! keyword casing, a trailing semicolon — normalize to the same fingerprint,
//! while semantically distinct queries (different literals, predicates,
//! projections, models) never collide on the canonical form: the cache is
//! keyed by the full canonical string, with the 64-bit hash as a cheap
//! pre-filter and display handle.

use crate::error::Result;
use crate::parser::{parse, ParsedQuery};
use std::fmt;

/// A normalized identity for a prediction query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryFingerprint {
    /// FNV-1a hash of the canonical form (cheap equality pre-filter).
    pub hash: u64,
    /// The full canonical rendering of the parsed query. Cache keys use this
    /// string, so distinct queries can never collide.
    pub canonical: String,
}

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// Fingerprint a prediction query by parsing and canonicalizing it.
pub fn fingerprint_query(sql: &str) -> Result<QueryFingerprint> {
    let parsed = parse(sql)?;
    Ok(fingerprint_parsed(&parsed))
}

/// Fingerprint an already-parsed query.
pub fn fingerprint_parsed(parsed: &ParsedQuery) -> QueryFingerprint {
    let canonical = canonical_form(parsed);
    QueryFingerprint {
        hash: fnv1a(canonical.as_bytes()),
        canonical,
    }
}

/// Render the canonical form of a parsed query: every semantically relevant
/// part in a fixed order, with model names normalized the way the registry
/// resolves them (`m` and `m.onnx` are the same model).
fn canonical_form(parsed: &ParsedQuery) -> String {
    let mut out = String::new();
    out.push_str("model=");
    match &parsed.model {
        Some(m) => out.push_str(m.strip_suffix(".onnx").unwrap_or(m)),
        None => out.push('-'),
    }
    out.push_str(";prediction=");
    out.push_str(parsed.prediction_column.as_deref().unwrap_or("-"));
    out.push_str(";data=");
    out.push_str(&parsed.data.display_indent());
    out.push_str(";where=");
    for p in &parsed.predicates {
        out.push_str(&p.to_string());
        out.push('&');
    }
    out.push_str(";select=");
    for e in &parsed.projection {
        out.push_str(&e.to_string());
        out.push(',');
    }
    out
}

/// 64-bit FNV-1a — dependency-free and deterministic across processes. Also
/// used by the session's compiled-model cache keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str =
        "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                        WITH (risk float) AS p WHERE d.asthma = 1 AND p.risk >= 0.5";

    #[test]
    fn whitespace_and_keyword_case_do_not_change_the_fingerprint() {
        let f = fingerprint_query(BASE).unwrap();
        let shouty = "select   d.id ,  p.risk\n FROM  predict( model = risk_model , \
                      data = patients as d )\n with (risk float) as p \
                      where d.asthma = 1 and p.risk >= 0.5 ;";
        let g = fingerprint_query(shouty).unwrap();
        assert_eq!(f, g);
        assert_eq!(f.canonical, g.canonical);
    }

    #[test]
    fn model_extension_is_normalized() {
        let with_ext = BASE.replace("risk_model", "risk_model.onnx");
        assert_eq!(
            fingerprint_query(BASE).unwrap(),
            fingerprint_query(&with_ext).unwrap()
        );
    }

    #[test]
    fn distinct_literals_get_distinct_fingerprints() {
        let f = fingerprint_query(BASE).unwrap();
        let g = fingerprint_query(&BASE.replace("0.5", "0.6")).unwrap();
        let h = fingerprint_query(&BASE.replace("d.asthma = 1", "d.asthma = 0")).unwrap();
        assert_ne!(f, g);
        assert_ne!(f, h);
        assert_ne!(g, h);
    }

    #[test]
    fn structure_changes_the_fingerprint() {
        let f = fingerprint_query(BASE).unwrap();
        // different projection
        let g = fingerprint_query(
            "SELECT d.id FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (risk float) AS p WHERE d.asthma = 1 AND p.risk >= 0.5",
        )
        .unwrap();
        // different model
        let h = fingerprint_query(&BASE.replace("risk_model", "other_model")).unwrap();
        // different table
        let i = fingerprint_query(&BASE.replace("patients", "visits")).unwrap();
        assert_ne!(f, g);
        assert_ne!(f, h);
        assert_ne!(f, i);
    }

    #[test]
    fn display_is_hex_hash() {
        let f = fingerprint_query(BASE).unwrap();
        assert_eq!(format!("{f}"), format!("{:016x}", f.hash));
    }
}
