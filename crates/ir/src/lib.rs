//! # raven-ir
//!
//! Raven's unified intermediate representation (paper §3) and the front end
//! for prediction queries: a parser for the SQL `PREDICT` table-valued
//! function syntax of Fig. 2, a model registry resolving `MODEL = ...`
//! references to trained pipelines, and the [`UnifiedPlan`] structure that
//! holds relational and ML operators of one prediction query together so the
//! optimizer can flow information between them.

pub mod error;
pub mod fingerprint;
pub mod parser;
pub mod registry;
pub mod unified;

pub use error::{IrError, Result};
pub use fingerprint::{fingerprint_parsed, fingerprint_query, fnv1a, QueryFingerprint};
pub use parser::{parse, parse_prediction_query, ParsedQuery};
pub use registry::ModelRegistry;
pub use unified::{UnifiedNode, UnifiedPlan};
