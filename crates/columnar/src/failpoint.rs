//! Deterministic, seeded fault injection: the substrate of the chaos
//! harness (`chaos_study`) and the storage/serving fault tests.
//!
//! A **failpoint** is a named site in production code (e.g.
//! `storage.journal.sync`, `serve.prepare`) that asks this module whether a
//! fault should fire *right now*. Faults come from a [`Schedule`]: a parsed,
//! seeded description of *which* failpoints fail, *when* (by per-point hit
//! index), *how often*, and *how* ([`Fault`]). Schedules are fully
//! deterministic — the same spec and the same sequence of hits always
//! injects the same faults with the same entropy, so a chaos run reproduces
//! bit for bit from its spec string.
//!
//! ## Zero cost when disabled
//!
//! The process-wide registry is gated on a single atomic: when no schedule
//! is installed (the default — `RAVEN_FAULTS` unset and nothing configured
//! programmatically), [`check`] is one relaxed `AtomicU8` load and an
//! immediate `None`. No lock, no map lookup, no string hash. The accounting
//! counters stay at zero, which the smoke binaries assert (failpoints are
//! provably inert in production configurations).
//!
//! ## Schedule grammar
//!
//! `RAVEN_FAULTS` (or a [`configure`] / [`Schedule::parse`] spec) is a
//! `;`-separated list of entries:
//!
//! ```text
//! seed=42 ; storage.journal.sync=3+fail*2 ; serve.prepare=delay(5) ; io.read=corrupt*inf
//! ```
//!
//! * `seed=<n>` — seeds the entropy stream (default 0).
//! * `<point>=[<start>+]<kind>[*<count>]` — starting at the `start`-th hit
//!   of `<point>` (1-based, default 1), inject `count` consecutive faults
//!   (default 1; `*inf` = every hit from `start` on).
//! * `<kind>` is one of `fail` (generic injected I/O error), `enospc`
//!   (storage-full), `torn` (short write: a deterministic prefix is written,
//!   then the op errors), `corrupt` (read corruption: one byte flipped at a
//!   seeded offset), or `delay(<ms>)` (latency spike; the op then succeeds).
//!
//! Multiple entries for one point compose (each hit fires the first entry
//! whose window covers it).
//!
//! ## Global vs. scoped schedules
//!
//! Tests that need isolation (parallel proptests) construct their own
//! [`Schedule`] and consult it directly (see `raven_storage`'s
//! `ScriptedIo`); the process-wide registry is for end-to-end chaos runs
//! and is installed from `RAVEN_FAULTS` on first use or via [`configure`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// How an injected fault manifests at the failpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Generic injected failure (an `io::Error` / typed error at the site).
    Fail,
    /// Storage-full: the site surfaces an out-of-space error.
    Enospc,
    /// Short (torn) write: a deterministic prefix of the buffer is written
    /// before the operation errors, modeling a crash mid-write.
    Torn,
    /// Read corruption: one byte of the returned data is flipped at a
    /// seeded offset, which CRC validation downstream must catch.
    Corrupt,
    /// Latency spike of the given milliseconds; the operation then
    /// proceeds normally.
    Delay(u64),
}

/// One injected fault: the kind plus a deterministic entropy word the site
/// uses for data-dependent choices (torn-write prefix length, corruption
/// offset) so runs reproduce exactly.
#[derive(Debug, Clone, Copy)]
pub struct Injected {
    /// What to do at the site.
    pub fault: Fault,
    /// Seeded pseudo-random word, unique per (schedule seed, point, hit).
    pub entropy: u64,
}

/// SplitMix64: the deterministic mixer behind schedule entropy. Public so
/// consumers (backoff jitter, scripted I/O) can derive reproducible
/// pseudo-randomness without a vendored RNG dependency.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string — stable point-name hashing for entropy derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One `[start+]kind[*count]` window for a failpoint.
#[derive(Debug, Clone, Copy)]
struct Action {
    /// 1-based hit index at which the window opens.
    start: u64,
    /// Number of consecutive faulting hits; `u64::MAX` = forever.
    count: u64,
    fault: Fault,
}

impl Action {
    fn covers(&self, hit: u64) -> bool {
        hit >= self.start && (self.count == u64::MAX || hit < self.start.saturating_add(self.count))
    }
}

/// A parsed, seeded fault schedule. Interior-mutable: [`Schedule::check`]
/// advances per-point hit counters, so a shared `&Schedule` is all a
/// consumer needs. Independent instances are fully isolated (parallel
/// tests never cross-talk).
#[derive(Debug, Default)]
pub struct Schedule {
    seed: u64,
    points: HashMap<String, Vec<Action>>,
    /// Per-point hit counters (every check counts, faulted or not).
    hits: Mutex<HashMap<String, u64>>,
    /// Per-point injected-fault counters (accounting).
    injected: Mutex<HashMap<String, u64>>,
}

impl Schedule {
    /// Parse a schedule spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Schedule, String> {
        let mut seed = 0u64;
        let mut points: HashMap<String, Vec<Action>> = HashMap::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry without '=': `{entry}`"))?;
            let (name, action) = (name.trim(), action.trim());
            if name == "seed" {
                seed = action
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed `{action}`"))?;
                continue;
            }
            points
                .entry(name.to_string())
                .or_default()
                .push(parse_action(action)?);
        }
        Ok(Schedule {
            seed,
            points,
            hits: Mutex::new(HashMap::new()),
            injected: Mutex::new(HashMap::new()),
        })
    }

    /// No entries — checking can never inject.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Record one hit of `point` and return the fault scheduled for it, if
    /// any. Deterministic: the n-th call for a given point always yields
    /// the same outcome for the same spec.
    pub fn check(&self, point: &str) -> Option<Injected> {
        let actions = self.points.get(point)?;
        let hit = {
            let mut hits = plock(&self.hits);
            let h = hits.entry(point.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        let action = actions.iter().find(|a| a.covers(hit))?;
        *plock(&self.injected).entry(point.to_string()).or_insert(0) += 1;
        Some(Injected {
            fault: action.fault,
            entropy: splitmix64(self.seed ^ fnv1a(point) ^ hit.wrapping_mul(0xA076_1D64_78BD_642F)),
        })
    }

    /// Injected-fault counts per point, sorted by point name.
    pub fn injected_counts(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = plock(&self.injected)
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect();
        v.sort();
        v
    }

    /// Total faults injected across all points.
    pub fn injected_total(&self) -> u64 {
        plock(&self.injected).values().sum()
    }
}

fn parse_action(action: &str) -> Result<Action, String> {
    let (start, rest) = match action.split_once('+') {
        Some((s, rest)) => (
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad start in `{action}`"))?
                .max(1),
            rest.trim(),
        ),
        None => (1, action),
    };
    let (kind, count) = match rest.split_once('*') {
        Some((k, c)) => {
            let c = c.trim();
            let count = if c == "inf" {
                u64::MAX
            } else {
                c.parse::<u64>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad count in `{action}`"))?
            };
            (k.trim(), count)
        }
        None => (rest, 1),
    };
    let fault = if let Some(ms) = kind
        .strip_prefix("delay(")
        .and_then(|r| r.strip_suffix(')'))
    {
        Fault::Delay(
            ms.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad delay in `{action}`"))?,
        )
    } else {
        match kind {
            "fail" => Fault::Fail,
            "enospc" => Fault::Enospc,
            "torn" => Fault::Torn,
            "corrupt" => Fault::Corrupt,
            other => return Err(format!("unknown fault kind `{other}`")),
        }
    };
    Ok(Action {
        start,
        count,
        fault,
    })
}

// ---------------------------------------------------------------------------
// the process-wide registry
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ACTIVE: u8 = 2;

/// Tri-state gate: uninitialized → (disabled | active). The disabled fast
/// path is a single relaxed load.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static GLOBAL: Mutex<Option<Schedule>> = Mutex::new(None);
/// Cumulative faults injected by the *global* registry over the process
/// lifetime (survives [`clear`], so inertness checks see every injection).
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

fn init_from_env() {
    let mut global = plock(&GLOBAL);
    if STATE.load(Ordering::Acquire) != STATE_UNINIT {
        return; // raced: another thread initialized while we waited
    }
    let state = match crate::envcfg::faults() {
        Some(spec) => match Schedule::parse(spec) {
            Ok(s) if !s.is_empty() => {
                *global = Some(s);
                STATE_ACTIVE
            }
            Ok(_) => STATE_DISABLED,
            Err(e) => {
                eprintln!("RAVEN_FAULTS ignored (parse error): {e}");
                STATE_DISABLED
            }
        },
        None => STATE_DISABLED,
    };
    STATE.store(state, Ordering::Release);
}

/// Whether a global fault schedule is active. Initializes from
/// `RAVEN_FAULTS` on first call.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Acquire) {
        STATE_DISABLED => false,
        STATE_ACTIVE => true,
        _ => {
            init_from_env();
            STATE.load(Ordering::Acquire) == STATE_ACTIVE
        }
    }
}

/// Hit the named failpoint against the process-wide schedule. The disabled
/// path (the production default) is one atomic load and `None` — callers
/// may leave this on their hot paths.
#[inline]
pub fn check(point: &str) -> Option<Injected> {
    match STATE.load(Ordering::Acquire) {
        STATE_DISABLED => None,
        STATE_ACTIVE => check_active(point),
        _ => {
            init_from_env();
            if STATE.load(Ordering::Acquire) == STATE_ACTIVE {
                check_active(point)
            } else {
                None
            }
        }
    }
}

#[cold]
fn check_active(point: &str) -> Option<Injected> {
    let global = plock(&GLOBAL);
    let injected = global.as_ref()?.check(point);
    if injected.is_some() {
        INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
    }
    injected
}

/// Install a schedule process-wide (chaos harnesses and serialized tests;
/// production schedules come from `RAVEN_FAULTS`). Replaces any previous
/// schedule and resets its per-point counters; the process-lifetime
/// [`injected_total`] keeps accumulating.
pub fn configure(spec: &str) -> Result<(), String> {
    let schedule = Schedule::parse(spec)?;
    let mut global = plock(&GLOBAL);
    let state = if schedule.is_empty() {
        *global = None;
        STATE_DISABLED
    } else {
        *global = Some(schedule);
        STATE_ACTIVE
    };
    STATE.store(state, Ordering::Release);
    Ok(())
}

/// Remove the process-wide schedule: every subsequent [`check`] is the
/// single-atomic-load disabled path.
pub fn clear() {
    let mut global = plock(&GLOBAL);
    *global = None;
    STATE.store(STATE_DISABLED, Ordering::Release);
}

/// Faults injected by the global registry over the whole process lifetime
/// (not reset by [`configure`]/[`clear`]). Zero in any run that never
/// activated a schedule — the inertness invariant the smokes assert.
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Per-point injected counts of the currently installed global schedule
/// (empty when disabled).
pub fn injected_counts() -> Vec<(String, u64)> {
    plock(&GLOBAL)
        .as_ref()
        .map(|s| s.injected_counts())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_seed_only_schedules_are_inert() {
        for spec in ["", "  ", "seed=7", "seed=7 ; ; "] {
            let s = Schedule::parse(spec).unwrap();
            assert!(s.is_empty(), "`{spec}` should be empty");
            assert_eq!(s.check("storage.journal.sync").map(|i| i.fault), None);
            assert_eq!(s.injected_total(), 0);
        }
    }

    #[test]
    fn windows_fire_at_the_scheduled_hits() {
        let s = Schedule::parse("a=3+fail*2; b=torn; c=2+delay(7)*inf").unwrap();
        let faults: Vec<Option<Fault>> = (0..6).map(|_| s.check("a").map(|i| i.fault)).collect();
        assert_eq!(
            faults,
            vec![None, None, Some(Fault::Fail), Some(Fault::Fail), None, None]
        );
        assert_eq!(s.check("b").map(|i| i.fault), Some(Fault::Torn));
        assert_eq!(s.check("b").map(|i| i.fault), None);
        assert_eq!(s.check("c").map(|i| i.fault), None);
        for _ in 0..10 {
            assert_eq!(s.check("c").map(|i| i.fault), Some(Fault::Delay(7)));
        }
        assert!(s.check("unknown").is_none());
        assert_eq!(s.injected_total(), 2 + 1 + 10);
        assert_eq!(
            s.injected_counts(),
            vec![("a".into(), 2), ("b".into(), 1), ("c".into(), 10)]
        );
    }

    #[test]
    fn multiple_entries_for_one_point_compose() {
        let s = Schedule::parse("p=1+fail; p=3+enospc*inf").unwrap();
        assert_eq!(s.check("p").map(|i| i.fault), Some(Fault::Fail));
        assert_eq!(s.check("p").map(|i| i.fault), None);
        assert_eq!(s.check("p").map(|i| i.fault), Some(Fault::Enospc));
        assert_eq!(s.check("p").map(|i| i.fault), Some(Fault::Enospc));
    }

    #[test]
    fn entropy_is_deterministic_per_seed_point_and_hit() {
        let run = |spec: &str| -> Vec<u64> {
            let s = Schedule::parse(spec).unwrap();
            (0..4)
                .filter_map(|_| s.check("x").map(|i| i.entropy))
                .collect()
        };
        let a = run("seed=9;x=corrupt*4");
        let b = run("seed=9;x=corrupt*4");
        let c = run("seed=10;x=corrupt*4");
        assert_eq!(a, b, "same seed must reproduce exactly");
        assert_ne!(a, c, "different seed must diverge");
        assert_eq!(a.len(), 4);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "per-hit entropy must differ");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nokind",
            "p=flaky",
            "p=fail*0",
            "p=fail*abc",
            "p=x+fail",
            "p=delay(ms)",
            "seed=abc",
        ] {
            assert!(Schedule::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn disabled_registry_is_inert_without_raven_faults() {
        // Tier-1 runs with RAVEN_FAULTS unset: the global gate must resolve
        // to disabled and never count an injection. (Tests that install a
        // global schedule live in their own integration binaries, so this
        // process observes the pristine default.)
        assert!(!enabled());
        for _ in 0..3 {
            assert!(check("storage.journal.sync").is_none());
            assert!(check("serve.prepare").is_none());
        }
        assert_eq!(injected_total(), 0);
        assert!(injected_counts().is_empty());
    }
}
