//! # raven-columnar
//!
//! In-memory columnar storage substrate for the Raven prediction-query
//! optimizer. It provides typed columns, schemas, record batches, tables made
//! of partitions, and the per-column / per-partition statistics (min, max,
//! null count, distinct estimate) that Raven's data-induced optimizations
//! (§4.2 of the paper) rely on.
//!
//! The design mirrors what the paper assumes from Parquet/columnstore storage:
//! data lives in columns, is split into partitions (either user-specified or
//! value-based), and cheap summary statistics are maintained per partition so
//! the optimizer can prune work without scanning.
//!
//! Missing values are represented in-band: `f64::NAN` for numeric columns and
//! the empty string for string columns. This keeps the execution kernels
//! simple (no validity bitmaps) while still letting the ML featurizers
//! (e.g. the `Imputer`) exercise the missing-data code paths.

pub mod column;
pub mod envcfg;
pub mod error;
pub mod failpoint;
pub mod partition;
pub mod pool;
pub mod schema;
pub mod selection;
pub mod stats;
pub mod stream;
pub mod table;
pub mod value;

pub use column::{Column, ColumnRef};
pub use error::{ColumnarError, Result};
pub use partition::{partition_by_column, partition_ranges, partition_sizes, PartitionSpec};
pub use pool::{parallel_map, parallel_map_scoped, WorkerPool};
pub use schema::{Field, Schema, SchemaRef};
pub use selection::{SelectionIter, SelectionVector};
pub use stats::{ColumnStatistics, InducedDomain, TableStatistics};
pub use stream::{BatchStream, StreamBatch, StreamOp};
pub use table::{Batch, Table, TableBuilder};
pub use value::{DataType, Value};
