//! Typed columns: contiguous vectors of scalars plus vectorized kernels
//! (take, filter, slice, concat) used by the relational executor.

use crate::error::{ColumnarError, Result};
use crate::selection::SelectionVector;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A typed column of values.
///
/// Missing data is represented in-band (`NaN` / empty string), see the crate
/// documentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Float64(Vec<f64>),
    Int64(Vec<i64>),
    Utf8(Vec<String>),
    Boolean(Vec<bool>),
}

/// Shared column handle. Batches hold `Arc<Column>` so projections and
/// zero-copy re-use across operators avoid cloning the data.
pub type ColumnRef = Arc<Column>;

impl Column {
    /// Data type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Float64(_) => DataType::Float64,
            Column::Int64(_) => DataType::Int64,
            Column::Utf8(_) => DataType::Utf8,
            Column::Boolean(_) => DataType::Boolean,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Float64(v) => v.len(),
            Column::Int64(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Boolean(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i`.
    pub fn value(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(ColumnarError::IndexOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::Float64(v) => Value::Float64(v[i]),
            Column::Int64(v) => Value::Int64(v[i]),
            Column::Utf8(v) => Value::Utf8(v[i].clone()),
            Column::Boolean(v) => Value::Boolean(v[i]),
        })
    }

    /// View as `&[f64]`, failing on other types.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => Err(ColumnarError::TypeMismatch {
                expected: "Float64".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// View as `&[i64]`, failing on other types.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => Err(ColumnarError::TypeMismatch {
                expected: "Int64".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// View as `&[String]`, failing on other types.
    pub fn as_utf8(&self) -> Result<&[String]> {
        match self {
            Column::Utf8(v) => Ok(v),
            other => Err(ColumnarError::TypeMismatch {
                expected: "Utf8".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// View as `&[bool]`, failing on other types.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Boolean(v) => Ok(v),
            other => Err(ColumnarError::TypeMismatch {
                expected: "Boolean".into(),
                found: other.data_type().to_string(),
            }),
        }
    }

    /// Convert any numeric/boolean column into an owned `Vec<f64>` feature
    /// vector (the representation consumed by ML operators). Strings fail.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        Ok(match self {
            Column::Float64(v) => v.clone(),
            Column::Int64(v) => v.iter().map(|&x| x as f64).collect(),
            Column::Boolean(v) => v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            Column::Utf8(_) => {
                return Err(ColumnarError::TypeMismatch {
                    expected: "numeric".into(),
                    found: "Utf8".into(),
                })
            }
        })
    }

    /// Gather the rows at `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        for &i in indices {
            if i >= self.len() {
                return Err(ColumnarError::IndexOutOfBounds {
                    index: i,
                    len: self.len(),
                });
            }
        }
        Ok(match self {
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i]).collect()),
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i]).collect()),
            Column::Utf8(v) => Column::Utf8(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Boolean(v) => Column::Boolean(indices.iter().map(|&i| v[i]).collect()),
        })
    }

    /// Keep only the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: self.len(),
                found: mask.len(),
            });
        }
        macro_rules! filt {
            ($v:expr, $variant:ident, $clone:expr) => {{
                let mut out = Vec::with_capacity(mask.iter().filter(|&&m| m).count());
                for (x, &m) in $v.iter().zip(mask.iter()) {
                    if m {
                        out.push($clone(x));
                    }
                }
                Column::$variant(out)
            }};
        }
        Ok(match self {
            Column::Float64(v) => filt!(v, Float64, |x: &f64| *x),
            Column::Int64(v) => filt!(v, Int64, |x: &i64| *x),
            Column::Utf8(v) => filt!(v, Utf8, |x: &String| x.clone()),
            Column::Boolean(v) => filt!(v, Boolean, |x: &bool| *x),
        })
    }

    /// Gather the selected rows into a new column. Selection indices are
    /// validated at construction, so the gather loop itself is bounds-check
    /// free for the selection (an all-rows selection is a plain clone).
    pub fn gather(&self, selection: &SelectionVector) -> Result<Column> {
        if selection.source_len() != self.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: self.len(),
                found: selection.source_len(),
            });
        }
        let Some(indices) = selection.indices() else {
            return Ok(self.clone());
        };
        Ok(match self {
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Utf8(v) => {
                Column::Utf8(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
            Column::Boolean(v) => Column::Boolean(indices.iter().map(|&i| v[i as usize]).collect()),
        })
    }

    /// Concatenate columns while applying each part's selection in the same
    /// pass — the single copy of a selection-vector pipeline's output
    /// boundary (a separate gather-then-concat would copy surviving rows
    /// twice). A `None` selection means "all rows".
    pub fn concat_selected(parts: &[(&Column, Option<&SelectionVector>)]) -> Result<Column> {
        let first = parts.first().ok_or_else(|| {
            ColumnarError::InvalidArgument("cannot concatenate zero columns".into())
        })?;
        let dt = first.0.data_type();
        let mut total = 0usize;
        for (c, sel) in parts {
            if c.data_type() != dt {
                return Err(ColumnarError::TypeMismatch {
                    expected: dt.to_string(),
                    found: c.data_type().to_string(),
                });
            }
            if let Some(sel) = sel {
                if sel.source_len() != c.len() {
                    return Err(ColumnarError::LengthMismatch {
                        expected: c.len(),
                        found: sel.source_len(),
                    });
                }
                total += sel.len();
            } else {
                total += c.len();
            }
        }
        macro_rules! gather_concat {
            ($variant:ident, $as:ident, $clone:expr) => {{
                let mut out = Vec::with_capacity(total);
                for (c, sel) in parts {
                    let v = c.$as()?;
                    match sel.and_then(|s| s.indices()) {
                        None => out.extend(v.iter().map($clone)),
                        Some(ix) => out.extend(ix.iter().map(|&i| $clone(&v[i as usize]))),
                    }
                }
                Column::$variant(out)
            }};
        }
        Ok(match dt {
            DataType::Float64 => gather_concat!(Float64, as_f64, |x: &f64| *x),
            DataType::Int64 => gather_concat!(Int64, as_i64, |x: &i64| *x),
            DataType::Utf8 => gather_concat!(Utf8, as_utf8, |x: &String| x.clone()),
            DataType::Boolean => gather_concat!(Boolean, as_bool, |x: &bool| *x),
        })
    }

    /// A contiguous slice `[offset, offset+len)` of the column.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        if offset + len > self.len() {
            return Err(ColumnarError::IndexOutOfBounds {
                index: offset + len,
                len: self.len(),
            });
        }
        Ok(match self {
            Column::Float64(v) => Column::Float64(v[offset..offset + len].to_vec()),
            Column::Int64(v) => Column::Int64(v[offset..offset + len].to_vec()),
            Column::Utf8(v) => Column::Utf8(v[offset..offset + len].to_vec()),
            Column::Boolean(v) => Column::Boolean(v[offset..offset + len].to_vec()),
        })
    }

    /// Concatenate columns of the same type into one.
    pub fn concat(columns: &[&Column]) -> Result<Column> {
        let first = columns.first().ok_or_else(|| {
            ColumnarError::InvalidArgument("cannot concatenate zero columns".into())
        })?;
        let dt = first.data_type();
        for c in columns {
            if c.data_type() != dt {
                return Err(ColumnarError::TypeMismatch {
                    expected: dt.to_string(),
                    found: c.data_type().to_string(),
                });
            }
        }
        let total: usize = columns.iter().map(|c| c.len()).sum();
        Ok(match dt {
            DataType::Float64 => {
                let mut out = Vec::with_capacity(total);
                for c in columns {
                    out.extend_from_slice(c.as_f64()?);
                }
                Column::Float64(out)
            }
            DataType::Int64 => {
                let mut out = Vec::with_capacity(total);
                for c in columns {
                    out.extend_from_slice(c.as_i64()?);
                }
                Column::Int64(out)
            }
            DataType::Utf8 => {
                let mut out = Vec::with_capacity(total);
                for c in columns {
                    out.extend_from_slice(c.as_utf8()?);
                }
                Column::Utf8(out)
            }
            DataType::Boolean => {
                let mut out = Vec::with_capacity(total);
                for c in columns {
                    out.extend_from_slice(c.as_bool()?);
                }
                Column::Boolean(out)
            }
        })
    }

    /// Build a column of length `len` filled with a constant `value`.
    pub fn from_value(value: &Value, len: usize) -> Result<Column> {
        Ok(match value {
            Value::Float64(v) => Column::Float64(vec![*v; len]),
            Value::Int64(v) => Column::Int64(vec![*v; len]),
            Value::Utf8(s) => Column::Utf8(vec![s.clone(); len]),
            Value::Boolean(b) => Column::Boolean(vec![*b; len]),
            Value::Null => Column::Float64(vec![f64::NAN; len]),
        })
    }

    /// Build a column from an iterator of [`Value`]s, inferring the type from
    /// the first non-null value (defaults to Float64 when all null).
    pub fn from_values(values: &[Value]) -> Result<Column> {
        let dt = values
            .iter()
            .find_map(|v| v.data_type())
            .unwrap_or(DataType::Float64);
        Ok(match dt {
            DataType::Float64 => Column::Float64(
                values
                    .iter()
                    .map(|v| v.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            ),
            DataType::Int64 => Column::Int64(
                values
                    .iter()
                    .map(|v| v.as_f64().map(|x| x as i64).unwrap_or(0))
                    .collect(),
            ),
            DataType::Utf8 => Column::Utf8(
                values
                    .iter()
                    .map(|v| v.as_str().unwrap_or("").to_string())
                    .collect(),
            ),
            DataType::Boolean => Column::Boolean(
                values
                    .iter()
                    .map(|v| v.as_bool().unwrap_or(false))
                    .collect(),
            ),
        })
    }

    /// Estimated heap size in bytes (used for reporting scan volumes).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Float64(v) => v.len() * 8,
            Column::Int64(v) => v.len() * 8,
            Column::Boolean(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Column::Float64(vec![1.0, 2.0, 3.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(1).unwrap(), Value::Float64(2.0));
        assert!(c.value(3).is_err());
    }

    #[test]
    fn typed_view_errors() {
        let c = Column::Int64(vec![1, 2]);
        assert!(c.as_f64().is_err());
        assert_eq!(c.as_i64().unwrap(), &[1, 2]);
    }

    #[test]
    fn to_f64_vec_widens() {
        assert_eq!(
            Column::Int64(vec![1, 2]).to_f64_vec().unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(
            Column::Boolean(vec![true, false]).to_f64_vec().unwrap(),
            vec![1.0, 0.0]
        );
        assert!(Column::Utf8(vec!["a".into()]).to_f64_vec().is_err());
    }

    #[test]
    fn take_and_filter() {
        let c = Column::Utf8(vec!["a".into(), "b".into(), "c".into()]);
        let t = c.take(&[2, 0]).unwrap();
        assert_eq!(t, Column::Utf8(vec!["c".into(), "a".into()]));
        let f = c.filter(&[true, false, true]).unwrap();
        assert_eq!(f, Column::Utf8(vec!["a".into(), "c".into()]));
        assert!(c.filter(&[true]).is_err());
        assert!(c.take(&[5]).is_err());
    }

    #[test]
    fn slice_and_concat() {
        let c = Column::Int64(vec![1, 2, 3, 4]);
        let s = c.slice(1, 2).unwrap();
        assert_eq!(s, Column::Int64(vec![2, 3]));
        let cc = Column::concat(&[&s, &c]).unwrap();
        assert_eq!(cc.len(), 6);
        assert!(Column::concat(&[&c, &Column::Float64(vec![1.0])]).is_err());
        assert!(Column::concat(&[]).is_err());
    }

    #[test]
    fn from_value_constant() {
        let c = Column::from_value(&Value::Int64(7), 3).unwrap();
        assert_eq!(c, Column::Int64(vec![7, 7, 7]));
        let n = Column::from_value(&Value::Null, 2).unwrap();
        assert!(n.as_f64().unwrap().iter().all(|x| x.is_nan()));
    }

    #[test]
    fn from_values_inference() {
        let c = Column::from_values(&[Value::Int64(1), Value::Int64(2)]).unwrap();
        assert_eq!(c.data_type(), DataType::Int64);
        let c = Column::from_values(&[Value::Utf8("x".into())]).unwrap();
        assert_eq!(c.data_type(), DataType::Utf8);
    }

    #[test]
    fn byte_size_estimates() {
        assert_eq!(Column::Float64(vec![0.0; 10]).byte_size(), 80);
        assert_eq!(Column::Boolean(vec![true; 10]).byte_size(), 10);
    }
}
