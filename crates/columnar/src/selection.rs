//! Selection vectors: zero-copy row subsets of a [`crate::Batch`].
//!
//! A [`SelectionVector`] records *which* rows of a batch survive a filter
//! without copying any column data, in the late-materialization lineage of
//! MonetDB/X100 and DuckDB. Filter operators refine the selection; projection,
//! scoring, and aggregation kernels consume `(Batch, &SelectionVector)` and
//! read only the selected rows; the **final output boundary** is the single
//! place rows are gathered into compact buffers
//! ([`crate::Batch::concat_selected`] / [`crate::Batch::compact`]). This
//! removes the one full batch copy per filter that `Batch::filter` used to
//! pay on every filtered partition.
//!
//! Indices are `u32` (a partition batch never exceeds 4 billion rows), kept
//! sorted ascending and unique by construction: selections are only ever
//! built from masks or refined from existing selections, so gathering
//! preserves row order.

use crate::error::{ColumnarError, Result};
use std::sync::Arc;

/// A sorted set of selected row indices over a batch of `source_len` rows.
///
/// The all-rows selection is represented without an index buffer, so an
/// unfiltered pipeline never allocates; cloning is O(1) (indices are shared
/// behind an [`Arc`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionVector {
    source_len: usize,
    /// `None` means "all rows selected".
    indices: Option<Arc<Vec<u32>>>,
}

impl SelectionVector {
    /// Select every row of a `len`-row batch.
    pub fn all(len: usize) -> SelectionVector {
        SelectionVector {
            source_len: len,
            indices: None,
        }
    }

    /// Select the rows where `mask` is true.
    pub fn from_mask(mask: &[bool]) -> SelectionVector {
        let selected = mask.iter().filter(|&&m| m).count();
        if selected == mask.len() {
            return SelectionVector::all(mask.len());
        }
        let mut indices = Vec::with_capacity(selected);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                indices.push(i as u32);
            }
        }
        SelectionVector {
            source_len: mask.len(),
            indices: Some(Arc::new(indices)),
        }
    }

    /// Select explicit row indices (must be ascending, unique, and in-bounds).
    pub fn from_indices(source_len: usize, indices: Vec<u32>) -> Result<SelectionVector> {
        let mut prev: Option<u32> = None;
        for &i in &indices {
            if i as usize >= source_len {
                return Err(ColumnarError::IndexOutOfBounds {
                    index: i as usize,
                    len: source_len,
                });
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(ColumnarError::InvalidArgument(
                    "selection indices must be ascending and unique".into(),
                ));
            }
            prev = Some(i);
        }
        if indices.len() == source_len {
            return Ok(SelectionVector::all(source_len));
        }
        Ok(SelectionVector {
            source_len,
            indices: Some(Arc::new(indices)),
        })
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.indices {
            None => self.source_len,
            Some(ix) => ix.len(),
        }
    }

    /// Whether no row is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows in the underlying batch.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Whether every row is selected (gather would be the identity).
    pub fn is_all(&self) -> bool {
        self.indices.is_none()
    }

    /// The explicit index buffer, when not all rows are selected.
    pub fn indices(&self) -> Option<&[u32]> {
        self.indices.as_deref().map(|v| v.as_slice())
    }

    /// Iterate the selected source-row indices in ascending order.
    pub fn iter(&self) -> SelectionIter<'_> {
        match &self.indices {
            None => SelectionIter::All(0..self.source_len),
            Some(ix) => SelectionIter::Indices(ix.iter()),
        }
    }

    /// Intersect with a mask over the **source** rows (`mask.len()` must equal
    /// [`SelectionVector::source_len`]): keeps the already-selected rows whose
    /// mask entry is true. This is how a filter operator composes onto an
    /// existing selection without touching column data.
    pub fn refine(&self, mask: &[bool]) -> Result<SelectionVector> {
        if mask.len() != self.source_len {
            return Err(ColumnarError::LengthMismatch {
                expected: self.source_len,
                found: mask.len(),
            });
        }
        match &self.indices {
            None => Ok(SelectionVector::from_mask(mask)),
            Some(ix) => {
                let kept: Vec<u32> = ix.iter().copied().filter(|&i| mask[i as usize]).collect();
                if kept.len() == ix.len() {
                    return Ok(self.clone());
                }
                Ok(SelectionVector {
                    source_len: self.source_len,
                    indices: Some(Arc::new(kept)),
                })
            }
        }
    }

    /// Keep only the first `n` selected rows (zero-copy LIMIT).
    pub fn truncate(&self, n: usize) -> SelectionVector {
        if n >= self.len() {
            return self.clone();
        }
        let indices: Vec<u32> = self.iter().take(n).map(|i| i as u32).collect();
        SelectionVector {
            source_len: self.source_len,
            indices: Some(Arc::new(indices)),
        }
    }
}

/// Iterator over the selected source-row indices of a [`SelectionVector`].
#[derive(Debug, Clone)]
pub enum SelectionIter<'a> {
    /// All rows selected: counts through `0..source_len`.
    All(std::ops::Range<usize>),
    /// Explicit index buffer.
    Indices(std::slice::Iter<'a, u32>),
}

impl Iterator for SelectionIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelectionIter::All(r) => r.next(),
            SelectionIter::Indices(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelectionIter::All(r) => r.size_hint(),
            SelectionIter::Indices(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SelectionIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_mask_roundtrip() {
        let all = SelectionVector::all(4);
        assert!(all.is_all());
        assert_eq!(all.len(), 4);
        assert_eq!(all.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        let sel = SelectionVector::from_mask(&[true, false, true, false]);
        assert!(!sel.is_all());
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.source_len(), 4);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 2]);

        // an all-true mask collapses to the index-free representation
        assert!(SelectionVector::from_mask(&[true, true]).is_all());
    }

    #[test]
    fn refine_composes_filters() {
        let sel = SelectionVector::all(5)
            .refine(&[true, true, false, true, true])
            .unwrap();
        let sel = sel.refine(&[false, true, true, true, false]).unwrap();
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![1, 3]);
        // wrong mask length is rejected
        assert!(sel.refine(&[true]).is_err());
    }

    #[test]
    fn from_indices_validates() {
        assert!(SelectionVector::from_indices(3, vec![0, 2]).is_ok());
        assert!(SelectionVector::from_indices(3, vec![0, 1, 2])
            .unwrap()
            .is_all());
        assert!(SelectionVector::from_indices(3, vec![3]).is_err());
        assert!(SelectionVector::from_indices(3, vec![1, 1]).is_err());
        assert!(SelectionVector::from_indices(3, vec![2, 0]).is_err());
    }

    #[test]
    fn truncate_takes_prefix() {
        let sel = SelectionVector::from_mask(&[true, false, true, true]);
        assert_eq!(sel.truncate(2).iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(sel.truncate(10).len(), 3);
        let all = SelectionVector::all(3).truncate(2);
        assert_eq!(all.iter().collect::<Vec<_>>(), vec![0, 1]);
    }
}
