//! Error type shared by the columnar substrate.

use std::fmt;

/// Result alias used throughout `raven-columnar`.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors produced by the columnar storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnarError {
    /// A column name could not be resolved against a schema.
    ColumnNotFound(String),
    /// A column was used with an incompatible data type.
    TypeMismatch { expected: String, found: String },
    /// Columns of a batch (or arguments of an operation) had different lengths.
    LengthMismatch { expected: usize, found: usize },
    /// An index was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// A schema was constructed with duplicate column names.
    DuplicateColumn(String),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
    /// An error raised inside a streaming operator by a higher execution
    /// layer (relational evaluation, ML scoring), carried through the
    /// columnar stream driver in stringified form.
    Execution(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            ColumnarError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ColumnarError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            ColumnarError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            ColumnarError::DuplicateColumn(name) => write!(f, "duplicate column name: {name}"),
            ColumnarError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            ColumnarError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let err = ColumnarError::ColumnNotFound("age".to_string());
        assert_eq!(err.to_string(), "column not found: age");
    }

    #[test]
    fn display_type_mismatch() {
        let err = ColumnarError::TypeMismatch {
            expected: "Float64".into(),
            found: "Utf8".into(),
        };
        assert!(err.to_string().contains("expected Float64"));
    }

    #[test]
    fn display_length_mismatch() {
        let err = ColumnarError::LengthMismatch {
            expected: 3,
            found: 5,
        };
        assert!(err.to_string().contains("expected 3"));
        assert!(err.to_string().contains("found 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ColumnarError::DuplicateColumn("x".into()));
    }
}
