//! Scalar values and data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical data type of a column.
///
/// The set is intentionally small: the prediction-query workloads of the
/// paper only need numeric features, integer keys/categoricals, strings
/// (categorical inputs before encoding), and booleans (predicates, labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit floating point (numeric features). `NaN` encodes a missing value.
    Float64,
    /// 64-bit signed integer (keys, counts, low-cardinality categoricals).
    Int64,
    /// UTF-8 string (categorical inputs). The empty string encodes a missing value.
    Utf8,
    /// Boolean (filter results, binary labels).
    Boolean,
}

impl DataType {
    /// Whether the type is numeric (can be fed to arithmetic and ML models directly).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Float64 | DataType::Int64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Float64 => write!(f, "Float64"),
            DataType::Int64 => write!(f, "Int64"),
            DataType::Utf8 => write!(f, "Utf8"),
            DataType::Boolean => write!(f, "Boolean"),
        }
    }
}

/// A single scalar value, used for literals in expressions, predicate
/// constants pushed into models, and statistics (min/max).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent value.
    Null,
    Float64(f64),
    Int64(i64),
    Utf8(String),
    Boolean(bool),
}

impl Value {
    /// The data type of this value, if it is not null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Float64(_) => Some(DataType::Float64),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Boolean(_) => Some(DataType::Boolean),
        }
    }

    /// Interpret the value as an `f64` when possible (numeric widening,
    /// booleans as 0/1). Returns `None` for strings and nulls.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) => Some(*v as f64),
            Value::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interpret the value as a string slice when it is a `Utf8` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret the value as a boolean when possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            Value::Int64(v) => Some(*v != 0),
            Value::Float64(v) => Some(*v != 0.0),
            _ => None,
        }
    }

    /// Whether this value is null (or a NaN float, which encodes missing data).
    pub fn is_null(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Float64(v) => v.is_nan(),
            Value::Utf8(s) => s.is_empty(),
            _ => false,
        }
    }

    /// Total ordering comparison between two values of compatible types.
    ///
    /// Numeric types compare by their `f64` interpretation; strings compare
    /// lexicographically; null sorts before everything. Returns `None` when
    /// the types are incomparable (e.g. string vs number).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Utf8(a), Value::Utf8(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Utf8(s) => write!(f, "'{s}'"),
            Value::Boolean(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_numeric() {
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::Int64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Boolean.is_numeric());
    }

    #[test]
    fn value_as_f64_widening() {
        assert_eq!(Value::Int64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Boolean(true).as_f64(), Some(1.0));
        assert_eq!(Value::Utf8("x".into()).as_f64(), None);
    }

    #[test]
    fn value_equality_cross_numeric() {
        assert_eq!(Value::Int64(3), Value::Float64(3.0));
        assert_ne!(Value::Int64(3), Value::Float64(3.5));
        assert_eq!(Value::Utf8("a".into()), Value::Utf8("a".into()));
    }

    #[test]
    fn value_ordering() {
        assert_eq!(
            Value::Int64(2).partial_cmp_value(&Value::Float64(3.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Utf8("b".into()).partial_cmp_value(&Value::Utf8("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Int64(0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Utf8("a".into()).partial_cmp_value(&Value::Int64(1)),
            None
        );
    }

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(Value::Float64(f64::NAN).is_null());
        assert!(Value::Utf8(String::new()).is_null());
        assert!(!Value::Float64(0.0).is_null());
        assert!(!Value::Utf8("x".into()).is_null());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int64(7).to_string(), "7");
        assert_eq!(Value::Utf8("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(1.5), Value::Float64(1.5));
        assert_eq!(Value::from(2i64), Value::Int64(2));
        assert_eq!(Value::from("s"), Value::Utf8("s".into()));
        assert_eq!(Value::from(true), Value::Boolean(true));
    }
}
