//! Schemas: ordered, named, typed column descriptors.

use crate::error::{ColumnarError, Result};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Create a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Return a copy of this field with a new name (used when qualifying
    /// columns after joins, e.g. `patient_info.id`).
    pub fn with_name(&self, name: impl Into<String>) -> Field {
        Field {
            name: name.into(),
            data_type: self.data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)
    }
}

/// An ordered collection of fields with O(1) name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            if index.insert(field.name.clone(), i).is_some() {
                return Err(ColumnarError::DuplicateColumn(field.name.clone()));
            }
        }
        Ok(Schema { fields, index })
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema {
            fields: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| ColumnarError::ColumnNotFound(name.to_string()))
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// The field with the given name.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// The field at the given position.
    pub fn field(&self, i: usize) -> Result<&Field> {
        self.fields.get(i).ok_or(ColumnarError::IndexOutOfBounds {
            index: i,
            len: self.fields.len(),
        })
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Build a new schema keeping only the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field(i)?.clone());
        }
        Schema::new(fields)
    }

    /// Concatenate two schemas (used by joins). Duplicate names on the right
    /// side get a `right_prefix` qualifier (repeated as needed so names stay
    /// unique even across nested joins).
    pub fn merge(&self, other: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut fields = self.fields.clone();
        let mut taken: std::collections::HashSet<String> =
            fields.iter().map(|f| f.name.clone()).collect();
        for f in &other.fields {
            let mut name = f.name.clone();
            while taken.contains(&name) {
                name = format!("{right_prefix}.{name}");
            }
            taken.insert(name.clone());
            fields.push(f.with_name(name));
        }
        Schema::new(fields)
    }

    /// Shared-pointer constructor used pervasively by the engine.
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.fields.iter().map(|x| x.to_string()).collect();
        write!(f, "[{}]", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("age", DataType::Float64),
            Field::new("state", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("age").unwrap(), 1);
        assert!(s.contains("state"));
        assert!(!s.contains("bmi"));
        assert_eq!(s.field_by_name("id").unwrap().data_type(), DataType::Int64);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Float64),
        ])
        .unwrap_err();
        assert_eq!(err, ColumnarError::DuplicateColumn("a".into()));
    }

    #[test]
    fn missing_column_error() {
        let s = schema();
        assert_eq!(
            s.index_of("nope").unwrap_err(),
            ColumnarError::ColumnNotFound("nope".into())
        );
    }

    #[test]
    fn project_reorders_and_subsets() {
        let s = schema();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["state", "id"]);
    }

    #[test]
    fn merge_qualifies_duplicates() {
        let left = schema();
        let right = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("bp", DataType::Float64),
        ])
        .unwrap();
        let merged = left.merge(&right, "rt").unwrap();
        assert_eq!(merged.names(), vec!["id", "age", "state", "rt.id", "bp"]);
    }

    #[test]
    fn field_out_of_bounds() {
        let s = schema();
        assert!(matches!(
            s.field(10).unwrap_err(),
            ColumnarError::IndexOutOfBounds { index: 10, len: 3 }
        ));
    }
}
