//! Process-wide work-stealing worker pool driving every partition-parallel
//! stage.
//!
//! PR 1 drove each [`crate::BatchStream::collect`] with its own scoped-thread
//! pool: correct, but every drive point spawned and tore down
//! `degree_of_parallelism` OS threads, so a serving tier running N concurrent
//! queries oversubscribed the machine with N×DOP transient threads. This
//! module replaces that with **one long-lived pool per process**
//! ([`WorkerPool::global`]): each worker owns a deque, submissions are
//! distributed round-robin, and an idle worker steals from its siblings
//! (LIFO on its own deque for cache locality, FIFO steals for fairness).
//! Concurrent queries now interleave their partition tasks on one fixed set
//! of OS threads.
//!
//! ## Scoped jobs on a long-lived pool
//!
//! [`parallel_map`] keeps its borrowed-closure signature (`F: Fn(T) ->
//! Result<U>` with any lifetime) even though the workers are `'static`
//! threads: a call builds a stack-allocated job (work queue, result slots,
//! abort flag), submits up to `dop - 1` *helper* tasks that reference the job
//! through a type-erased pointer, and then **participates itself**, draining
//! the same queue. It returns only after every spawned helper has finished
//! running — helpers increment a completion counter as their last touch of
//! the job — so the borrow never outlives the call (the same completion
//! protocol `std::thread::scope` and rayon use).
//!
//! Two properties make this safe under load and nesting:
//!
//! * **The submitter is always an executor.** A job makes progress even when
//!   every pool worker is busy with other jobs, so `parallel_map` from inside
//!   a pool task (nested parallelism) cannot deadlock.
//! * **Waiters help.** While waiting for its helpers, a submitter runs other
//!   queued pool tasks instead of blocking, so a worker parked in a nested
//!   wait still executes the tasks everyone else is waiting on.
//!
//! ## Cancellation
//!
//! Jobs carry a shared abort flag checked **before each pop**: the first
//! error (or panic) recorded by any worker cancels the job's outstanding
//! items, so an early failure no longer drains the whole remaining queue
//! before surfacing. Panics are caught per item and re-raised on the
//! submitting thread after the helpers have quiesced.
//!
//! ## Parked drives (serving tier)
//!
//! The participating protocol above is right for batch work but wrong for a
//! serving worker: a thread that drives a query by *helping* can pick up an
//! arbitrary other query's partition task while it waits, so one long drive
//! holds a scheduler thread hostage for the duration of someone else's work.
//! [`with_parked_drive`] flips a thread-local that routes [`parallel_map`]
//! through [`WorkerPool::map_parked`] instead: every per-partition item is
//! submitted to the pool as its own poll-able task and the submitter **parks
//! on a completion latch** — it executes nothing itself and wakes the moment
//! its own job is done. Pool workers never park (a nested drive from a pool
//! worker falls back to the participating protocol via a second
//! thread-local), so parked submitters always make progress.
//!
//! The previous scoped-thread driver survives as [`parallel_map_scoped`] —
//! it is the measured baseline of `serving_study` and can be forced
//! process-wide with [`force_scoped`] or `RAVEN_POOL=scoped`.

use crate::error::{ColumnarError, Result};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// the pool
// ---------------------------------------------------------------------------

/// A type-erased task: a pointer to a stack-allocated job plus the
/// monomorphized entry point that knows the job's real type. The completion
/// protocol of [`parallel_map`] guarantees the pointee outlives the task.
struct RawTask {
    data: *const (),
    run: unsafe fn(*const ()),
}

// Safety: the job state a task points to is Sync (mutex-guarded queue and
// slots, atomics, a `&F where F: Sync`), and the submitting thread keeps it
// alive until the task has run.
unsafe impl Send for RawTask {}

struct PoolShared {
    /// One deque per worker. Owners pop LIFO from the back; thieves (other
    /// workers, helping submitters) steal FIFO from the front.
    queues: Vec<Mutex<VecDeque<RawTask>>>,
    /// Guards the sleep/wake protocol: a worker re-checks every queue while
    /// holding this lock before waiting, and every submission notifies under
    /// it, so wakeups are never lost.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin submission cursor.
    next: AtomicUsize,
    shutdown: AtomicBool,
    tasks_executed: AtomicU64,
    tasks_stolen: AtomicU64,
}

impl PoolShared {
    /// Take one task as worker `me`: own deque first (LIFO), then steal from
    /// siblings (FIFO), scanning from the next index for fairness.
    fn take(&self, me: usize) -> Option<RawTask> {
        if let Some(t) = self.queues[me]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(t);
        }
        let n = self.queues.len();
        for k in 1..n {
            let i = (me + k) % n;
            if let Some(t) = self.queues[i]
                .lock()
                .expect("pool queue poisoned")
                .pop_front()
            {
                self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Take one task from any deque (used by submitters helping while they
    /// wait; they have no deque of their own).
    fn take_any(&self) -> Option<RawTask> {
        for q in &self.queues {
            if let Some(t) = q.lock().expect("pool queue poisoned").pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn run(&self, task: RawTask) {
        // Job entry points catch per-item panics themselves; this outer guard
        // only keeps a worker thread alive if the job plumbing itself panics.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (task.run)(task.data) }));
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
    }

    fn submit(&self, task: RawTask) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i]
            .lock()
            .expect("pool queue poisoned")
            .push_back(task);
        // Acquire the sleep lock before notifying: a worker that found every
        // queue empty re-checks under this lock before waiting, so it either
        // sees the push or is woken by this notify.
        let _g = self.sleep.lock().expect("pool sleep lock poisoned");
        self.wake.notify_one();
    }
}

thread_local! {
    /// `true` on pool worker threads. A nested drive on a worker must use
    /// the participating protocol — a worker parked on a latch would strand
    /// the very pool its job needs.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// `true` inside a [`with_parked_drive`] scope on a non-worker thread.
    static PARKED_DRIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with parked drives enabled on this thread: every
/// [`parallel_map`] in the scope submits its per-partition items to the
/// shared pool and parks on a completion latch instead of executing items
/// (or other jobs' tasks) itself. No-op on pool worker threads and under
/// the scoped baseline. Restores the previous routing on exit, so scopes
/// nest.
pub fn with_parked_drive<R>(f: impl FnOnce() -> R) -> R {
    if IS_POOL_WORKER.with(|w| w.get()) {
        return f();
    }
    let prev = PARKED_DRIVE.with(|p| p.replace(true));
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            PARKED_DRIVE.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// `true` when the current thread would route [`parallel_map`] through the
/// parked-latch driver (inside [`with_parked_drive`], not a pool worker,
/// scoped baseline not forced).
pub fn parked_drive_active() -> bool {
    !scoped_forced() && PARKED_DRIVE.with(|p| p.get()) && !IS_POOL_WORKER.with(|w| w.get())
}

fn worker_loop(shared: std::sync::Arc<PoolShared>, me: usize) {
    IS_POOL_WORKER.with(|w| w.set(true));
    loop {
        if let Some(task) = shared.take(me) {
            shared.run(task);
            continue;
        }
        let guard = shared.sleep.lock().expect("pool sleep lock poisoned");
        // a worker only exits once its last sweep found every deque empty,
        // so shutdown never strands queued work
        if shared.shutdown.load(Ordering::Acquire) {
            match shared.take_any() {
                Some(task) => {
                    drop(guard);
                    shared.run(task);
                    continue;
                }
                None => return,
            }
        }
        if let Some(task) = shared.take(me) {
            drop(guard);
            shared.run(task);
            continue;
        }
        // the timeout is a belt-and-braces backstop; the sleep-lock protocol
        // above already prevents lost wakeups
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(100))
            .expect("pool sleep lock poisoned");
    }
}

/// A fixed set of long-lived worker threads with per-worker deques and work
/// stealing. One process-wide instance ([`WorkerPool::global`]) drives every
/// partition-parallel stage; independent instances exist only for tests.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count())
            .field("tasks_executed", &self.tasks_executed())
            .field("tasks_stolen", &self.tasks_stolen())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (min 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            tasks_executed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("raven-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The process-wide pool every drive point shares. Sized by
    /// `RAVEN_POOL_WORKERS` when set, otherwise by the machine's available
    /// parallelism — per-query `degree_of_parallelism` only bounds how many
    /// of these workers one job may occupy.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = crate::envcfg::pool_workers().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            WorkerPool::new(workers)
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.queues.len()
    }

    /// Tasks executed by pool workers since startup (helper tasks, not
    /// per-partition items; submitters running their own items don't count).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Tasks a worker stole from a sibling's deque.
    pub fn tasks_stolen(&self) -> u64 {
        self.shared.tasks_stolen.load(Ordering::Relaxed)
    }

    /// Run `f` over `items` on this pool with at most `dop` concurrent
    /// executors (the submitting thread plus up to `dop - 1` pool workers),
    /// preserving input order in the output. The first error aborts the
    /// job's outstanding items.
    pub fn map<T, U, F>(&self, items: Vec<T>, dop: usize, f: F) -> Result<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> Result<U> + Send + Sync,
    {
        let dop = dop.max(1);
        if dop == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        self.map_inner(items, dop, &f)
    }

    /// Like [`WorkerPool::map`], but the submitting thread does not execute
    /// items (or anyone else's tasks): every item is submitted to the pool
    /// as a poll-able per-partition task and the submitter parks on the
    /// job's completion latch. Falls back to the participating protocol when
    /// called from a pool worker thread — a parked worker would strand the
    /// pool its own job needs.
    pub fn map_parked<T, U, F>(&self, items: Vec<T>, dop: usize, f: F) -> Result<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> Result<U> + Send + Sync,
    {
        let dop = dop.max(1);
        if dop == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        if IS_POOL_WORKER.with(|w| w.get()) {
            return self.map_inner(items, dop, &f);
        }
        let n = items.len();
        let f = &f;
        let job = Job {
            queue: Mutex::new(items.into_iter().enumerate().rev().collect()),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            error: Mutex::new(None),
            panic: Mutex::new(None),
            abort: AtomicBool::new(false),
            f,
            helpers: Mutex::new(HelperCount {
                spawned: 0,
                finished: 0,
            }),
            done: Condvar::new(),
        };
        // the submitter is not an executor here, so at least one pool task
        // must exist; pool workers never park, so every task finishes
        let helpers = dop.min(n).min(self.worker_count()).max(1);
        job.helpers.lock().expect("job state poisoned").spawned = helpers;
        for _ in 0..helpers {
            self.shared.submit(RawTask {
                data: (&job as *const Job<'_, T, U, F>).cast(),
                run: helper_entry::<T, U, F>,
            });
        }
        job.wait_parked();
        if let Some(payload) = job.panic.lock().expect("job state poisoned").take() {
            resume_unwind(payload);
        }
        if let Some(e) = job.error.lock().expect("job state poisoned").take() {
            return Err(e);
        }
        job.results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .ok_or_else(|| {
                        ColumnarError::InvalidArgument("worker did not produce a result".into())
                    })
            })
            .collect()
    }

    fn map_inner<T, U, F>(&self, items: Vec<T>, dop: usize, f: &F) -> Result<Vec<U>>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> Result<U> + Send + Sync,
    {
        let n = items.len();
        let job = Job {
            queue: Mutex::new(items.into_iter().enumerate().rev().collect()),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            error: Mutex::new(None),
            panic: Mutex::new(None),
            abort: AtomicBool::new(false),
            f,
            helpers: Mutex::new(HelperCount {
                spawned: 0,
                finished: 0,
            }),
            done: Condvar::new(),
        };
        let helpers = (dop - 1).min(n - 1).min(self.worker_count());
        job.helpers.lock().expect("job state poisoned").spawned = helpers;
        for _ in 0..helpers {
            self.shared.submit(RawTask {
                data: (&job as *const Job<'_, T, U, F>).cast(),
                run: helper_entry::<T, U, F>,
            });
        }
        // the submitter is always an executor: progress is guaranteed even
        // when every pool worker is busy with other jobs (nested parallelism
        // therefore cannot deadlock)
        job.work();
        job.wait_helpers(&self.shared);
        if let Some(payload) = job.panic.lock().expect("job state poisoned").take() {
            resume_unwind(payload);
        }
        if let Some(e) = job.error.lock().expect("job state poisoned").take() {
            return Err(e);
        }
        job.results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .ok_or_else(|| {
                        ColumnarError::InvalidArgument("worker did not produce a result".into())
                    })
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// scoped jobs
// ---------------------------------------------------------------------------

struct HelperCount {
    spawned: usize,
    finished: usize,
}

/// Stack-allocated state of one `map` call, shared with its helper tasks via
/// a type-erased pointer.
struct Job<'f, T, U, F> {
    /// Remaining `(index, item)` pairs, reversed so `pop` yields source order.
    queue: Mutex<Vec<(usize, T)>>,
    results: Vec<Mutex<Option<U>>>,
    /// First error any executor hit.
    error: Mutex<Option<ColumnarError>>,
    /// First panic payload any executor caught.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Set on the first error/panic; checked before each pop, so the failure
    /// cancels outstanding items instead of draining the whole queue.
    abort: AtomicBool,
    f: &'f F,
    helpers: Mutex<HelperCount>,
    done: Condvar,
}

impl<T, U, F> Job<'_, T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U> + Send + Sync,
{
    /// Drain the job queue: the loop every executor (submitter and helpers)
    /// runs.
    fn work(&self) {
        loop {
            if self.abort.load(Ordering::Acquire) {
                return;
            }
            let next = self.queue.lock().expect("job queue poisoned").pop();
            let Some((idx, item)) = next else { return };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                Ok(Ok(out)) => {
                    *self.results[idx].lock().expect("result slot poisoned") = Some(out);
                }
                Ok(Err(e)) => {
                    let mut first = self.error.lock().expect("job state poisoned");
                    if first.is_none() {
                        *first = Some(e);
                    }
                    self.abort.store(true, Ordering::Release);
                }
                Err(payload) => {
                    let mut first = self.panic.lock().expect("job state poisoned");
                    if first.is_none() {
                        *first = Some(payload);
                    }
                    self.abort.store(true, Ordering::Release);
                }
            }
        }
    }

    /// Block until every spawned helper has finished its last touch of this
    /// job, running other queued pool tasks while waiting (so a submitter
    /// parked here — possibly a pool worker in a nested job — keeps the pool
    /// live instead of holding a thread hostage).
    fn wait_helpers(&self, shared: &PoolShared) {
        loop {
            {
                let g = self.helpers.lock().expect("job state poisoned");
                if g.finished == g.spawned {
                    return;
                }
            }
            if let Some(task) = shared.take_any() {
                shared.run(task);
                continue;
            }
            let g = self.helpers.lock().expect("job state poisoned");
            if g.finished == g.spawned {
                return;
            }
            // the helpers we're waiting on are running on other threads;
            // they notify `done` as they finish (timeout is a backstop)
            let _ = self
                .done
                .wait_timeout(g, Duration::from_millis(10))
                .expect("job state poisoned");
        }
    }

    /// Park on the completion latch until every spawned helper has finished,
    /// executing nothing while waiting. Only used by
    /// [`WorkerPool::map_parked`] from non-worker threads, so the pool stays
    /// fully staffed while this thread sleeps.
    fn wait_parked(&self) {
        let mut g = self.helpers.lock().expect("job state poisoned");
        while g.finished < g.spawned {
            // helpers notify `done` as their last touch of the job; the
            // timeout is a belt-and-braces backstop
            g = self
                .done
                .wait_timeout(g, Duration::from_millis(10))
                .expect("job state poisoned")
                .0;
        }
    }
}

/// Monomorphized helper entry point: reconstruct the job's type, drain its
/// queue, and — as the very last touch of the job — mark this helper
/// finished. The submitter returns (releasing the job's stack frame) only
/// after `finished == spawned`.
unsafe fn helper_entry<T, U, F>(data: *const ())
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U> + Send + Sync,
{
    let job = &*data.cast::<Job<'_, T, U, F>>();
    job.work();
    let mut g = job.helpers.lock().expect("job state poisoned");
    g.finished += 1;
    job.done.notify_all();
}

// ---------------------------------------------------------------------------
// public drivers
// ---------------------------------------------------------------------------

static FORCE_SCOPED: AtomicBool = AtomicBool::new(false);
static FORCE_SCOPED_INIT: OnceLock<()> = OnceLock::new();

fn scoped_forced() -> bool {
    FORCE_SCOPED_INIT.get_or_init(|| {
        if crate::envcfg::pool_scoped() {
            FORCE_SCOPED.store(true, Ordering::Relaxed);
        }
    });
    FORCE_SCOPED.load(Ordering::Relaxed)
}

/// Route every [`parallel_map`] through the legacy scoped-thread driver
/// (`true`) or the shared pool (`false`, the default). Process-global; used
/// by `serving_study` to A/B the two drivers and settable at startup with
/// `RAVEN_POOL=scoped`.
pub fn force_scoped(scoped: bool) {
    let _ = FORCE_SCOPED_INIT.set(());
    FORCE_SCOPED.store(scoped, Ordering::Relaxed);
}

/// Apply `f` to every item with up to `dop` concurrent executors, preserving
/// input order in the output. This is the single drive primitive shared by
/// every execution layer (relational operators, ML scoring, the session, the
/// serving tier): items run on the process-wide work-stealing pool
/// ([`WorkerPool::global`]) plus the calling thread, and the first error
/// cancels the job's outstanding items.
pub fn parallel_map<T, U, F>(items: Vec<T>, dop: usize, f: F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U> + Send + Sync,
{
    if scoped_forced() {
        return parallel_map_scoped(items, dop, f);
    }
    if parked_drive_active() {
        return WorkerPool::global().map_parked(items, dop, f);
    }
    WorkerPool::global().map(items, dop, f)
}

/// The PR 1 driver: a dependency-free scoped-thread pool spawned (and torn
/// down) per call. Kept as the measured baseline the shared pool is compared
/// against in `serving_study`; shares the abort-on-first-error contract of
/// [`parallel_map`].
pub fn parallel_map_scoped<T, U, F>(items: Vec<T>, dop: usize, f: F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U> + Send + Sync,
{
    let dop = dop.max(1);
    if dop == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Vec<Mutex<Option<Result<U>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let abort = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..dop.min(n) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                let next = queue.lock().expect("work queue poisoned").pop();
                match next {
                    Some((idx, item)) => {
                        let out = f(item);
                        if out.is_err() {
                            abort.store(true, Ordering::Release);
                        }
                        *results[idx].lock().expect("result slot poisoned") = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    let mut outputs = Vec::with_capacity(n);
    for slot in results {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(u)) => outputs.push(u),
            Some(Err(e)) => return Err(e),
            // only items cancelled by an abort have empty slots, and items
            // are popped in index order, so the recorded error is always
            // encountered (and returned) before the first empty slot
            None => continue,
        }
    }
    debug_assert!(
        !abort.load(Ordering::Acquire),
        "scoped job aborted without a recorded error"
    );
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_map_matches_serial_and_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for dop in [2, 4, 8] {
            let out = pool.map(items.clone(), dop, |x| Ok(x * 3)).unwrap();
            assert_eq!(out, serial);
        }
    }

    #[test]
    fn global_pool_is_shared_and_counts_tasks() {
        let before = WorkerPool::global().tasks_executed();
        let out = parallel_map((0..64).collect::<Vec<usize>>(), 4, |x| Ok(x + 1)).unwrap();
        assert_eq!(out.len(), 64);
        // helper tasks ran on the global pool (unless a single worker lost
        // every race to the submitting thread, which the retry below makes
        // vanishingly unlikely)
        for _ in 0..20 {
            if WorkerPool::global().tasks_executed() > before {
                break;
            }
            let _ = parallel_map((0..64).collect::<Vec<usize>>(), 4, |x| {
                std::thread::sleep(Duration::from_micros(50));
                Ok(x + 1)
            })
            .unwrap();
        }
        assert!(WorkerPool::global().tasks_executed() > before);
    }

    #[test]
    fn errors_abort_outstanding_items() {
        // 64 items; item 0 fails immediately, the rest sleep. Without the
        // abort flag every item would still run; with it, only the handful
        // already in flight when the error lands do.
        let pool = WorkerPool::new(4);
        let invocations = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let err = pool.map(items, 4, |x| {
            invocations.fetch_add(1, Ordering::SeqCst);
            if x == 0 {
                Err(ColumnarError::InvalidArgument("boom".into()))
            } else {
                std::thread::sleep(Duration::from_millis(2));
                Ok(x)
            }
        });
        assert!(err.is_err());
        let ran = invocations.load(Ordering::SeqCst);
        assert!(ran < 64, "abort should cancel outstanding items, ran {ran}");
    }

    #[test]
    fn scoped_driver_also_aborts() {
        let invocations = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let err = parallel_map_scoped(items, 4, |x| {
            invocations.fetch_add(1, Ordering::SeqCst);
            if x == 0 {
                Err(ColumnarError::InvalidArgument("boom".into()))
            } else {
                std::thread::sleep(Duration::from_millis(2));
                Ok(x)
            }
        });
        assert!(err.is_err());
        let ran = invocations.load(Ordering::SeqCst);
        assert!(ran < 64, "abort should cancel outstanding items, ran {ran}");
    }

    #[test]
    fn nested_parallel_map_does_not_deadlock() {
        // saturate a tiny pool with jobs that themselves call map
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let outer: Vec<usize> = (0..8).collect();
        let p = pool.clone();
        let out = pool
            .map(outer, 4, move |i| {
                let inner = p.map((0..16).collect::<Vec<usize>>(), 4, |x| Ok(x * 2))?;
                Ok(inner.into_iter().sum::<usize>() + i)
            })
            .unwrap();
        assert_eq!(out[0], 240);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map((0..16).collect::<Vec<usize>>(), 4, |x| {
                if x == 3 {
                    panic!("kaboom");
                }
                Ok(x)
            });
        }));
        assert!(res.is_err(), "panic must surface on the submitting thread");
        // the pool is still usable afterwards
        let ok = pool.map((0..8).collect::<Vec<usize>>(), 2, Ok).unwrap();
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn parked_map_matches_participating_and_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for dop in [2, 4, 8] {
            let out = pool.map_parked(items.clone(), dop, |x| Ok(x * 3)).unwrap();
            assert_eq!(out, serial);
        }
    }

    #[test]
    fn parked_map_propagates_errors_and_panics() {
        let pool = WorkerPool::new(4);
        let err = pool.map_parked((0..64).collect::<Vec<usize>>(), 4, |x| {
            if x == 5 {
                Err(ColumnarError::InvalidArgument("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(err.is_err());
        let res = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map_parked((0..16).collect::<Vec<usize>>(), 4, |x| {
                if x == 3 {
                    panic!("kaboom");
                }
                Ok(x)
            });
        }));
        assert!(res.is_err(), "panic must surface on the submitting thread");
        let ok = pool
            .map_parked((0..8).collect::<Vec<usize>>(), 2, Ok)
            .unwrap();
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn with_parked_drive_scopes_and_restores_routing() {
        assert!(!parked_drive_active());
        let inner = with_parked_drive(|| {
            let active = parked_drive_active();
            // nesting keeps the flag set and restores it pairwise
            with_parked_drive(|| assert_eq!(parked_drive_active(), active));
            active
        });
        // active unless the scoped baseline is pinned for this process
        assert_eq!(inner, !scoped_forced());
        assert!(!parked_drive_active());
        // results are identical either way
        let out = with_parked_drive(|| {
            parallel_map((0..64).collect::<Vec<usize>>(), 4, |x| Ok(x + 1)).unwrap()
        });
        assert_eq!(out, (1..=64).collect::<Vec<usize>>());
    }

    #[test]
    fn parked_drive_from_a_pool_worker_falls_back_and_completes() {
        // a nested parked request on a tiny, saturated pool must not park
        // the workers themselves (that would deadlock); the IS_POOL_WORKER
        // guard routes nested drives through the participating protocol
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let p = pool.clone();
        let out = pool
            .map_parked((0..8).collect::<Vec<usize>>(), 4, move |i| {
                let inner = with_parked_drive(|| {
                    p.map_parked((0..16).collect::<Vec<usize>>(), 4, |x| Ok(x * 2))
                })?;
                Ok(inner.into_iter().sum::<usize>() + i)
            })
            .unwrap();
        assert_eq!(out[0], 240);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn stealing_happens_across_worker_deques() {
        // many tiny jobs from one submitter: round-robin lands helper tasks
        // on every deque while workers finish at different times, so a
        // worker drains its own deque and steals from a sibling's within a
        // few rounds (bounded retry keeps the test deterministic-enough on
        // single-core machines)
        let pool = WorkerPool::new(4);
        for _ in 0..500 {
            let _ = pool
                .map((0..32).collect::<Vec<usize>>(), 5, |x| {
                    if x % 7 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Ok(x)
                })
                .unwrap();
            if pool.tasks_stolen() > 0 {
                break;
            }
        }
        assert!(pool.tasks_executed() > 0);
        assert!(
            pool.tasks_stolen() > 0,
            "idle workers must steal from sibling deques"
        );
    }
}
