//! Batches and tables.
//!
//! A [`Batch`] is the unit of vectorized execution: a schema plus one shared
//! column per field, all of equal length. A [`Table`] is a named collection of
//! batches (its partitions) together with per-partition and global statistics,
//! mirroring how partitioned Parquet data is organized in the systems the
//! paper targets.

use crate::column::{Column, ColumnRef};
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema, SchemaRef};
use crate::stats::TableStatistics;
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A vector of rows stored column-wise. The unit of execution in the engine.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: SchemaRef,
    columns: Vec<ColumnRef>,
    rows: usize,
}

impl Batch {
    /// Create a batch, validating that columns match the schema in count,
    /// type, and length.
    pub fn new(schema: SchemaRef, columns: Vec<ColumnRef>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (field, col) in schema.fields().iter().zip(columns.iter()) {
            if field.data_type() != col.data_type() {
                return Err(ColumnarError::TypeMismatch {
                    expected: field.data_type().to_string(),
                    found: col.data_type().to_string(),
                });
            }
            if col.len() != rows {
                return Err(ColumnarError::LengthMismatch {
                    expected: rows,
                    found: col.len(),
                });
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
        })
    }

    /// Assemble a batch from row-shaped values (e.g. point-prediction requests
    /// arriving one row at a time at a serving tier). Every row must have one
    /// value per schema field; values are checked against the field type, with
    /// `Int64 → Float64` widening and `Null` mapped to the in-band missing
    /// representation (`NaN` / empty string).
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Batch> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(ColumnarError::InvalidArgument(format!(
                    "row {i} has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
        }
        let mut columns: Vec<ColumnRef> = Vec::with_capacity(schema.len());
        for (idx, field) in schema.fields().iter().enumerate() {
            let cell_err = |row: usize, v: &Value| {
                ColumnarError::InvalidArgument(format!(
                    "row {row}, column '{}': value {v:?} does not fit {}",
                    field.name(),
                    field.data_type()
                ))
            };
            let column = match field.data_type() {
                DataType::Float64 => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (r, row) in rows.iter().enumerate() {
                        out.push(match &row[idx] {
                            Value::Float64(v) => *v,
                            Value::Int64(v) => *v as f64,
                            Value::Null => f64::NAN,
                            other => return Err(cell_err(r, other)),
                        });
                    }
                    Column::Float64(out)
                }
                DataType::Int64 => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (r, row) in rows.iter().enumerate() {
                        out.push(match &row[idx] {
                            Value::Int64(v) => *v,
                            Value::Float64(v) if v.fract() == 0.0 => *v as i64,
                            other => return Err(cell_err(r, other)),
                        });
                    }
                    Column::Int64(out)
                }
                DataType::Utf8 => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (r, row) in rows.iter().enumerate() {
                        out.push(match &row[idx] {
                            Value::Utf8(s) => s.clone(),
                            Value::Null => String::new(),
                            other => return Err(cell_err(r, other)),
                        });
                    }
                    Column::Utf8(out)
                }
                DataType::Boolean => {
                    let mut out = Vec::with_capacity(rows.len());
                    for (r, row) in rows.iter().enumerate() {
                        out.push(match &row[idx] {
                            Value::Boolean(b) => *b,
                            other => return Err(cell_err(r, other)),
                        });
                    }
                    Column::Boolean(out)
                }
            };
            columns.push(Arc::new(column));
        }
        Batch::new(schema, columns)
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Result<Self> {
        let columns = schema
            .fields()
            .iter()
            .map(|f| {
                Arc::new(match f.data_type() {
                    DataType::Float64 => Column::Float64(vec![]),
                    DataType::Int64 => Column::Int64(vec![]),
                    DataType::Utf8 => Column::Utf8(vec![]),
                    DataType::Boolean => Column::Boolean(vec![]),
                })
            })
            .collect();
        Batch::new(schema, columns)
    }

    /// The batch schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> Result<&ColumnRef> {
        self.columns.get(i).ok_or(ColumnarError::IndexOutOfBounds {
            index: i,
            len: self.columns.len(),
        })
    }

    /// Column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnRef> {
        let i = self.schema.index_of(name)?;
        self.column(i)
    }

    /// Project to the columns at `indices` (in that order) — zero copy.
    pub fn project(&self, indices: &[usize]) -> Result<Batch> {
        let schema = Arc::new(self.schema.project(indices)?);
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.clone());
        }
        Batch::new(schema, columns)
    }

    /// Project to named columns.
    pub fn project_names(&self, names: &[&str]) -> Result<Batch> {
        let indices = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        self.project(&indices)
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Batch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Batch::new(self.schema.clone(), columns)
    }

    /// Gather the selected rows into a compact batch (the materialization
    /// point of a selection-vector pipeline; an all-rows selection is free).
    pub fn compact(&self, selection: &crate::SelectionVector) -> Result<Batch> {
        if selection.is_all() {
            return Ok(self.clone());
        }
        let columns = self
            .columns
            .iter()
            .map(|c| c.gather(selection).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Batch::new(self.schema.clone(), columns)
    }

    /// Vertically concatenate batches with identical schemas, applying each
    /// batch's selection (when present) in the same single pass — the output
    /// boundary of a selection-vector pipeline.
    pub fn concat_selected(parts: &[(&Batch, Option<&crate::SelectionVector>)]) -> Result<Batch> {
        let first = parts.first().ok_or_else(|| {
            ColumnarError::InvalidArgument("cannot concatenate zero batches".into())
        })?;
        let schema = first.0.schema.clone();
        let mut columns = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let cols: Vec<(&Column, Option<&crate::SelectionVector>)> = parts
                .iter()
                .map(|(b, sel)| (b.columns[i].as_ref(), *sel))
                .collect();
            columns.push(Arc::new(Column::concat_selected(&cols)?));
        }
        Batch::new(schema, columns)
    }

    /// Gather the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<Batch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.take(indices).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Batch::new(self.schema.clone(), columns)
    }

    /// Contiguous row slice.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Batch> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(offset, len).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        Batch::new(self.schema.clone(), columns)
    }

    /// Split the batch into chunks of at most `chunk_rows` rows.
    pub fn chunks(&self, chunk_rows: usize) -> Result<Vec<Batch>> {
        if chunk_rows == 0 {
            return Err(ColumnarError::InvalidArgument(
                "chunk size must be positive".into(),
            ));
        }
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < self.rows {
            let len = chunk_rows.min(self.rows - offset);
            out.push(self.slice(offset, len)?);
            offset += len;
        }
        if out.is_empty() {
            out.push(self.clone());
        }
        Ok(out)
    }

    /// Vertically concatenate batches with identical schemas.
    pub fn concat(batches: &[Batch]) -> Result<Batch> {
        let first = batches.first().ok_or_else(|| {
            ColumnarError::InvalidArgument("cannot concatenate zero batches".into())
        })?;
        let schema = first.schema.clone();
        let mut columns = Vec::with_capacity(schema.len());
        for i in 0..schema.len() {
            let cols: Vec<&Column> = batches.iter().map(|b| b.columns[i].as_ref()).collect();
            columns.push(Arc::new(Column::concat(&cols)?));
        }
        Batch::new(schema, columns)
    }

    /// Extract one row as a vector of scalars.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Add (or replace) a column, returning a new batch.
    pub fn with_column(&self, field: Field, column: ColumnRef) -> Result<Batch> {
        if column.len() != self.rows && !(self.columns.is_empty()) {
            return Err(ColumnarError::LengthMismatch {
                expected: self.rows,
                found: column.len(),
            });
        }
        let mut fields: Vec<Field> = self.schema.fields().to_vec();
        let mut columns = self.columns.clone();
        if let Ok(idx) = self.schema.index_of(field.name()) {
            fields[idx] = field;
            columns[idx] = column;
        } else {
            fields.push(field);
            columns.push(column);
        }
        Batch::new(Arc::new(Schema::new(fields)?), columns)
    }

    /// Compute statistics for this batch.
    pub fn statistics(&self) -> Result<TableStatistics> {
        let pairs: Vec<(&str, &Column)> = self
            .schema
            .fields()
            .iter()
            .zip(self.columns.iter())
            .map(|(f, c)| (f.name(), c.as_ref()))
            .collect();
        TableStatistics::compute(&pairs)
    }

    /// Estimated in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }
}

/// A named table: one or more partitions plus statistics.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    partitions: Vec<Batch>,
    partition_stats: Vec<TableStatistics>,
    stats: TableStatistics,
    /// The column this table is partitioned on, when value-partitioned.
    partition_column: Option<String>,
}

impl Table {
    /// Create a table from partitions (at least one, possibly empty).
    pub fn new(name: impl Into<String>, partitions: Vec<Batch>) -> Result<Self> {
        let name = name.into();
        let schema = partitions
            .first()
            .map(|b| b.schema().clone())
            .ok_or_else(|| {
                ColumnarError::InvalidArgument(format!(
                    "table {name} must have at least one partition"
                ))
            })?;
        for p in &partitions {
            if p.schema().as_ref() != schema.as_ref() {
                return Err(ColumnarError::InvalidArgument(format!(
                    "all partitions of table {name} must share a schema"
                )));
            }
        }
        let partition_stats = partitions
            .iter()
            .map(|p| p.statistics())
            .collect::<Result<Vec<_>>>()?;
        let stats = partition_stats
            .iter()
            .fold(TableStatistics::default(), |acc, s| acc.merge(s));
        Ok(Table {
            name,
            schema,
            partitions,
            partition_stats,
            stats,
            partition_column: None,
        })
    }

    /// Create a single-partition table from one batch.
    pub fn from_batch(name: impl Into<String>, batch: Batch) -> Result<Self> {
        Table::new(name, vec![batch])
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Partitions of the table.
    pub fn partitions(&self) -> &[Batch] {
        &self.partitions
    }

    /// Per-partition statistics (aligned with [`Table::partitions`]).
    pub fn partition_statistics(&self) -> &[TableStatistics] {
        &self.partition_stats
    }

    /// Global (merged) statistics.
    pub fn statistics(&self) -> &TableStatistics {
        &self.stats
    }

    /// Total number of rows across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// The column the table is value-partitioned on, if any.
    pub fn partition_column(&self) -> Option<&str> {
        self.partition_column.as_deref()
    }

    /// Record the partitioning column (set by [`crate::partition_by_column`]).
    pub fn set_partition_column(&mut self, column: Option<String>) {
        self.partition_column = column;
    }

    /// Concatenate all partitions into a single batch.
    pub fn to_batch(&self) -> Result<Batch> {
        Batch::concat(&self.partitions)
    }

    /// Total estimated size in bytes.
    pub fn byte_size(&self) -> usize {
        self.partitions.iter().map(|p| p.byte_size()).sum()
    }

    /// Replicate the table's rows `factor` times (used to scale datasets as
    /// the paper does, while keeping key columns unique by offsetting them).
    pub fn replicate(&self, factor: usize, key_columns: &[&str]) -> Result<Table> {
        if factor == 0 {
            return Err(ColumnarError::InvalidArgument(
                "replication factor must be positive".into(),
            ));
        }
        let base = self.to_batch()?;
        let base_rows = base.num_rows() as i64;
        let mut batches = Vec::with_capacity(factor);
        for rep in 0..factor {
            let mut columns: Vec<ColumnRef> = Vec::with_capacity(base.num_columns());
            for (field, col) in base.schema().fields().iter().zip(base.columns()) {
                if key_columns.contains(&field.name()) {
                    let keys = col.as_i64()?;
                    let offset = rep as i64 * base_rows;
                    columns.push(Arc::new(Column::Int64(
                        keys.iter().map(|k| k + offset).collect(),
                    )));
                } else {
                    columns.push(col.clone());
                }
            }
            batches.push(Batch::new(base.schema().clone(), columns)?);
        }
        Table::new(self.name.clone(), vec![Batch::concat(&batches)?])
    }
}

/// Convenience builder for assembling a single-partition table column by column.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
    columns: Vec<ColumnRef>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            fields: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Add a float column.
    pub fn add_f64(mut self, name: &str, values: Vec<f64>) -> Self {
        self.fields.push(Field::new(name, DataType::Float64));
        self.columns.push(Arc::new(Column::Float64(values)));
        self
    }

    /// Add an integer column.
    pub fn add_i64(mut self, name: &str, values: Vec<i64>) -> Self {
        self.fields.push(Field::new(name, DataType::Int64));
        self.columns.push(Arc::new(Column::Int64(values)));
        self
    }

    /// Add a string column.
    pub fn add_utf8(mut self, name: &str, values: Vec<String>) -> Self {
        self.fields.push(Field::new(name, DataType::Utf8));
        self.columns.push(Arc::new(Column::Utf8(values)));
        self
    }

    /// Add a boolean column.
    pub fn add_bool(mut self, name: &str, values: Vec<bool>) -> Self {
        self.fields.push(Field::new(name, DataType::Boolean));
        self.columns.push(Arc::new(Column::Boolean(values)));
        self
    }

    /// Finish building, validating schema/column agreement.
    pub fn build(self) -> Result<Table> {
        let schema = Arc::new(Schema::new(self.fields)?);
        let batch = Batch::new(schema, self.columns)?;
        Table::from_batch(self.name, batch)
    }

    /// Finish building but return the single batch rather than a table.
    pub fn build_batch(self) -> Result<Batch> {
        let schema = Arc::new(Schema::new(self.fields)?);
        Batch::new(schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        TableBuilder::new("t")
            .add_i64("id", vec![1, 2, 3, 4])
            .add_f64("x", vec![1.0, 2.0, 3.0, 4.0])
            .add_utf8("c", vec!["a".into(), "b".into(), "a".into(), "c".into()])
            .build_batch()
            .unwrap()
    }

    #[test]
    fn from_rows_round_trips_and_checks_types() {
        let batch = sample_batch();
        let rows: Vec<Vec<Value>> = (0..batch.num_rows())
            .map(|i| batch.row(i).unwrap())
            .collect();
        let rebuilt = Batch::from_rows(batch.schema().clone(), &rows).unwrap();
        assert_eq!(rebuilt.num_rows(), batch.num_rows());
        for (a, b) in batch.columns().iter().zip(rebuilt.columns()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }

        // int → float widening, null → NaN / empty string
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("x", DataType::Float64),
                Field::new("s", DataType::Utf8),
            ])
            .unwrap(),
        );
        let b = Batch::from_rows(
            schema.clone(),
            &[
                vec![Value::Int64(3), Value::Null],
                vec![Value::Null, Value::Utf8("hi".into())],
            ],
        )
        .unwrap();
        assert_eq!(b.column_by_name("x").unwrap().as_f64().unwrap()[0], 3.0);
        assert!(b.column_by_name("x").unwrap().as_f64().unwrap()[1].is_nan());
        assert_eq!(b.column_by_name("s").unwrap().as_utf8().unwrap()[0], "");

        // arity and type mismatches are rejected
        assert!(Batch::from_rows(schema.clone(), &[vec![Value::Int64(1)]]).is_err());
        assert!(Batch::from_rows(
            schema,
            &[vec![Value::Utf8("no".into()), Value::Utf8("x".into())]]
        )
        .is_err());
    }

    #[test]
    fn batch_validation() {
        let schema = Arc::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
            ])
            .unwrap(),
        );
        // wrong column count
        assert!(Batch::new(schema.clone(), vec![Arc::new(Column::Int64(vec![1]))]).is_err());
        // wrong type
        assert!(Batch::new(
            schema.clone(),
            vec![
                Arc::new(Column::Int64(vec![1])),
                Arc::new(Column::Int64(vec![2]))
            ]
        )
        .is_err());
        // mismatched length
        assert!(Batch::new(
            schema,
            vec![
                Arc::new(Column::Int64(vec![1])),
                Arc::new(Column::Float64(vec![1.0, 2.0]))
            ]
        )
        .is_err());
    }

    #[test]
    fn project_filter_take_slice() {
        let b = sample_batch();
        let p = b.project_names(&["x", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["x", "id"]);
        let f = b.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.num_rows(), 2);
        let t = b.take(&[3, 0]).unwrap();
        assert_eq!(t.column_by_name("id").unwrap().as_i64().unwrap(), &[4, 1]);
        let s = b.slice(1, 2).unwrap();
        assert_eq!(s.num_rows(), 2);
    }

    #[test]
    fn chunks_cover_all_rows() {
        let b = sample_batch();
        let chunks = b.chunks(3).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 3);
        assert_eq!(chunks[1].num_rows(), 1);
        assert!(b.chunks(0).is_err());
    }

    #[test]
    fn concat_batches() {
        let b = sample_batch();
        let c = Batch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.num_rows(), 8);
    }

    #[test]
    fn row_extraction() {
        let b = sample_batch();
        let row = b.row(2).unwrap();
        assert_eq!(row[0], Value::Int64(3));
        assert_eq!(row[2], Value::Utf8("a".into()));
    }

    #[test]
    fn with_column_add_and_replace() {
        let b = sample_batch();
        let added = b
            .with_column(
                Field::new("y", DataType::Float64),
                Arc::new(Column::Float64(vec![0.0; 4])),
            )
            .unwrap();
        assert_eq!(added.num_columns(), 4);
        let replaced = added
            .with_column(
                Field::new("y", DataType::Float64),
                Arc::new(Column::Float64(vec![9.0; 4])),
            )
            .unwrap();
        assert_eq!(replaced.num_columns(), 4);
        assert_eq!(
            replaced.column_by_name("y").unwrap().as_f64().unwrap()[0],
            9.0
        );
    }

    #[test]
    fn table_stats_and_rows() {
        let b = sample_batch();
        let t = Table::from_batch("t", b).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(
            t.statistics().column("x").unwrap().numeric_range(),
            Some((1.0, 4.0))
        );
        assert_eq!(t.partitions().len(), 1);
    }

    #[test]
    fn table_schema_mismatch_rejected() {
        let b1 = sample_batch();
        let b2 = TableBuilder::new("t")
            .add_i64("other", vec![1])
            .build_batch()
            .unwrap();
        assert!(Table::new("t", vec![b1, b2]).is_err());
    }

    #[test]
    fn replicate_offsets_keys() {
        let t = TableBuilder::new("t")
            .add_i64("id", vec![1, 2])
            .add_f64("x", vec![0.5, 1.5])
            .build()
            .unwrap();
        let r = t.replicate(3, &["id"]).unwrap();
        assert_eq!(r.num_rows(), 6);
        let ids = r.to_batch().unwrap();
        let ids = ids.column_by_name("id").unwrap();
        let ids = ids.as_i64().unwrap();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 6, "keys must stay unique after replication");
        assert!(t.replicate(0, &["id"]).is_err());
    }

    #[test]
    fn empty_batch() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64)]).unwrap());
        let b = Batch::empty(schema).unwrap();
        assert_eq!(b.num_rows(), 0);
    }
}
