//! Value-based partitioning of tables.
//!
//! The paper (§4.2) exploits the fact that big-data systems store data in
//! partitions — either user-specified or produced by data operations — and
//! compiles a partition-optimized model per partition using per-partition
//! min/max statistics. This module produces such partitioned tables.

use crate::error::{ColumnarError, Result};
use crate::table::{Batch, Table};
use crate::value::Value;
use std::collections::BTreeMap;

/// How to partition a table.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// One partition per distinct value of the column (like a Hive/Spark
    /// partition column or the result of a group-by).
    ByDistinctValue { column: String },
    /// Fixed number of equal-width ranges over a numeric column.
    ByRange { column: String, partitions: usize },
    /// Round-robin split into `partitions` equal-size chunks (no data locality).
    RoundRobin { partitions: usize },
}

/// Partition `table` according to `spec`, returning a new table whose
/// partitions reflect the requested layout and whose `partition_column`
/// records the partitioning key (for value/range partitioning).
pub fn partition_by_column(table: &Table, spec: &PartitionSpec) -> Result<Table> {
    let batch = table.to_batch()?;
    match spec {
        PartitionSpec::ByDistinctValue { column } => {
            let col = batch.column_by_name(column)?;
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for i in 0..batch.num_rows() {
                let key = group_key(&col.value(i)?);
                groups.entry(key).or_default().push(i);
            }
            let mut partitions = Vec::with_capacity(groups.len().max(1));
            for indices in groups.values() {
                partitions.push(batch.take(indices)?);
            }
            if partitions.is_empty() {
                partitions.push(batch);
            }
            let mut out = Table::new(table.name(), partitions)?;
            out.set_partition_column(Some(column.clone()));
            Ok(out)
        }
        PartitionSpec::ByRange { column, partitions } => {
            if *partitions == 0 {
                return Err(ColumnarError::InvalidArgument(
                    "range partitioning requires at least one partition".into(),
                ));
            }
            let col = batch.column_by_name(column)?;
            let values = col.to_f64_vec()?;
            let (min, max) = values
                .iter()
                .filter(|v| !v.is_nan())
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            if !min.is_finite() || !max.is_finite() || min == max {
                // Degenerate domain: keep everything in one partition.
                let mut out = Table::new(table.name(), vec![batch])?;
                out.set_partition_column(Some(column.clone()));
                return Ok(out);
            }
            let width = (max - min) / *partitions as f64;
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); *partitions];
            for (i, v) in values.iter().enumerate() {
                let b = if v.is_nan() {
                    0
                } else {
                    (((v - min) / width).floor() as usize).min(*partitions - 1)
                };
                buckets[b].push(i);
            }
            let mut parts = Vec::new();
            for bucket in &buckets {
                if !bucket.is_empty() {
                    parts.push(batch.take(bucket)?);
                }
            }
            if parts.is_empty() {
                parts.push(batch);
            }
            let mut out = Table::new(table.name(), parts)?;
            out.set_partition_column(Some(column.clone()));
            Ok(out)
        }
        PartitionSpec::RoundRobin { partitions } => {
            if *partitions == 0 {
                return Err(ColumnarError::InvalidArgument(
                    "round-robin partitioning requires at least one partition".into(),
                ));
            }
            let rows = batch.num_rows();
            let chunk = rows.div_ceil(*partitions).max(1);
            let parts = batch.chunks(chunk)?;
            Table::new(table.name(), parts)
        }
    }
}

fn group_key(value: &Value) -> String {
    match value {
        Value::Utf8(s) => format!("s:{s}"),
        Value::Int64(i) => format!("i:{i:020}"),
        Value::Float64(f) => format!("f:{f:024.6}"),
        Value::Boolean(b) => format!("b:{b}"),
        Value::Null => "null".to_string(),
    }
}

/// Compute, for each partition of `table`, how many rows it holds — a small
/// helper used by harnesses to report partition layouts.
pub fn partition_sizes(table: &Table) -> Vec<usize> {
    table.partitions().iter().map(Batch::num_rows).collect()
}

/// Check that a partitioned table covers exactly the same multiset of key
/// values as the original (sanity helper for tests / property checks).
pub fn same_key_multiset(original: &Table, partitioned: &Table, key: &str) -> Result<bool> {
    let collect = |t: &Table| -> Result<Vec<String>> {
        let mut keys = Vec::new();
        for p in t.partitions() {
            let col = p.column_by_name(key)?;
            for i in 0..p.num_rows() {
                keys.push(group_key(&col.value(i)?));
            }
        }
        keys.sort();
        Ok(keys)
    };
    Ok(collect(original)? == collect(partitioned)?)
}

/// Returns per-partition (min, max) for a numeric column, used by harnesses to
/// demonstrate data-induced predicates.
pub fn partition_ranges(table: &Table, column: &str) -> Result<Vec<(f64, f64)>> {
    let mut out = Vec::with_capacity(table.partitions().len());
    for stats in table.partition_statistics() {
        let cs = stats
            .column(column)
            .ok_or_else(|| ColumnarError::ColumnNotFound(column.to_string()))?;
        out.push(cs.numeric_range().unwrap_or((f64::NAN, f64::NAN)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new("hospital")
            .add_i64("id", vec![1, 2, 3, 4, 5, 6])
            .add_i64("rcount", vec![0, 1, 0, 2, 1, 0])
            .add_f64("age", vec![30.0, 70.0, 45.0, 80.0, 25.0, 60.0])
            .build()
            .unwrap()
    }

    #[test]
    fn by_distinct_value() {
        let t = table();
        let p = partition_by_column(
            &t,
            &PartitionSpec::ByDistinctValue {
                column: "rcount".into(),
            },
        )
        .unwrap();
        assert_eq!(p.partitions().len(), 3);
        assert_eq!(p.partition_column(), Some("rcount"));
        assert_eq!(p.num_rows(), 6);
        assert!(same_key_multiset(&t, &p, "id").unwrap());
        // each partition has a constant rcount
        for stats in p.partition_statistics() {
            assert!(stats.column("rcount").unwrap().is_constant());
        }
    }

    #[test]
    fn by_range() {
        let t = table();
        let p = partition_by_column(
            &t,
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions: 2,
            },
        )
        .unwrap();
        assert!(p.partitions().len() <= 2);
        assert_eq!(p.num_rows(), 6);
        let ranges = partition_ranges(&p, "age").unwrap();
        // ranges must be disjoint and ordered by construction of equal-width buckets
        assert!(ranges[0].1 <= ranges[ranges.len() - 1].0 + 1e-9 || ranges.len() == 1);
    }

    #[test]
    fn by_range_degenerate_domain() {
        let t = TableBuilder::new("t")
            .add_f64("x", vec![5.0, 5.0, 5.0])
            .build()
            .unwrap();
        let p = partition_by_column(
            &t,
            &PartitionSpec::ByRange {
                column: "x".into(),
                partitions: 4,
            },
        )
        .unwrap();
        assert_eq!(p.partitions().len(), 1);
    }

    #[test]
    fn round_robin() {
        let t = table();
        let p = partition_by_column(&t, &PartitionSpec::RoundRobin { partitions: 4 }).unwrap();
        assert_eq!(p.num_rows(), 6);
        assert!(p.partitions().len() >= 2);
        assert_eq!(p.partition_column(), None);
    }

    #[test]
    fn zero_partitions_rejected() {
        let t = table();
        assert!(partition_by_column(&t, &PartitionSpec::RoundRobin { partitions: 0 }).is_err());
        assert!(partition_by_column(
            &t,
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions: 0
            }
        )
        .is_err());
    }

    #[test]
    fn missing_column_rejected() {
        let t = table();
        assert!(partition_by_column(
            &t,
            &PartitionSpec::ByDistinctValue {
                column: "nope".into()
            }
        )
        .is_err());
    }

    #[test]
    fn partition_sizes_helper() {
        let t = table();
        let p = partition_by_column(
            &t,
            &PartitionSpec::ByDistinctValue {
                column: "rcount".into(),
            },
        )
        .unwrap();
        let sizes = partition_sizes(&p);
        assert_eq!(sizes.iter().sum::<usize>(), 6);
    }
}
