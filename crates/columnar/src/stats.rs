//! Column and table statistics.
//!
//! Raven's data-induced optimizations (§4.2 of the paper) use min/max column
//! statistics — global or per-partition — to induce predicates that prune ML
//! models at compile time. This module computes and stores those statistics.

use crate::column::Column;
use crate::error::Result;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics for one column (within one partition or the whole table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStatistics {
    /// Column name.
    pub name: String,
    /// Minimum value (None when the column is empty or all-missing).
    pub min: Option<Value>,
    /// Maximum value (None when the column is empty or all-missing).
    pub max: Option<Value>,
    /// Number of missing values (NaN / empty string).
    pub null_count: usize,
    /// Exact number of distinct non-missing values (cheap on the scales we use).
    pub distinct_count: usize,
    /// Number of rows covered.
    pub row_count: usize,
}

impl ColumnStatistics {
    /// Compute statistics for a column.
    pub fn compute(name: &str, column: &Column) -> Result<Self> {
        let row_count = column.len();
        let mut null_count = 0;
        let (min, max, distinct_count) = match column {
            Column::Float64(v) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut distinct: HashSet<u64> = HashSet::new();
                for &x in v {
                    if x.is_nan() {
                        null_count += 1;
                        continue;
                    }
                    min = min.min(x);
                    max = max.max(x);
                    distinct.insert(x.to_bits());
                }
                if distinct.is_empty() {
                    (None, None, 0)
                } else {
                    (
                        Some(Value::Float64(min)),
                        Some(Value::Float64(max)),
                        distinct.len(),
                    )
                }
            }
            Column::Int64(v) => {
                let mut distinct: HashSet<i64> = HashSet::new();
                let mut min = i64::MAX;
                let mut max = i64::MIN;
                for &x in v {
                    min = min.min(x);
                    max = max.max(x);
                    distinct.insert(x);
                }
                if distinct.is_empty() {
                    (None, None, 0)
                } else {
                    (
                        Some(Value::Int64(min)),
                        Some(Value::Int64(max)),
                        distinct.len(),
                    )
                }
            }
            Column::Utf8(v) => {
                let mut distinct: HashSet<&str> = HashSet::new();
                let mut min: Option<&str> = None;
                let mut max: Option<&str> = None;
                for x in v {
                    if x.is_empty() {
                        null_count += 1;
                        continue;
                    }
                    min = Some(match min {
                        Some(m) if m <= x.as_str() => m,
                        _ => x.as_str(),
                    });
                    max = Some(match max {
                        Some(m) if m >= x.as_str() => m,
                        _ => x.as_str(),
                    });
                    distinct.insert(x.as_str());
                }
                (
                    min.map(|s| Value::Utf8(s.to_string())),
                    max.map(|s| Value::Utf8(s.to_string())),
                    distinct.len(),
                )
            }
            Column::Boolean(v) => {
                let mut distinct: HashSet<bool> = HashSet::new();
                let mut any_true = false;
                let mut any_false = false;
                for &x in v {
                    distinct.insert(x);
                    any_true |= x;
                    any_false |= !x;
                }
                if distinct.is_empty() {
                    (None, None, 0)
                } else {
                    (
                        Some(Value::Boolean(!any_false)),
                        Some(Value::Boolean(any_true)),
                        distinct.len(),
                    )
                }
            }
        };
        Ok(ColumnStatistics {
            name: name.to_string(),
            min,
            max,
            null_count,
            distinct_count,
            row_count,
        })
    }

    /// Both min and max interpreted as `f64` (for numeric/boolean columns).
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let min = self.min.as_ref()?.as_f64()?;
        let max = self.max.as_ref()?.as_f64()?;
        Some((min, max))
    }

    /// Whether the column holds a single constant value across the covered rows.
    pub fn is_constant(&self) -> bool {
        self.distinct_count == 1 && self.null_count == 0
    }

    /// Estimated fraction of rows matching `column = <literal>` under the
    /// classical uniformity assumption: one out of `distinct_count` values.
    /// `None` when the column has no distinct values (empty / all-missing).
    pub fn equality_selectivity(&self) -> Option<f64> {
        if self.distinct_count == 0 {
            return None;
        }
        Some(1.0 / self.distinct_count as f64)
    }

    /// Estimated fraction of rows falling in `[lo, hi]`, interpolated
    /// uniformly over the column's `[min, max]` range. `None` when the column
    /// has no numeric range. Either bound may be infinite (one-sided
    /// comparisons).
    pub fn range_fraction(&self, lo: f64, hi: f64) -> Option<f64> {
        let (min, max) = self.numeric_range()?;
        if hi < lo || hi < min || lo > max {
            return Some(0.0);
        }
        if max <= min {
            // constant column: the range either covers the value or not
            return Some(1.0);
        }
        let covered = hi.min(max) - lo.max(min);
        Some((covered / (max - min)).clamp(0.0, 1.0))
    }

    /// Merge statistics of two partitions of the same column.
    pub fn merge(&self, other: &ColumnStatistics) -> ColumnStatistics {
        use std::cmp::Ordering;
        let min = match (&self.min, &other.min) {
            (Some(a), Some(b)) => Some(if a.partial_cmp_value(b) == Some(Ordering::Greater) {
                b.clone()
            } else {
                a.clone()
            }),
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        let max = match (&self.max, &other.max) {
            (Some(a), Some(b)) => Some(if a.partial_cmp_value(b) == Some(Ordering::Less) {
                b.clone()
            } else {
                a.clone()
            }),
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        ColumnStatistics {
            name: self.name.clone(),
            min,
            max,
            null_count: self.null_count + other.null_count,
            // Upper bound; exact merge would require re-hashing the data.
            distinct_count: self.distinct_count.max(other.distinct_count),
            row_count: self.row_count + other.row_count,
        }
    }
}

/// Statistics for a whole batch / partition / table: one entry per column.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableStatistics {
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStatistics>,
    /// Total row count.
    pub row_count: usize,
}

impl TableStatistics {
    /// Compute statistics for an aligned set of (name, column) pairs.
    pub fn compute(columns: &[(&str, &Column)]) -> Result<Self> {
        let row_count = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
        let columns = columns
            .iter()
            .map(|(name, col)| ColumnStatistics::compute(name, col))
            .collect::<Result<Vec<_>>>()?;
        Ok(TableStatistics { columns, row_count })
    }

    /// Look up statistics for a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Merge statistics across partitions (column-wise).
    pub fn merge(&self, other: &TableStatistics) -> TableStatistics {
        if self.columns.is_empty() {
            return other.clone();
        }
        let columns = self
            .columns
            .iter()
            .map(|c| match other.column(&c.name) {
                Some(o) => c.merge(o),
                None => c.clone(),
            })
            .collect();
        TableStatistics {
            columns,
            row_count: self.row_count + other.row_count,
        }
    }
}

/// Helper describing the value domain a statistics object implies for a
/// column; data-induced optimization consumes this.
#[derive(Debug, Clone, PartialEq)]
pub enum InducedDomain {
    /// Numeric column constrained to `[min, max]`.
    Range { min: f64, max: f64 },
    /// Column known to hold exactly one value.
    Constant(Value),
    /// No useful constraint (e.g. all-missing or string with many values).
    Unconstrained,
}

impl ColumnStatistics {
    /// The domain induced by these statistics, used to generate data-induced
    /// predicates (paper §4.2).
    pub fn induced_domain(&self) -> InducedDomain {
        if self.is_constant() {
            if let Some(min) = &self.min {
                return InducedDomain::Constant(min.clone());
            }
        }
        match (self.min.as_ref(), self.max.as_ref()) {
            (Some(min), Some(max)) => {
                if min.data_type() == Some(DataType::Utf8) {
                    InducedDomain::Unconstrained
                } else {
                    match (min.as_f64(), max.as_f64()) {
                        (Some(lo), Some(hi)) => InducedDomain::Range { min: lo, max: hi },
                        _ => InducedDomain::Unconstrained,
                    }
                }
            }
            _ => InducedDomain::Unconstrained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_stats_with_missing() {
        let c = Column::Float64(vec![1.0, f64::NAN, 3.0, 2.0]);
        let s = ColumnStatistics::compute("x", &c).unwrap();
        assert_eq!(s.null_count, 1);
        assert_eq!(s.numeric_range(), Some((1.0, 3.0)));
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.row_count, 4);
    }

    #[test]
    fn int_stats() {
        let c = Column::Int64(vec![5, 5, 7]);
        let s = ColumnStatistics::compute("k", &c).unwrap();
        assert_eq!(s.min, Some(Value::Int64(5)));
        assert_eq!(s.max, Some(Value::Int64(7)));
        assert_eq!(s.distinct_count, 2);
        assert!(!s.is_constant());
    }

    #[test]
    fn constant_detection_and_domain() {
        let c = Column::Int64(vec![1, 1, 1]);
        let s = ColumnStatistics::compute("flag", &c).unwrap();
        assert!(s.is_constant());
        assert_eq!(s.induced_domain(), InducedDomain::Constant(Value::Int64(1)));
    }

    #[test]
    fn string_stats() {
        let c = Column::Utf8(vec!["b".into(), "".into(), "a".into()]);
        let s = ColumnStatistics::compute("cat", &c).unwrap();
        assert_eq!(s.null_count, 1);
        assert_eq!(s.min, Some(Value::Utf8("a".into())));
        assert_eq!(s.max, Some(Value::Utf8("b".into())));
        assert_eq!(s.induced_domain(), InducedDomain::Unconstrained);
    }

    #[test]
    fn bool_stats() {
        let c = Column::Boolean(vec![false, true]);
        let s = ColumnStatistics::compute("b", &c).unwrap();
        assert_eq!(s.min, Some(Value::Boolean(false)));
        assert_eq!(s.max, Some(Value::Boolean(true)));
    }

    #[test]
    fn empty_column_stats() {
        let c = Column::Float64(vec![]);
        let s = ColumnStatistics::compute("x", &c).unwrap();
        assert_eq!(s.min, None);
        assert_eq!(s.numeric_range(), None);
        assert_eq!(s.induced_domain(), InducedDomain::Unconstrained);
    }

    #[test]
    fn merge_stats() {
        let a = ColumnStatistics::compute("x", &Column::Float64(vec![1.0, 2.0])).unwrap();
        let b = ColumnStatistics::compute("x", &Column::Float64(vec![5.0])).unwrap();
        let m = a.merge(&b);
        assert_eq!(m.numeric_range(), Some((1.0, 5.0)));
        assert_eq!(m.row_count, 3);
    }

    #[test]
    fn table_stats_lookup_and_merge() {
        let c1 = Column::Int64(vec![1, 2]);
        let c2 = Column::Float64(vec![0.5, 1.5]);
        let t1 = TableStatistics::compute(&[("id", &c1), ("x", &c2)]).unwrap();
        assert_eq!(t1.row_count, 2);
        assert!(t1.column("id").is_some());
        assert!(t1.column("nope").is_none());

        let c3 = Column::Int64(vec![9]);
        let c4 = Column::Float64(vec![-2.0]);
        let t2 = TableStatistics::compute(&[("id", &c3), ("x", &c4)]).unwrap();
        let m = t1.merge(&t2);
        assert_eq!(m.row_count, 3);
        assert_eq!(m.column("x").unwrap().numeric_range(), Some((-2.0, 1.5)));
    }

    #[test]
    fn selectivity_helpers() {
        let s = ColumnStatistics::compute("x", &Column::Float64(vec![0.0, 10.0, 5.0])).unwrap();
        assert_eq!(s.equality_selectivity(), Some(1.0 / 3.0));
        assert_eq!(s.range_fraction(0.0, 5.0), Some(0.5));
        assert_eq!(s.range_fraction(f64::NEG_INFINITY, 2.5), Some(0.25));
        assert_eq!(s.range_fraction(8.0, f64::INFINITY), Some(0.2));
        assert_eq!(s.range_fraction(20.0, 30.0), Some(0.0));
        assert_eq!(s.range_fraction(-10.0, 30.0), Some(1.0));

        let constant = ColumnStatistics::compute("c", &Column::Int64(vec![7, 7])).unwrap();
        assert_eq!(constant.range_fraction(0.0, 10.0), Some(1.0));
        assert_eq!(constant.range_fraction(8.0, 10.0), Some(0.0));

        let empty = ColumnStatistics::compute("e", &Column::Float64(vec![])).unwrap();
        assert_eq!(empty.equality_selectivity(), None);
        assert_eq!(empty.range_fraction(0.0, 1.0), None);
    }

    #[test]
    fn range_domain() {
        let c = Column::Float64(vec![10.0, 20.0]);
        let s = ColumnStatistics::compute("age", &c).unwrap();
        assert_eq!(
            s.induced_domain(),
            InducedDomain::Range {
                min: 10.0,
                max: 20.0
            }
        );
    }
}
