//! Streaming, partition-parallel batch pipelines.
//!
//! A [`BatchStream`] is a lazily evaluated sequence of partition-sized
//! [`Batch`]es, each carrying its partition index and (when the source is a
//! partitioned [`Table`]) the per-partition [`TableStatistics`] that Raven's
//! data-induced optimizations (§4.2 of the paper) consume. Every execution
//! layer — the relational executor, the ML runtime, and the session — produces
//! and consumes `BatchStream`s instead of monolithic concatenated batches, in
//! the vectorized-execution lineage of MonetDB/X100:
//!
//! * per-partition operators (filter, project, score) are attached with
//!   [`BatchStream::map`] and fused into a single pass over each partition,
//! * partitions can be dropped without being touched via
//!   [`BatchStream::map`] returning `None` (statistics-driven partition
//!   pruning — the paper's data-induced compute pruning),
//! * the fused per-partition pipeline is driven by the process-wide
//!   work-stealing worker pool ([`crate::pool`]) with a configurable
//!   per-query degree of parallelism ([`BatchStream::collect`]),
//! * [`Batch::concat`] survives only at the final output boundary
//!   ([`BatchStream::concat`]); pipeline breakers (join build, aggregation,
//!   sort/limit) are the only operators that gather the whole stream.

use crate::error::Result;
use crate::pool::parallel_map;
use crate::schema::SchemaRef;
use crate::selection::SelectionVector;
use crate::stats::TableStatistics;
use crate::table::{Batch, Table};
use std::sync::Arc;

/// One element of a [`BatchStream`]: a partition-sized batch plus provenance.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// The partition's rows. Columns always hold **all** source rows; when a
    /// filter has run, the surviving subset is described by `selection`
    /// instead of a copied batch (late materialization).
    pub batch: Batch,
    /// Index of the source partition this batch descends from. Stable across
    /// per-partition operators, so downstream consumers (e.g. per-partition
    /// compiled models) can re-align with partition-indexed side data even
    /// after other partitions were pruned.
    pub partition: usize,
    /// Statistics of the *source* partition (min/max/null/distinct per
    /// column), when the stream originates from a [`Table`]. They describe the
    /// partition as stored, not the batch after filters.
    pub stats: Option<Arc<TableStatistics>>,
    /// Rows of `batch` that survive the filters applied so far; `None` means
    /// all rows. Kernels downstream of a filter consume
    /// `(batch, &selection)`; only the final output boundary
    /// ([`BatchStream::concat`] / [`StreamBatch::compact`]) gathers the
    /// selected rows into compact buffers.
    pub selection: Option<SelectionVector>,
}

impl StreamBatch {
    /// A stream element without source statistics.
    pub fn new(batch: Batch, partition: usize) -> Self {
        StreamBatch {
            batch,
            partition,
            stats: None,
            selection: None,
        }
    }

    /// Rows currently selected (all rows when no filter has run).
    pub fn num_selected(&self) -> usize {
        match &self.selection {
            None => self.batch.num_rows(),
            Some(sel) => sel.len(),
        }
    }

    /// Intersect the element's selection with a mask over the batch's
    /// **source** rows (the zero-copy form of `batch = batch.filter(mask)`).
    pub fn refine_selection(&mut self, mask: &[bool]) -> Result<()> {
        let current = self
            .selection
            .take()
            .unwrap_or_else(|| SelectionVector::all(self.batch.num_rows()));
        let refined = current.refine(mask)?;
        if !refined.is_all() {
            self.selection = Some(refined);
        }
        Ok(())
    }

    /// Apply a filter mask over the batch's **source** rows: refine the
    /// selection in place (zero copy) when `use_selection` is set, otherwise
    /// deep-copy the surviving rows (the materializing baseline). Returns
    /// whether a copy was performed, so callers can count the
    /// materialization — the one refine-vs-materialize branch every filter
    /// site shares.
    pub fn apply_mask(&mut self, mask: &[bool], use_selection: bool) -> Result<bool> {
        if use_selection {
            self.refine_selection(mask)?;
            Ok(false)
        } else if self.selection.is_some() {
            // A selection can precede a materializing filter (e.g. a limit's
            // truncated selection in the copying baseline): compose the mask
            // with it and gather, rather than filtering the batch out from
            // under a now-stale selection.
            self.refine_selection(mask)?;
            if let Some(sel) = self.selection.take() {
                self.batch = self.batch.compact(&sel)?;
            }
            Ok(true)
        } else {
            self.batch = self.batch.filter(mask)?;
            Ok(true)
        }
    }

    /// Materialize the selection: gather the selected rows into a compact
    /// batch and clear the selection. Free when nothing was filtered.
    pub fn compact(mut self) -> Result<StreamBatch> {
        if let Some(sel) = self.selection.take() {
            self.batch = self.batch.compact(&sel)?;
        }
        Ok(self)
    }
}

/// A per-partition operator: maps a stream element to `Some(output)` or prunes
/// the partition entirely with `None`.
pub type StreamOp = Arc<dyn Fn(StreamBatch) -> Result<Option<StreamBatch>> + Send + Sync>;

/// A lazily evaluated stream of partition batches with a fused chain of
/// per-partition operators.
pub struct BatchStream {
    schema: SchemaRef,
    items: Vec<StreamBatch>,
    ops: Vec<StreamOp>,
}

impl std::fmt::Debug for BatchStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStream")
            .field("partitions", &self.items.len())
            .field("ops", &self.ops.len())
            .finish()
    }
}

impl BatchStream {
    /// Stream over the partitions of a table, carrying per-partition
    /// statistics. Cheap: batches share their column buffers with the table.
    pub fn from_table(table: &Table) -> BatchStream {
        let items = table
            .partitions()
            .iter()
            .zip(table.partition_statistics())
            .enumerate()
            .map(|(i, (batch, stats))| StreamBatch {
                batch: batch.clone(),
                partition: i,
                stats: Some(Arc::new(stats.clone())),
                selection: None,
            })
            .collect();
        BatchStream {
            schema: table.schema().clone(),
            items,
            ops: Vec::new(),
        }
    }

    /// Stream over pre-existing batches (no source statistics). All batches
    /// must share `schema`.
    pub fn from_batches(schema: SchemaRef, batches: Vec<Batch>) -> BatchStream {
        let items = batches
            .into_iter()
            .enumerate()
            .map(|(i, batch)| StreamBatch::new(batch, i))
            .collect();
        BatchStream {
            schema,
            items,
            ops: Vec::new(),
        }
    }

    /// Stream over already-built stream elements (used by pipeline breakers to
    /// resume streaming after gathering).
    pub fn from_items(schema: SchemaRef, items: Vec<StreamBatch>) -> BatchStream {
        BatchStream {
            schema,
            items,
            ops: Vec::new(),
        }
    }

    /// Single-partition stream.
    pub fn once(batch: Batch) -> BatchStream {
        let schema = batch.schema().clone();
        BatchStream::from_batches(schema, vec![batch])
    }

    /// The schema every surviving partition batch conforms to. Operators that
    /// change the schema must declare it via [`BatchStream::with_schema`].
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of source partitions still feeding the stream (before pruning
    /// ops run).
    pub fn partition_count(&self) -> usize {
        self.items.len()
    }

    /// Declare the schema the stream's elements have after the attached
    /// operators ran.
    pub fn with_schema(mut self, schema: SchemaRef) -> BatchStream {
        self.schema = schema;
        self
    }

    /// Attach a per-partition operator. Returning `Ok(None)` prunes the
    /// partition; downstream operators never see it. Operators are fused: one
    /// worker runs the whole chain on one partition before moving on.
    pub fn map<F>(mut self, f: F) -> BatchStream
    where
        F: Fn(StreamBatch) -> Result<Option<StreamBatch>> + Send + Sync + 'static,
    {
        self.ops.push(Arc::new(f));
        self
    }

    fn run_chain(ops: &[StreamOp], mut item: StreamBatch) -> Result<Option<StreamBatch>> {
        for op in ops {
            match op(item)? {
                Some(next) => item = next,
                None => return Ok(None),
            }
        }
        Ok(Some(item))
    }

    /// Drive the stream to completion on the shared worker pool with up to
    /// `dop` concurrent executors, each pulling one partition at a time
    /// through the fused operator chain. Pruned partitions are dropped;
    /// surviving elements come back in source order.
    pub fn collect(self, dop: usize) -> Result<Vec<StreamBatch>> {
        let BatchStream { items, ops, .. } = self;
        let outputs = parallel_map(items, dop, |item| Self::run_chain(&ops, item))?;
        Ok(outputs.into_iter().flatten().collect())
    }

    /// Drive the stream and concatenate the surviving partitions into one
    /// batch — the **final output boundary**, the only place a streaming plan
    /// materializes. Per-partition selection vectors are applied in the same
    /// gathering pass, so a filtered pipeline pays exactly one copy here and
    /// none in between. An all-pruned (or empty) stream yields an empty batch
    /// with the declared schema.
    pub fn concat(self, dop: usize) -> Result<Batch> {
        let schema = self.schema.clone();
        let items = self.collect(dop)?;
        if items.is_empty() {
            return Batch::empty(schema);
        }
        if items.len() == 1 && items[0].selection.is_none() {
            return Ok(items.into_iter().next().expect("one item").batch);
        }
        let parts: Vec<(&Batch, Option<&crate::SelectionVector>)> = items
            .iter()
            .map(|i| (&i.batch, i.selection.as_ref()))
            .collect();
        Batch::concat_selected(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ColumnarError;
    use crate::partition::{partition_by_column, PartitionSpec};
    use crate::table::TableBuilder;

    fn partitioned_table() -> Table {
        let t = TableBuilder::new("t")
            .add_i64("id", (0..100).collect())
            .add_f64("x", (0..100).map(|i| i as f64).collect())
            .build()
            .unwrap();
        partition_by_column(&t, &PartitionSpec::RoundRobin { partitions: 8 }).unwrap()
    }

    #[test]
    fn apply_mask_composes_with_existing_selection() {
        let t = TableBuilder::new("t")
            .add_i64("id", (0..8).collect())
            .build()
            .unwrap();
        let batch = t.partitions()[0].clone();
        // keep even ids; mask is over the batch's source rows
        let mask: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        for use_selection in [true, false] {
            // a truncated selection (as a limit installs) precedes the filter
            let mut item = StreamBatch::new(batch.clone(), 0);
            item.selection = Some(SelectionVector::all(8).truncate(5));
            let copied = item.apply_mask(&mask, use_selection).unwrap();
            assert_eq!(copied, !use_selection);
            let compacted = item.compact().unwrap();
            assert!(compacted.selection.is_none());
            let ids = compacted.batch.column_by_name("id").unwrap();
            match ids.as_ref() {
                crate::column::Column::Int64(v) => assert_eq!(v, &vec![0, 2, 4]),
                other => panic!("unexpected column {other:?}"),
            }
        }
    }

    #[test]
    fn from_table_carries_stats_and_indices() {
        let t = partitioned_table();
        let items = BatchStream::from_table(&t).collect(1).unwrap();
        assert_eq!(items.len(), t.partitions().len());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.partition, i);
            assert!(item.stats.is_some());
        }
    }

    #[test]
    fn map_and_prune_preserve_order() {
        let t = partitioned_table();
        for dop in [1, 4] {
            let items = BatchStream::from_table(&t)
                .map(|item| {
                    // prune odd partitions, tag even ones
                    if item.partition % 2 == 1 {
                        Ok(None)
                    } else {
                        Ok(Some(item))
                    }
                })
                .collect(dop)
                .unwrap();
            let parts: Vec<usize> = items.iter().map(|i| i.partition).collect();
            assert_eq!(parts, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn concat_is_final_boundary() {
        let t = partitioned_table();
        let whole = BatchStream::from_table(&t).concat(4).unwrap();
        assert_eq!(whole.num_rows(), 100);
        // all partitions pruned -> empty batch with the right schema
        let empty = BatchStream::from_table(&t)
            .map(|_| Ok(None))
            .concat(2)
            .unwrap();
        assert_eq!(empty.num_rows(), 0);
        assert_eq!(empty.schema().names(), vec!["id", "x"]);
    }

    #[test]
    fn fused_ops_run_in_order() {
        let t = partitioned_table();
        let items = BatchStream::from_table(&t)
            .map(|mut item| {
                item.batch = item.batch.slice(0, 1.min(item.batch.num_rows()))?;
                Ok(Some(item))
            })
            .map(|item| {
                assert!(item.batch.num_rows() <= 1);
                Ok(Some(item))
            })
            .collect(4)
            .unwrap();
        assert_eq!(items.len(), 8);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let t = partitioned_table();
        let err = BatchStream::from_table(&t)
            .map(|item| {
                if item.partition == 3 {
                    Err(ColumnarError::InvalidArgument("boom".into()))
                } else {
                    Ok(Some(item))
                }
            })
            .collect(4);
        assert!(err.is_err());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let items: Vec<usize> = (0..64).collect();
        let serial = parallel_map(items.clone(), 1, |x| Ok(x * 2)).unwrap();
        let parallel = parallel_map(items, 6, |x| Ok(x * 2)).unwrap();
        assert_eq!(serial, parallel);
    }
}
