//! Central, cached accessors for every `RAVEN_*` environment variable.
//!
//! Reading the process environment takes a global lock (`std::env::var`
//! serializes against `set_var`), so hot paths must never read a knob per
//! call. Historically each crate cached its own knob in a local `OnceLock` —
//! and some call sites drifted into re-reading the environment raw (the
//! `cost.rs` / `pool.rs` double-read bugs PR 8 fixed). This module is the
//! single place the environment is consulted: every knob has exactly one
//! accessor, each backed by a `OnceLock` so the variable is read **once per
//! process** and every caller observes the same pin.
//!
//! The repo lint (`cargo run -p xtask -- lint`) enforces the convention
//! offline: any `std::env::var("RAVEN_*")` read in non-test code outside
//! this file fails CI, and every `RAVEN_*` variable referenced anywhere in
//! the sources must have a row in the facade crate's environment-variable
//! table (`src/lib.rs`). Adding a knob therefore means adding an accessor
//! here and documenting it there — the lint makes both mandatory.
//!
//! All of these are **pins for parity baselines** (see ROADMAP "Invariants
//! to preserve"); the corresponding programmatic overrides
//! (`force_scoped`, `force_scorer`, `force_simd`, `force_verify`, ...)
//! remain the dynamic switches for benches and tests.

use std::sync::OnceLock;

/// `true` when `name` is set to exactly `value`. Reads the environment only
/// on the first call per (accessor) call site — callers hold the result in
/// their own `OnceLock`.
fn env_is(name: &str, value: &str) -> bool {
    std::env::var(name).map(|v| v == value) == Ok(true)
}

/// `RAVEN_JOIN_ORDER=asis` pins the as-written join order (disables
/// cost-based join reordering and build-side selection) as the parity
/// baseline. Read once per process.
pub fn join_order_asis() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_JOIN_ORDER", "asis"))
}

/// `RAVEN_SELECTION=materialize` pins the copying `Batch::filter` baseline
/// instead of zero-copy selection-vector execution. Read once per process.
pub fn selection_materialize() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_SELECTION", "materialize"))
}

/// `RAVEN_SCORER=interpreted` pins the interpreted row-walking scorer
/// baseline instead of the flattened SoA kernels. Read once per process.
pub fn scorer_interpreted() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_SCORER", "interpreted"))
}

/// `RAVEN_SIMD=off` pins the portable scalar tree walker instead of the
/// AVX2 tier. Read once per process.
pub fn simd_off() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_SIMD", "off"))
}

/// `RAVEN_POOL=scoped` pins the legacy scoped-thread drive baseline instead
/// of the shared work-stealing pool. Read once per process.
pub fn pool_scoped() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_POOL", "scoped"))
}

/// `RAVEN_POOL_WORKERS=n` sizes the process-wide worker pool (positive
/// integer; anything else falls back to the machine's available
/// parallelism). Read once per process.
pub fn pool_workers() -> Option<usize> {
    static PIN: OnceLock<Option<usize>> = OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("RAVEN_POOL_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|w| *w > 0)
    })
}

/// `RAVEN_FUSION=off` pins the one-drive-per-request serving baseline
/// instead of cross-request SQL fusion (identical concurrent requests
/// sharing a single prepared-plan drive). Read once per process;
/// `ServerConfig::sql_fusion` is the programmatic override for benches and
/// tests.
pub fn fusion_off() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_FUSION", "off"))
}

/// `RAVEN_CACHE_POLICY=lru` pins the plain recency-only cache eviction
/// baseline instead of TinyLFU-style frequency-aware admission. Read once
/// per process; `LruCache::with_policy` is the programmatic override.
pub fn cache_policy_lru() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_CACHE_POLICY", "lru"))
}

/// `RAVEN_MODE_COST=legacy` (or `off` / `0`) pins the pre-cost-model
/// execution-mode heuristic that only looks at the first referenced table.
/// Read once per process.
pub fn mode_cost_legacy() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| {
        matches!(
            std::env::var("RAVEN_MODE_COST").as_deref(),
            Ok("legacy") | Ok("off") | Ok("0")
        )
    })
}

/// `RAVEN_VERIFY=strict` turns on rule-by-rule plan verification and
/// compiled-artifact checking in **release** builds (debug builds always
/// verify). Read once per process; `raven_relational::verify::force_verify`
/// is the dynamic override for tests.
pub fn verify_strict() -> bool {
    static PIN: OnceLock<bool> = OnceLock::new();
    *PIN.get_or_init(|| env_is("RAVEN_VERIFY", "strict"))
}

/// `RAVEN_FAULTS=schedule` installs a seeded deterministic fault schedule in
/// the process-wide failpoint registry (see `crate::failpoint` for the
/// grammar). Unset (the production default) leaves every failpoint compiled
/// down to a single cached-atomic check that injects nothing. Read once per
/// process.
pub fn faults() -> Option<&'static str> {
    static PIN: OnceLock<Option<String>> = OnceLock::new();
    PIN.get_or_init(|| std::env::var("RAVEN_FAULTS").ok())
        .as_deref()
}

/// `RAVEN_RETRY_MAX=n` bounds how many times the serving tier retries a
/// transiently-failed prepare/execute before surfacing the error (0 disables
/// retries). Default 2. Read once per process.
pub fn retry_max() -> u32 {
    static PIN: OnceLock<u32> = OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("RAVEN_RETRY_MAX")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(2)
    })
}

/// `RAVEN_REQUEST_DEADLINE_MS=n` gives every serving request a deadline of
/// `n` milliseconds from enqueue (positive integer); requests still queued
/// past it fail fast with `ServeError::Timeout`. Unset disables deadlines.
/// Read once per process.
pub fn request_deadline_ms() -> Option<u64> {
    static PIN: OnceLock<Option<u64>> = OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("RAVEN_REQUEST_DEADLINE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|ms| *ms > 0)
    })
}

/// `RAVEN_DATA_DIR=path` — the durable-catalog data directory fallback when
/// no explicit `data_dir` is configured. Deliberately **not** cached: it is
/// only consulted on the cold `open_durable` path (process startup), and
/// harnesses point successive opens at fresh directories.
pub fn data_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("RAVEN_DATA_DIR").map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each accessor is read-once: the cached value must stay consistent
    /// with the live environment across calls (the environment does not
    /// change mid-test-process).
    #[test]
    fn accessors_are_stable_and_match_environment() {
        assert_eq!(
            join_order_asis(),
            std::env::var("RAVEN_JOIN_ORDER").map(|v| v == "asis") == Ok(true)
        );
        assert_eq!(join_order_asis(), join_order_asis());
        assert_eq!(
            selection_materialize(),
            std::env::var("RAVEN_SELECTION").map(|v| v == "materialize") == Ok(true)
        );
        assert_eq!(
            scorer_interpreted(),
            std::env::var("RAVEN_SCORER").map(|v| v == "interpreted") == Ok(true)
        );
        assert_eq!(
            simd_off(),
            std::env::var("RAVEN_SIMD").map(|v| v == "off") == Ok(true)
        );
        assert_eq!(
            pool_scoped(),
            std::env::var("RAVEN_POOL").map(|v| v == "scoped") == Ok(true)
        );
        assert_eq!(
            fusion_off(),
            std::env::var("RAVEN_FUSION").map(|v| v == "off") == Ok(true)
        );
        assert_eq!(
            cache_policy_lru(),
            std::env::var("RAVEN_CACHE_POLICY").map(|v| v == "lru") == Ok(true)
        );
        assert_eq!(
            verify_strict(),
            std::env::var("RAVEN_VERIFY").map(|v| v == "strict") == Ok(true)
        );
        assert_eq!(
            pool_workers(),
            std::env::var("RAVEN_POOL_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|w| *w > 0)
        );
        assert_eq!(faults(), std::env::var("RAVEN_FAULTS").ok().as_deref());
        assert_eq!(
            retry_max(),
            std::env::var("RAVEN_RETRY_MAX")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(2)
        );
        assert_eq!(
            request_deadline_ms(),
            std::env::var("RAVEN_REQUEST_DEADLINE_MS")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .filter(|ms| *ms > 0)
        );
        // data_dir is uncached by design (cold path only)
        assert_eq!(
            data_dir(),
            std::env::var_os("RAVEN_DATA_DIR").map(std::path::PathBuf::from)
        );
    }
}
