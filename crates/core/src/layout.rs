//! Feature layout analysis.
//!
//! Raven's cross-optimizations need to know, for each *pipeline input* (a raw
//! data column), which *feature indices* of the model's input vector it ends
//! up in and through which featurizer it travels. This module derives that
//! mapping from the pipeline graph: it walks the producers of the model's
//! input value (Concat blocks, Scalers, OneHotEncoders, raw pass-throughs)
//! and records, per input, the feature positions and the transformation
//! needed to push predicate constants through (paper §4.1, Step 2).

use crate::error::{RavenError, Result};
use raven_ml::{Operator, Pipeline};
use std::collections::BTreeMap;

/// How a pipeline input maps to feature positions of the model input vector.
#[derive(Debug, Clone, PartialEq)]
pub enum InputMapping {
    /// The input feeds one numeric feature through an affine scaler:
    /// `feature = (input - offset) * scale`.
    Affine {
        feature: usize,
        offset: f64,
        scale: f64,
    },
    /// The input feeds one numeric feature unchanged.
    Identity { feature: usize },
    /// The input is one-hot encoded: feature `i` is 1 iff the input equals
    /// `categories[i]`.
    OneHot {
        features: Vec<usize>,
        categories: Vec<String>,
    },
    /// The input reaches the model through operators we do not analyze
    /// (normalizers, binarizers, ...); predicate-based pruning skips it.
    Opaque { features: Vec<usize> },
}

impl InputMapping {
    /// All feature indices this input feeds.
    pub fn feature_indices(&self) -> Vec<usize> {
        match self {
            InputMapping::Affine { feature, .. } | InputMapping::Identity { feature } => {
                vec![*feature]
            }
            InputMapping::OneHot { features, .. } | InputMapping::Opaque { features } => {
                features.clone()
            }
        }
    }
}

/// The complete feature layout of a pipeline.
#[derive(Debug, Clone, Default)]
pub struct FeatureLayout {
    /// Per pipeline-input mapping.
    pub inputs: BTreeMap<String, InputMapping>,
    /// Total feature-vector width seen by the model.
    pub width: usize,
}

impl FeatureLayout {
    /// Analyze a pipeline. Returns an error when the pipeline has no model
    /// node; unknown sub-graph shapes yield [`InputMapping::Opaque`] entries.
    pub fn analyze(pipeline: &Pipeline) -> Result<FeatureLayout> {
        let model = pipeline.model_node().ok_or_else(|| {
            RavenError::RuleNotApplicable("pipeline has no model operator".into())
        })?;
        let widths = pipeline.value_widths();
        let mut layout = FeatureLayout::default();
        let mut offset = 0usize;
        for value in &model.inputs {
            let w = widths.get(value).copied().unwrap_or(0);
            analyze_value(pipeline, value, offset, w, &mut layout);
            offset += w;
        }
        layout.width = offset;
        Ok(layout)
    }

    /// The mapping for one input, if known.
    pub fn input(&self, name: &str) -> Option<&InputMapping> {
        self.inputs.get(name)
    }

    /// Inputs that feed at least one of the given feature indices.
    pub fn inputs_feeding(&self, features: &[usize]) -> Vec<&str> {
        self.inputs
            .iter()
            .filter(|(_, m)| m.feature_indices().iter().any(|f| features.contains(f)))
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

fn analyze_value(
    pipeline: &Pipeline,
    value: &str,
    offset: usize,
    width: usize,
    layout: &mut FeatureLayout,
) {
    // Raw pipeline input used directly as a feature column.
    if pipeline.input(value).is_some() {
        layout.inputs.insert(
            value.to_string(),
            InputMapping::Identity { feature: offset },
        );
        return;
    }
    let Some(node) = pipeline.producer(value) else {
        return;
    };
    let widths = pipeline.value_widths();
    match &node.op {
        Operator::Concat => {
            let mut child_offset = offset;
            for input in &node.inputs {
                let w = widths.get(input).copied().unwrap_or(0);
                analyze_value(pipeline, input, child_offset, w, layout);
                child_offset += w;
            }
        }
        Operator::Scaler(scaler) => {
            // Scaler inputs are individual numeric columns (possibly several),
            // each contributing one feature, in order.
            let mut col = 0usize;
            for input in &node.inputs {
                let w = widths.get(input).copied().unwrap_or(1);
                if pipeline.input(input).is_some() && w == 1 && col < scaler.width() {
                    layout.inputs.insert(
                        input.clone(),
                        InputMapping::Affine {
                            feature: offset + col,
                            offset: scaler.offsets[col],
                            scale: scaler.scales[col],
                        },
                    );
                } else {
                    mark_opaque(pipeline, input, offset + col, w, layout);
                }
                col += w;
            }
        }
        Operator::OneHotEncoder(enc) => {
            let features: Vec<usize> = (offset..offset + enc.width()).collect();
            if let Some(input) = node.inputs.first() {
                if pipeline.input(input).is_some() {
                    layout.inputs.insert(
                        input.clone(),
                        InputMapping::OneHot {
                            features,
                            categories: enc.categories.clone(),
                        },
                    );
                } else {
                    mark_opaque(pipeline, input, offset, enc.width(), layout);
                }
            }
        }
        Operator::Constant(_) => {
            // constants have no corresponding data input
        }
        _ => {
            // Imputer, Binarizer, Normalizer, FeatureExtractor, nested models:
            // mark every raw input reachable from here as opaque over this block.
            for input in &node.inputs {
                let w = widths.get(input).copied().unwrap_or(width);
                mark_opaque(pipeline, input, offset, w.max(1), layout);
            }
        }
    }
}

fn mark_opaque(
    pipeline: &Pipeline,
    value: &str,
    offset: usize,
    width: usize,
    layout: &mut FeatureLayout,
) {
    if pipeline.input(value).is_some() {
        layout.inputs.insert(
            value.to_string(),
            InputMapping::Opaque {
                features: (offset..offset + width).collect(),
            },
        );
        return;
    }
    if let Some(node) = pipeline.producer(value) {
        for input in &node.inputs {
            mark_opaque(pipeline, input, offset, width, layout);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::{
        InputKind, Norm, Normalizer, OneHotEncoder, Operator, PipelineInput, PipelineNode, Scaler,
        Tree, TreeEnsemble,
    };

    fn pipeline() -> Pipeline {
        Pipeline::new(
            "m",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bpm".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![50.0, 70.0],
                        scales: vec![0.1, 0.2],
                    }),
                    inputs: vec!["age".into(), "bpm".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "ohe".into(),
                    op: Operator::OneHotEncoder(OneHotEncoder {
                        categories: vec!["0".into(), "1".into()],
                    }),
                    inputs: vec!["asthma".into()],
                    output: "enc".into(),
                },
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["scaled".into(), "enc".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(1.0), 4)),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    #[test]
    fn standard_layout() {
        let layout = FeatureLayout::analyze(&pipeline()).unwrap();
        assert_eq!(layout.width, 4);
        assert_eq!(
            layout.input("age"),
            Some(&InputMapping::Affine {
                feature: 0,
                offset: 50.0,
                scale: 0.1
            })
        );
        assert_eq!(
            layout.input("bpm"),
            Some(&InputMapping::Affine {
                feature: 1,
                offset: 70.0,
                scale: 0.2
            })
        );
        assert_eq!(
            layout.input("asthma"),
            Some(&InputMapping::OneHot {
                features: vec![2, 3],
                categories: vec!["0".into(), "1".into()]
            })
        );
        assert_eq!(layout.inputs_feeding(&[0]), vec!["age"]);
        assert_eq!(layout.inputs_feeding(&[2]), vec!["asthma"]);
    }

    #[test]
    fn opaque_for_unanalyzed_operators() {
        let mut p = pipeline();
        // insert a normalizer between concat and model
        p.nodes.insert(
            3,
            PipelineNode {
                name: "norm".into(),
                op: Operator::Normalizer(Normalizer { norm: Norm::L2 }),
                inputs: vec!["features".into()],
                output: "normed".into(),
            },
        );
        p.nodes[4].inputs = vec!["normed".into()];
        p.validate().unwrap();
        let layout = FeatureLayout::analyze(&p).unwrap();
        assert!(matches!(
            layout.input("age"),
            Some(InputMapping::Opaque { .. })
        ));
    }

    #[test]
    fn direct_input_is_identity() {
        let p = Pipeline::new(
            "m",
            vec![PipelineInput {
                name: "x".into(),
                kind: InputKind::Numeric,
            }],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(0.0), 1)),
                inputs: vec!["x".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap();
        let layout = FeatureLayout::analyze(&p).unwrap();
        assert_eq!(
            layout.input("x"),
            Some(&InputMapping::Identity { feature: 0 })
        );
        assert_eq!(layout.width, 1);
    }
}
