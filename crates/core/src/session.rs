//! The end-to-end Raven session: parse → unified IR → Raven optimizer
//! (logical cross-optimizations, data-induced optimizations, runtime
//! selection) → execution on the data engine / ML runtime / DNN runtime
//! (paper §6, Fig. 2 and Fig. 5).

use crate::cross_opt::{
    apply_cross_optimizations, model_projection_pushdown, predicate_based_model_pruning,
    CrossOptReport,
};
use crate::data_induced::{apply_global_data_induced, compile_partition_models, DataInducedReport};
use crate::error::{RavenError, Result};
use crate::mltodnn::apply_ml_to_dnn;
use crate::mltosql::pipeline_to_sql;
use crate::stats::PipelineStats;
use crate::strategy::{OptimizationStrategy, TransformChoice};
use raven_columnar::{Batch, Column, DataType, Field, Table};
use raven_ir::{parse_prediction_query, ModelRegistry, UnifiedPlan};
use raven_ml::{bind_batch, MlRuntime, Pipeline, RuntimeConfig};
use raven_relational::{
    col, evaluate, evaluate_predicate, Catalog, ExecutionContext, Executor, Expr, LogicalPlan,
    Optimizer,
};
use raven_tensor::{Device, Strategy};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the logical-to-physical transformation is selected.
#[derive(Debug, Clone)]
pub enum RuntimePolicy {
    /// Never transform: cross-optimized pipeline stays on the ML runtime.
    NoTransform,
    /// Always apply the given transformation (fall back to the ML runtime if
    /// the rule is not applicable).
    Force(TransformChoice),
    /// The built-in heuristic rule (the shape of the paper's example rule in
    /// §5.2: big models → MLtoDNN, small models with few inputs → MLtoSQL).
    Heuristic,
    /// A learned, data-driven strategy (§5.2).
    Learned(Arc<dyn OptimizationStrategy + Send + Sync>),
}

/// How the ML part of the query is executed when it stays on the ML runtime;
/// used to model the systems Raven is compared against in §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Vectorized UDF-style batch scoring (Raven / Spark+ONNX Runtime).
    Vectorized,
    /// Row-at-a-time interpreted scoring (SparkML-style baseline).
    RowInterpreted,
    /// Vectorized scoring but with every featurization step materialized to
    /// columnar storage between operators (MADlib-style baseline).
    Materialized,
}

/// Session / optimizer configuration.
#[derive(Debug, Clone)]
pub struct RavenConfig {
    /// Apply predicate-based model pruning (§4.1).
    pub enable_predicate_pruning: bool,
    /// Apply model-projection pushdown (§4.1).
    pub enable_projection_pushdown: bool,
    /// Apply data-induced optimizations (§4.2).
    pub enable_data_induced: bool,
    /// Compile per-partition models when the scanned table is partitioned.
    pub enable_partition_models: bool,
    /// Logical-to-physical policy (§5).
    pub runtime_policy: RuntimePolicy,
    /// Degree of parallelism of the data engine.
    pub degree_of_parallelism: usize,
    /// ML runtime configuration (UDF overheads, batch size).
    pub ml_runtime: RuntimeConfig,
    /// Device used when MLtoDNN is chosen.
    pub device: Device,
    /// Hummingbird compilation strategy for MLtoDNN.
    pub dnn_strategy: Strategy,
    /// Baseline execution mode for the ML-runtime path.
    pub baseline: BaselineMode,
}

impl Default for RavenConfig {
    fn default() -> Self {
        RavenConfig {
            enable_predicate_pruning: true,
            enable_projection_pushdown: true,
            enable_data_induced: true,
            enable_partition_models: false,
            runtime_policy: RuntimePolicy::Heuristic,
            degree_of_parallelism: 1,
            ml_runtime: RuntimeConfig::default(),
            device: Device::Cpu,
            dnn_strategy: Strategy::Gemm,
            baseline: BaselineMode::Vectorized,
        }
    }
}

impl RavenConfig {
    /// A configuration with every Raven optimization disabled — the
    /// "Raven (no-opt)" baseline of §7.
    pub fn no_opt() -> Self {
        RavenConfig {
            enable_predicate_pruning: false,
            enable_projection_pushdown: false,
            enable_data_induced: false,
            enable_partition_models: false,
            runtime_policy: RuntimePolicy::NoTransform,
            ..Default::default()
        }
    }
}

/// What the optimizer decided and how execution went.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Cross-optimization outcome.
    pub cross: CrossOptReport,
    /// Data-induced optimization outcome.
    pub data_induced: DataInducedReport,
    /// The chosen logical-to-physical transformation.
    pub transform: TransformChoice,
    /// Whether the chosen transformation had to fall back to the ML runtime.
    pub transform_fallback: bool,
    /// Time spent in the Raven optimizer itself.
    pub optimization_time: Duration,
    /// Time spent in the data engine.
    pub data_time: Duration,
    /// Time spent in the ML / DNN runtime (zero for MLtoSQL).
    pub ml_time: Duration,
    /// End-to-end time (optimization excluded), using the device-reported
    /// time for simulated GPUs.
    pub total_time: Duration,
    /// Number of result rows.
    pub output_rows: usize,
    /// Whether `ml_time` comes from a simulated device model.
    pub ml_time_modeled: bool,
}

/// The result of executing a prediction query.
#[derive(Debug, Clone)]
pub struct PredictionOutput {
    /// The result rows.
    pub batch: Batch,
    /// The optimizer / execution report.
    pub report: ExecutionReport,
}

/// An end-to-end Raven session (the `RavenSession` of Fig. 5).
#[derive(Debug, Default)]
pub struct RavenSession {
    catalog: Catalog,
    registry: ModelRegistry,
    config: RavenConfig,
}

impl RavenSession {
    /// Create a session with the default configuration.
    pub fn new() -> Self {
        RavenSession {
            catalog: Catalog::new(),
            registry: ModelRegistry::new(),
            config: RavenConfig::default(),
        }
    }

    /// Create a session with an explicit configuration.
    pub fn with_config(config: RavenConfig) -> Self {
        RavenSession {
            catalog: Catalog::new(),
            registry: ModelRegistry::new(),
            config,
        }
    }

    /// The session configuration (mutable, so harnesses can toggle rules).
    pub fn config_mut(&mut self) -> &mut RavenConfig {
        &mut self.config
    }

    /// The session configuration.
    pub fn config(&self) -> &RavenConfig {
        &self.config
    }

    /// Register a table.
    pub fn register_table(&mut self, table: Table) {
        self.catalog.register(table);
    }

    /// Register a trained pipeline.
    pub fn register_model(&mut self, pipeline: Pipeline) {
        self.registry.register(pipeline);
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Parse, optimize, and execute a prediction query written with the
    /// `PREDICT` syntax.
    pub fn sql(&self, query: &str) -> Result<PredictionOutput> {
        let plan = parse_prediction_query(query, &self.registry, &self.catalog)?;
        self.execute(&plan)
    }

    /// Optimize a unified plan without executing it (returns the optimized
    /// plan, the chosen transform, and the reports).
    pub fn optimize(
        &self,
        plan: &UnifiedPlan,
    ) -> Result<(UnifiedPlan, TransformChoice, CrossOptReport, DataInducedReport)> {
        let mut plan = plan.clone();
        let mut cross = CrossOptReport::default();
        if self.config.enable_predicate_pruning && self.config.enable_projection_pushdown {
            cross = apply_cross_optimizations(&mut plan)?;
        } else if self.config.enable_predicate_pruning {
            cross.predicate_pruning_applied = predicate_based_model_pruning(&mut plan)?;
        } else if self.config.enable_projection_pushdown {
            cross.removed_inputs = model_projection_pushdown(&mut plan)?;
            cross.projection_pushdown_applied = !cross.removed_inputs.is_empty();
        }
        let mut data_induced = DataInducedReport::default();
        if self.config.enable_data_induced {
            let report = apply_global_data_induced(&mut plan, &self.catalog)?;
            // columns pruned by data-induced statistics also leave the scan
            data_induced = report;
        }
        let transform = self.choose_transform(&plan);
        Ok((plan, transform, cross, data_induced))
    }

    /// Optimize and execute a unified plan.
    pub fn execute(&self, plan: &UnifiedPlan) -> Result<PredictionOutput> {
        let opt_start = Instant::now();
        let (optimized, transform, cross, mut data_induced) = self.optimize(plan)?;
        let optimization_time = opt_start.elapsed();

        let exec_start = Instant::now();
        let (batch, data_time, ml_time, ml_time_modeled, fallback, partition_report) =
            self.execute_optimized(&optimized, transform)?;
        if let Some(p) = partition_report {
            data_induced.partition_models = p.partition_models;
            data_induced.avg_pruned_columns_per_partition = p.avg_pruned_columns_per_partition;
        }
        let measured_total = exec_start.elapsed();
        // When the ML time is modeled (simulated GPU) the end-to-end total is
        // data time + modeled ML time rather than the measured wall clock.
        let total_time = if ml_time_modeled {
            data_time + ml_time
        } else {
            measured_total
        };
        let report = ExecutionReport {
            cross,
            data_induced,
            transform: if fallback { TransformChoice::None } else { transform },
            transform_fallback: fallback,
            optimization_time,
            data_time,
            ml_time,
            total_time,
            output_rows: batch.num_rows(),
            ml_time_modeled,
        };
        Ok(PredictionOutput { batch, report })
    }

    // ---------------------------------------------------------------------
    // runtime selection
    // ---------------------------------------------------------------------

    fn choose_transform(&self, plan: &UnifiedPlan) -> TransformChoice {
        match &self.config.runtime_policy {
            RuntimePolicy::NoTransform => TransformChoice::None,
            RuntimePolicy::Force(c) => *c,
            RuntimePolicy::Learned(strategy) => {
                strategy.choose(&PipelineStats::from_pipeline(&plan.pipeline))
            }
            RuntimePolicy::Heuristic => {
                let stats = PipelineStats::from_pipeline(&plan.pipeline);
                let gpu_available = self.config.device.is_simulated();
                // The §5.2 example rule, adapted to this engine's calibration:
                // very large ensembles benefit from the DNN runtime (on GPU),
                // small/medium models with manageable generated SQL go to SQL,
                // everything else stays on the ML runtime.
                if gpu_available && stats.n_tree_nodes > 20_000.0 {
                    TransformChoice::MlToDnn
                } else if stats.is_linear_model == 1.0 || stats.sql_expression_nodes <= 4_000.0 {
                    TransformChoice::MlToSql
                } else {
                    TransformChoice::None
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // execution paths
    // ---------------------------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn execute_optimized(
        &self,
        plan: &UnifiedPlan,
        transform: TransformChoice,
    ) -> Result<(Batch, Duration, Duration, bool, bool, Option<DataInducedReport>)> {
        match transform {
            TransformChoice::MlToSql => match self.execute_ml_to_sql(plan) {
                Ok((batch, data_time)) => {
                    Ok((batch, data_time, Duration::ZERO, false, false, None))
                }
                Err(RavenError::RuleNotApplicable(_)) => {
                    let (b, d, m, pr) = self.execute_ml_runtime(plan)?;
                    Ok((b, d, m, false, true, pr))
                }
                Err(e) => Err(e),
            },
            TransformChoice::MlToDnn => match self.execute_ml_to_dnn(plan) {
                Ok((batch, data_time, ml_time, modeled)) => {
                    Ok((batch, data_time, ml_time, modeled, false, None))
                }
                Err(RavenError::RuleNotApplicable(_)) => {
                    let (b, d, m, pr) = self.execute_ml_runtime(plan)?;
                    Ok((b, d, m, false, true, pr))
                }
                Err(e) => Err(e),
            },
            TransformChoice::None => {
                let (b, d, m, pr) = self.execute_ml_runtime(plan)?;
                Ok((b, d, m, false, false, pr))
            }
        }
    }

    /// The relational plan computing the model's input data: the query's data
    /// part with input-side predicates applied and projected to the columns
    /// the (optimized) pipeline and the rest of the query still need.
    fn data_side_plan(&self, plan: &UnifiedPlan) -> LogicalPlan {
        let mut data = plan.data.clone();
        let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
        if !input_preds.is_empty() {
            data = data.filter(Expr::conjunction(input_preds));
        }
        let mut needed: Vec<String> = plan
            .pipeline
            .input_names()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        for c in plan.externally_required_columns() {
            if !needed.contains(&c) {
                needed.push(c);
            }
        }
        if !needed.is_empty() {
            data = data.project(needed.iter().map(col).collect());
        }
        data
    }

    fn run_relational(&self, plan: &LogicalPlan) -> Result<Batch> {
        let optimized = Optimizer::new().optimize(plan, &self.catalog)?;
        let exec = Executor::new();
        let ctx = ExecutionContext::with_dop(self.config.degree_of_parallelism);
        Ok(exec.execute(&optimized, &self.catalog, &ctx)?)
    }

    /// MLtoSQL path: the entire query (featurization, model, predicates,
    /// projection, aggregate) becomes one relational plan.
    fn execute_ml_to_sql(&self, plan: &UnifiedPlan) -> Result<(Batch, Duration)> {
        let score_expr = pipeline_to_sql(&plan.pipeline)?;
        let start = Instant::now();
        let mut data = plan.data.clone();
        let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
        if !input_preds.is_empty() {
            data = data.filter(Expr::conjunction(input_preds));
        }
        // project the prediction plus every column the rest of the query needs
        let mut exprs: Vec<Expr> = plan
            .externally_required_columns()
            .into_iter()
            .map(|c| col(&c))
            .collect();
        exprs.push(score_expr.alias(&plan.prediction_column));
        data = data.project(exprs);
        let output_preds: Vec<Expr> = plan.output_predicates().into_iter().cloned().collect();
        if !output_preds.is_empty() {
            data = data.filter(Expr::conjunction(output_preds));
        }
        if !plan.projection.is_empty() {
            data = data.project(plan.projection.clone());
        }
        if let Some((group_by, aggs)) = &plan.aggregate {
            data = data.aggregate(group_by.clone(), aggs.clone());
        }
        let batch = self.run_relational(&data)?;
        Ok((batch, start.elapsed()))
    }

    /// ML-runtime path (and the SparkML / MADlib-style baselines): run the
    /// data part on the data engine, score with the ML runtime, then apply
    /// output predicates / projection / aggregation.
    fn execute_ml_runtime(
        &self,
        plan: &UnifiedPlan,
    ) -> Result<(Batch, Duration, Duration, Option<DataInducedReport>)> {
        // per-partition models (data-induced §4.2) only apply to bare scans
        let partition_models = if self.config.enable_partition_models {
            let (models, report) = compile_partition_models(plan, &self.catalog)?;
            if models.len() > 1 {
                Some((models, report))
            } else {
                None
            }
        } else {
            None
        };

        let runtime = MlRuntime::with_config(self.config.ml_runtime.clone());
        let mut data_time = Duration::ZERO;
        let mut ml_time = Duration::ZERO;

        let (mut scored, partition_report) = match partition_models {
            Some((models, report)) if matches!(plan.data, LogicalPlan::Scan { .. }) => {
                // execute partition by partition with its specialized model
                let table_name = match &plan.data {
                    LogicalPlan::Scan { table, .. } => table.clone(),
                    _ => unreachable!(),
                };
                let table = self.catalog.table(&table_name)?;
                let input_preds: Vec<Expr> =
                    plan.input_predicates().into_iter().cloned().collect();
                let mut parts = Vec::new();
                for (batch, pipeline) in table.partitions().iter().zip(models.iter()) {
                    let d0 = Instant::now();
                    let mut batch = batch.clone();
                    for p in &input_preds {
                        let mask = evaluate_predicate(p, &batch)?;
                        batch = batch.filter(&mask)?;
                    }
                    data_time += d0.elapsed();
                    let m0 = Instant::now();
                    let scores = self.score_batch(&runtime, pipeline, &batch)?;
                    ml_time += m0.elapsed();
                    parts.push(attach_scores(&batch, &plan.prediction_column, scores)?);
                }
                (Batch::concat(&parts)?, Some(report))
            }
            _ => {
                let d0 = Instant::now();
                let data_plan = self.data_side_plan(plan);
                let batch = self.run_relational(&data_plan)?;
                data_time += d0.elapsed();
                let m0 = Instant::now();
                let scores = self.score_batch(&runtime, &plan.pipeline, &batch)?;
                ml_time += m0.elapsed();
                (attach_scores(&batch, &plan.prediction_column, scores)?, None)
            }
        };

        let d1 = Instant::now();
        scored = self.post_process(plan, scored)?;
        data_time += d1.elapsed();
        Ok((scored, data_time, ml_time, partition_report))
    }

    fn score_batch(
        &self,
        runtime: &MlRuntime,
        pipeline: &Pipeline,
        batch: &Batch,
    ) -> Result<Vec<f64>> {
        match self.config.baseline {
            BaselineMode::Vectorized => Ok(runtime.run_batch(pipeline, batch)?),
            BaselineMode::RowInterpreted => Ok(runtime.run_batch_row_interpreted(pipeline, batch)?),
            BaselineMode::Materialized => {
                // MADlib-style: evaluate the pipeline one operator at a time,
                // materializing every intermediate result into fresh columnar
                // buffers (two extra copies per operator), single threaded.
                let mut inputs = bind_batch(pipeline, batch)?;
                let mut partial = Pipeline {
                    name: pipeline.name.clone(),
                    inputs: pipeline.inputs.clone(),
                    nodes: vec![],
                    output: pipeline.output.clone(),
                };
                for node in &pipeline.nodes {
                    partial.nodes.push(node.clone());
                    partial.output = node.output.clone();
                    let out = runtime.run(&partial, &inputs)?;
                    // materialize: round-trip the value through owned buffers
                    let materialized = match out {
                        raven_ml::FrameValue::Numeric(m) => {
                            let copied = raven_ml::Matrix::new(
                                m.rows(),
                                m.cols(),
                                m.data().to_vec(),
                            )
                            .map_err(|e| RavenError::Ml(e.to_string()))?;
                            raven_ml::FrameValue::Numeric(copied)
                        }
                        other => other,
                    };
                    // expose the materialized value as a new pipeline input so
                    // later operators read from "storage"
                    inputs.insert(node.output.clone(), materialized);
                    partial.inputs.push(raven_ml::PipelineInput {
                        name: node.output.clone(),
                        kind: raven_ml::InputKind::Numeric,
                    });
                    partial.nodes.clear();
                }
                let out = inputs
                    .remove(&pipeline.output)
                    .ok_or_else(|| RavenError::Ml("materialized output missing".into()))?;
                let m = out.as_numeric().map_err(|e| RavenError::Ml(e.to_string()))?;
                Ok(m.column(0))
            }
        }
    }

    /// MLtoDNN path: data engine → featurizers on the ML runtime → compiled
    /// tensor model on the configured device.
    fn execute_ml_to_dnn(
        &self,
        plan: &UnifiedPlan,
    ) -> Result<(Batch, Duration, Duration, bool)> {
        let dnn = apply_ml_to_dnn(
            &plan.pipeline,
            self.config.dnn_strategy,
            self.config.device.clone(),
        )?;
        let runtime = MlRuntime::with_config(self.config.ml_runtime.clone());

        let d0 = Instant::now();
        let data_plan = self.data_side_plan(plan);
        let batch = self.run_relational(&data_plan)?;
        let mut data_time = d0.elapsed();

        let m0 = Instant::now();
        let inputs = bind_batch(&dnn.featurizer, &batch)?;
        let features = runtime.run(&dnn.featurizer, &inputs)?;
        let features = features
            .as_numeric()
            .map_err(|e| RavenError::Ml(e.to_string()))?;
        let featurize_time = m0.elapsed();
        let run = dnn.model.run(features)?;
        let modeled = dnn.model.device.is_simulated();
        let ml_time = featurize_time + run.reported;

        let d1 = Instant::now();
        let mut scored = attach_scores(&batch, &plan.prediction_column, run.scores)?;
        scored = self.post_process(plan, scored)?;
        data_time += d1.elapsed();
        Ok((scored, data_time, ml_time, modeled))
    }

    /// Apply output-side predicates, the final projection, and the aggregate
    /// to a scored batch.
    fn post_process(&self, plan: &UnifiedPlan, mut batch: Batch) -> Result<Batch> {
        for p in plan.output_predicates() {
            let mask = evaluate_predicate(p, &batch)?;
            batch = batch.filter(&mask)?;
        }
        if !plan.projection.is_empty() {
            let mut columns = Vec::with_capacity(plan.projection.len());
            let mut fields = Vec::with_capacity(plan.projection.len());
            for e in &plan.projection {
                let c = evaluate(e, &batch)?;
                fields.push(Field::new(e.output_name(), c.data_type()));
                columns.push(c);
            }
            batch = Batch::new(
                Arc::new(raven_columnar::Schema::new(fields)?),
                columns,
            )?;
        }
        if let Some((group_by, aggs)) = &plan.aggregate {
            // reuse the relational executor by registering the scored batch
            let mut catalog = Catalog::new();
            catalog.register(Table::from_batch("__scored", batch.clone())?);
            let agg_plan = LogicalPlan::scan("__scored").aggregate(group_by.clone(), aggs.clone());
            let exec = Executor::new();
            batch = exec.execute(&agg_plan, &catalog, &ExecutionContext::default())?;
        }
        Ok(batch)
    }
}

fn attach_scores(batch: &Batch, name: &str, scores: Vec<f64>) -> Result<Batch> {
    Ok(batch.with_column(
        Field::new(name, DataType::Float64),
        Arc::new(Column::Float64(scores)),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_columnar::TableBuilder;
    use raven_ml::{train_pipeline, ModelType, PipelineSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Build a small hospital-like scenario: one table, a trained DT pipeline,
    /// and the running-example style query.
    fn session(model: ModelType) -> (RavenSession, String) {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400;
        let age: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..90.0)).collect();
        let bmi: Vec<f64> = (0..n).map(|_| rng.gen_range(15.0..45.0)).collect();
        let asthma: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let rcount: Vec<i64> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let label: Vec<f64> = (0..n)
            .map(|i| {
                let risk = 0.04 * (age[i] - 55.0) + 0.08 * (bmi[i] - 30.0) + asthma[i] as f64;
                if risk > 0.3 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let table = TableBuilder::new("patients")
            .add_i64("id", (0..n as i64).collect())
            .add_f64("age", age)
            .add_f64("bmi", bmi)
            .add_i64("asthma", asthma)
            .add_i64("rcount", rcount)
            .build()
            .unwrap();
        let train_batch = table.to_batch().unwrap().with_column(
            Field::new("label", DataType::Float64),
            Arc::new(Column::Float64(label)),
        )
        .unwrap();
        let pipeline = train_pipeline(
            &train_batch,
            &PipelineSpec {
                name: "risk_model".into(),
                numeric_inputs: vec!["age".into(), "bmi".into()],
                categorical_inputs: vec!["asthma".into()],
                label: "label".into(),
                model,
                seed: 4,
            },
        )
        .unwrap();
        let mut session = RavenSession::new();
        session.register_table(table);
        session.register_model(pipeline);
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.asthma = 1 AND p.risk >= 0.5"
            .to_string();
        (session, query)
    }

    fn ids(batch: &Batch) -> Vec<i64> {
        let mut v = batch
            .column_by_name("id")
            .unwrap()
            .as_i64()
            .unwrap()
            .to_vec();
        v.sort();
        v
    }

    #[test]
    fn optimized_and_unoptimized_results_agree() {
        for model in [
            ModelType::DecisionTree { max_depth: 6 },
            ModelType::LogisticRegression { l1_alpha: 0.01 },
            ModelType::GradientBoosting {
                n_estimators: 8,
                max_depth: 3,
                learning_rate: 0.2,
            },
        ] {
            let (mut session, query) = session(model);
            let optimized = session.sql(&query).unwrap();
            *session.config_mut() = RavenConfig::no_opt();
            let baseline = session.sql(&query).unwrap();
            assert_eq!(
                ids(&optimized.batch),
                ids(&baseline.batch),
                "result mismatch between optimized and unoptimized execution"
            );
            assert!(optimized.report.output_rows > 0);
        }
    }

    #[test]
    fn transforms_are_selected_and_reported() {
        let (mut session, query) = session(ModelType::DecisionTree { max_depth: 5 });
        // heuristic should choose MLtoSQL for a small decision tree
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::MlToSql);
        assert!(out.report.ml_time.is_zero());

        // force the ML runtime
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::None);
        assert!(out.report.cross.projection_pushdown_applied || out.report.cross.predicate_pruning_applied);

        // force MLtoDNN on the simulated GPU
        session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::MlToDnn);
        session.config_mut().device = Device::SimulatedGpu(raven_tensor::GpuProfile::tesla_k80());
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::MlToDnn);
        assert!(out.report.ml_time_modeled);
    }

    #[test]
    fn all_execution_paths_agree() {
        let (mut session, query) = session(ModelType::GradientBoosting {
            n_estimators: 6,
            max_depth: 3,
            learning_rate: 0.2,
        });
        let mut results = Vec::new();
        for choice in [
            TransformChoice::None,
            TransformChoice::MlToSql,
            TransformChoice::MlToDnn,
        ] {
            session.config_mut().runtime_policy = RuntimePolicy::Force(choice);
            let out = session.sql(&query).unwrap();
            results.push(ids(&out.batch));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn baselines_agree_with_vectorized() {
        let (mut session, query) = session(ModelType::DecisionTree { max_depth: 4 });
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let vectorized = session.sql(&query).unwrap();
        session.config_mut().baseline = BaselineMode::RowInterpreted;
        let row = session.sql(&query).unwrap();
        session.config_mut().baseline = BaselineMode::Materialized;
        let mat = session.sql(&query).unwrap();
        assert_eq!(ids(&vectorized.batch), ids(&row.batch));
        assert_eq!(ids(&vectorized.batch), ids(&mat.batch));
    }

    #[test]
    fn aggregate_queries_work() {
        let (session, _) = session(ModelType::DecisionTree { max_depth: 4 });
        let plan = parse_prediction_query(
            "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (risk float) AS p",
            session.registry(),
            session.catalog(),
        )
        .unwrap();
        let mut plan = plan;
        plan.projection = vec![];
        plan.aggregate = Some((
            vec![],
            vec![raven_relational::AggregateExpr {
                func: raven_relational::AggregateFunction::Avg,
                arg: col("risk"),
                alias: "avg_risk".into(),
            }],
        ));
        let out = session.execute(&plan).unwrap();
        assert_eq!(out.batch.num_rows(), 1);
        let avg = out.batch.column_by_name("avg_risk").unwrap().as_f64().unwrap()[0];
        assert!((0.0..=1.0).contains(&avg));
    }
}
