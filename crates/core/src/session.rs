//! The end-to-end Raven session: parse → unified IR → Raven optimizer
//! (logical cross-optimizations, data-induced optimizations, runtime
//! selection) → execution on the data engine / ML runtime / DNN runtime
//! (paper §6, Fig. 2 and Fig. 5).

use crate::cross_opt::{
    apply_cross_optimizations, model_projection_pushdown, predicate_based_model_pruning,
    CrossOptReport,
};
use crate::data_induced::{apply_global_data_induced, compile_partition_models, DataInducedReport};
use crate::error::{RavenError, Result};
use crate::mltodnn::apply_ml_to_dnn;
use crate::mltosql::pipeline_to_sql;
use crate::stats::PipelineStats;
use crate::strategy::{
    choose_execution_mode, choose_execution_mode_from_estimates, cost_based_mode_default,
    ExecutionMode, OptimizationStrategy, TransformChoice,
};
use raven_columnar::{
    Batch, BatchStream, Column, ColumnarError, DataType, Field, StreamBatch, Table,
};
use raven_ir::{parse_prediction_query, ModelRegistry, UnifiedPlan};
use raven_ml::{bind_batch, CompiledPipeline, MlRuntime, Pipeline, RuntimeConfig};
use raven_relational::{
    col, evaluate, evaluate_predicate, may_satisfy_all, selection_vectors_default, Catalog,
    CostModel, ExecutionContext, Executor, Expr, LogicalPlan, Optimizer,
};
use raven_storage::DurableStore;
use raven_tensor::{Device, Strategy};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Carry any session-level error through the columnar stream driver.
fn stream_err(e: impl std::fmt::Display) -> ColumnarError {
    ColumnarError::Execution(e.to_string())
}

/// How the logical-to-physical transformation is selected.
#[derive(Debug, Clone)]
pub enum RuntimePolicy {
    /// Never transform: cross-optimized pipeline stays on the ML runtime.
    NoTransform,
    /// Always apply the given transformation (fall back to the ML runtime if
    /// the rule is not applicable).
    Force(TransformChoice),
    /// The built-in heuristic rule (the shape of the paper's example rule in
    /// §5.2: big models → MLtoDNN, small models with few inputs → MLtoSQL).
    Heuristic,
    /// A learned, data-driven strategy (§5.2).
    Learned(Arc<dyn OptimizationStrategy + Send + Sync>),
}

/// How the ML part of the query is executed when it stays on the ML runtime;
/// used to model the systems Raven is compared against in §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Vectorized UDF-style batch scoring (Raven / Spark+ONNX Runtime).
    Vectorized,
    /// Row-at-a-time interpreted scoring (SparkML-style baseline).
    RowInterpreted,
    /// Vectorized scoring but with every featurization step materialized to
    /// columnar storage between operators (MADlib-style baseline).
    Materialized,
}

/// Session / optimizer configuration.
#[derive(Debug, Clone)]
pub struct RavenConfig {
    /// Apply predicate-based model pruning (§4.1).
    pub enable_predicate_pruning: bool,
    /// Apply model-projection pushdown (§4.1).
    pub enable_projection_pushdown: bool,
    /// Apply data-induced optimizations (§4.2).
    pub enable_data_induced: bool,
    /// Compile per-partition models when the scanned table is partitioned.
    pub enable_partition_models: bool,
    /// Logical-to-physical policy (§5).
    pub runtime_policy: RuntimePolicy,
    /// How the data side is driven through ML scoring: the streaming
    /// partition-parallel pipeline, the legacy materialized pipeline, or a
    /// cost-based choice between them.
    pub execution_mode: ExecutionMode,
    /// Degree of parallelism of the data engine: how many executors of the
    /// process-wide work-stealing pool (`raven_columnar::pool`) one query's
    /// partition drives may occupy concurrently. The pool itself is sized to
    /// the machine; this knob only bounds a single query's share of it.
    pub degree_of_parallelism: usize,
    /// ML runtime configuration (UDF overheads, batch size).
    pub ml_runtime: RuntimeConfig,
    /// Device used when MLtoDNN is chosen.
    pub device: Device,
    /// Hummingbird compilation strategy for MLtoDNN.
    pub dnn_strategy: Strategy,
    /// Baseline execution mode for the ML-runtime path.
    pub baseline: BaselineMode,
    /// Cost-based multi-join optimization on the data engine: statistics-
    /// driven join reordering at prepare time plus hash-join build-side
    /// selection at execution time. Defaults to on;
    /// `RAVEN_JOIN_ORDER=asis` pins the as-written order process-wide as the
    /// parity baseline. Harnesses toggle this field for in-process A/B runs
    /// (the env knob is read once per process).
    pub cost_based_joins: bool,
    /// Cost-based execution-mode selection for `ExecutionMode::Auto`: feed
    /// the join cost model's intermediate-size estimate into the streamed-vs-
    /// materialized decision instead of assuming the first referenced table's
    /// scan cardinality flows through scoring. Defaults to on;
    /// `RAVEN_MODE_COST=legacy` pins the old single-table heuristic
    /// process-wide as the A/B baseline.
    pub cost_based_mode: bool,
}

impl Default for RavenConfig {
    fn default() -> Self {
        RavenConfig {
            enable_predicate_pruning: true,
            enable_projection_pushdown: true,
            enable_data_induced: true,
            enable_partition_models: false,
            runtime_policy: RuntimePolicy::Heuristic,
            execution_mode: ExecutionMode::Streaming,
            degree_of_parallelism: 1,
            ml_runtime: RuntimeConfig::default(),
            device: Device::Cpu,
            dnn_strategy: Strategy::Gemm,
            baseline: BaselineMode::Vectorized,
            cost_based_joins: raven_relational::cost_based_joins_default(),
            cost_based_mode: cost_based_mode_default(),
        }
    }
}

impl RavenConfig {
    /// A configuration with every Raven optimization disabled — the
    /// "Raven (no-opt)" baseline of §7.
    pub fn no_opt() -> Self {
        RavenConfig {
            enable_predicate_pruning: false,
            enable_projection_pushdown: false,
            enable_data_induced: false,
            enable_partition_models: false,
            runtime_policy: RuntimePolicy::NoTransform,
            // the unoptimized baseline also materializes the data side before
            // scoring, like the systems Raven is compared against in §7
            execution_mode: ExecutionMode::Materialized,
            ..Default::default()
        }
    }
}

/// What the optimizer decided and how execution went.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Cross-optimization outcome.
    pub cross: CrossOptReport,
    /// Data-induced optimization outcome.
    pub data_induced: DataInducedReport,
    /// The chosen logical-to-physical transformation.
    pub transform: TransformChoice,
    /// Whether the chosen transformation had to fall back to the ML runtime.
    pub transform_fallback: bool,
    /// Time spent in the Raven optimizer itself.
    pub optimization_time: Duration,
    /// Time spent in the data engine.
    pub data_time: Duration,
    /// Time spent in the ML / DNN runtime (zero for MLtoSQL). On the
    /// streaming path this is the per-partition scoring time summed across
    /// workers and capped at the wall clock — exact at dop 1, a
    /// scoring-share attribution at dop > 1 (`data_time + ml_time` always
    /// partitions the measured wall time).
    pub ml_time: Duration,
    /// End-to-end time (optimization excluded), using the device-reported
    /// time for simulated GPUs.
    pub total_time: Duration,
    /// Number of result rows.
    pub output_rows: usize,
    /// Whether `ml_time` comes from a simulated device model.
    pub ml_time_modeled: bool,
    /// The execution mode the data side actually ran in (`Auto` resolves to
    /// streaming or materialized before execution; on the MLtoDNN path the
    /// mode describes the relational scan — the tensor model itself always
    /// consumes one materialized feature matrix).
    pub execution_mode: ExecutionMode,
    /// Partitions skipped without scanning because their min/max statistics
    /// could not satisfy the query's input predicates (data-induced compute
    /// pruning, §4.2). Always 0 on the materialized path.
    pub pruned_partitions: usize,
    /// Partitions that flowed through the streaming scoring pipeline.
    pub streamed_partitions: usize,
    /// Full batch copies performed between pipeline stages (filters
    /// materializing surviving rows). Zero on the selection-vector streaming
    /// path: filters produce zero-copy selection views and surviving rows
    /// are gathered exactly once, at the output boundary. The materialized
    /// baseline (and `RAVEN_SELECTION=materialize`) reports its per-filter
    /// copies here.
    pub intermediate_materializations: usize,
    /// Rows materialized into hash-join build tables across the data side.
    /// With cost-based build-side selection this is the estimated-smaller
    /// input of every join; under `RAVEN_JOIN_ORDER=asis` it is always the
    /// right input as written.
    pub join_build_rows: usize,
    /// Partition batches that probed a join hash table on the data side.
    pub join_probe_batches: usize,
}

/// Internal result of one execution path (ML runtime / MLtoSQL / MLtoDNN),
/// folded into the public [`ExecutionReport`].
#[derive(Debug)]
struct PathOutcome {
    batch: Batch,
    data_time: Duration,
    ml_time: Duration,
    ml_time_modeled: bool,
    fallback: bool,
    partition_report: Option<DataInducedReport>,
    execution_mode: ExecutionMode,
    pruned_partitions: usize,
    streamed_partitions: usize,
    intermediate_materializations: usize,
    join_build_rows: usize,
    join_probe_batches: usize,
}

impl PathOutcome {
    fn new(batch: Batch, execution_mode: ExecutionMode) -> Self {
        PathOutcome {
            batch,
            data_time: Duration::ZERO,
            ml_time: Duration::ZERO,
            ml_time_modeled: false,
            fallback: false,
            partition_report: None,
            execution_mode,
            pruned_partitions: 0,
            streamed_partitions: 0,
            intermediate_materializations: 0,
            join_build_rows: 0,
            join_probe_batches: 0,
        }
    }

    /// Fold one executor-counter snapshot into this outcome (additive, so
    /// paths that run several relational plans accumulate).
    fn apply_counters(&mut self, c: EngineCounters) {
        self.pruned_partitions += c.pruned_partitions;
        self.streamed_partitions += c.streamed_partitions;
        self.intermediate_materializations += c.intermediate_materializations;
        self.join_build_rows += c.join_build_rows;
        self.join_probe_batches += c.join_probe_batches;
    }
}

/// Snapshot of the relational executor's counters after one plan run, folded
/// into the [`ExecutionReport`].
#[derive(Debug, Default, Clone, Copy)]
struct EngineCounters {
    pruned_partitions: usize,
    streamed_partitions: usize,
    intermediate_materializations: usize,
    join_build_rows: usize,
    join_probe_batches: usize,
}

impl EngineCounters {
    fn from_metrics(metrics: &raven_relational::ExecutionMetrics) -> Self {
        EngineCounters {
            pruned_partitions: metrics.partitions_pruned(),
            streamed_partitions: metrics.partitions_scanned(),
            intermediate_materializations: metrics.intermediate_materializations(),
            join_build_rows: metrics.join_build_rows(),
            join_probe_batches: metrics.join_probe_batches(),
        }
    }
}

/// The result of executing a prediction query.
#[derive(Debug, Clone)]
pub struct PredictionOutput {
    /// The result rows.
    pub batch: Batch,
    /// The optimizer / execution report.
    pub report: ExecutionReport,
}

/// Per-partition models compiled at prepare time (data-induced §4.2),
/// packaged so a serving tier can cache them independently of (and with a
/// longer lifetime than) the plan cache. Since PR 5 the cache entry carries
/// the fully compiled [`CompiledPipeline`]s — flattened tree arenas *and*
/// the fused featurizer plan (lane programs, category tables) — so a
/// model-cache hit skips every per-partition compilation step, not just the
/// statistics-driven pruning.
#[derive(Debug, Clone)]
pub struct CompiledModels {
    /// One specialized, fully compiled pipeline per partition of the
    /// scanned table.
    pub pipelines: Arc<Vec<CompiledPipeline>>,
    /// The compilation report (partition-model count, pruned columns).
    pub report: DataInducedReport,
}

/// Storage hooks a serving tier provides so per-partition compiled models are
/// reused across prepared statements. The key is derived *inside* the session
/// — scanned tables, catalog/registry epochs, and a structural hash of the
/// optimized pipeline — so a hit is guaranteed to be byte-compatible with
/// what compilation would have produced, and any registration invalidates it.
pub struct ModelCacheHooks<'a> {
    /// Look a compiled artifact up by key.
    pub lookup: &'a mut dyn FnMut(&str) -> Option<CompiledModels>,
    /// Store a freshly compiled artifact under its key.
    pub store: &'a mut dyn FnMut(&str, &CompiledModels),
}

/// The physical artifact a [`PreparedStatement`] replays on execution — the
/// expensive, per-query-shape work (relational optimization, SQL generation,
/// tensor compilation, per-partition model compilation) done exactly once at
/// prepare time.
#[derive(Debug, Clone)]
enum PreparedArtifact {
    /// MLtoSQL: the whole query lowered to one optimized relational plan.
    Sql { relational: Arc<LogicalPlan> },
    /// MLtoDNN: compiled tensor model + the optimized data-side plan.
    Dnn {
        dnn: Arc<crate::mltodnn::DnnPlan>,
        data: Arc<LogicalPlan>,
    },
    /// ML-runtime path (and the §7 baselines).
    MlRuntime(MlRuntimePlan),
}

/// Lowered form of the ML-runtime execution path.
#[derive(Debug, Clone)]
struct MlRuntimePlan {
    /// The optimized relational data-side plan. `None` on the per-partition
    /// compiled-models path, which streams the scanned table directly so
    /// partition indices stay aligned with the model vector.
    data: Option<Arc<LogicalPlan>>,
    /// The scanned table, on the per-partition compiled-models path.
    scan_table: Option<String>,
    /// The pipeline(s) to score with, each carrying its flattened
    /// struct-of-arrays scoring kernels compiled at prepare time: one per
    /// partition on the partition-models path, a single shared pipeline
    /// otherwise. Executions (including serving-tier plan-cache hits) run
    /// only the compiled kernels; `RAVEN_SCORER=interpreted` pins the
    /// interpreted parity baseline at scoring time.
    models: Arc<Vec<CompiledPipeline>>,
    /// Partition-model compilation report (folded into the execution report).
    partition_report: Option<DataInducedReport>,
    /// Schema of the data side's output (drives the empty boundary batch).
    schema: raven_columnar::SchemaRef,
}

/// A prediction query prepared once — parsed, cross-optimized, and lowered to
/// its physical artifact — and executable many times via
/// [`RavenSession::execute_prepared`]. This is the unit the serving layer's
/// plan cache stores: every per-request cost that does not depend on the data
/// actually scanned (parsing, the Raven optimizer, SQL generation, relational
/// optimization, DNN compilation, per-partition model compilation) is paid
/// here exactly once.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    plan: Arc<UnifiedPlan>,
    point_pipeline: Arc<Pipeline>,
    point_compiled: Arc<CompiledPipeline>,
    transform: TransformChoice,
    fallback: bool,
    cross: CrossOptReport,
    data_induced: DataInducedReport,
    optimization_time: Duration,
    catalog_epoch: u64,
    registry_epoch: u64,
    artifact: PreparedArtifact,
}

impl PreparedStatement {
    /// The optimized unified plan.
    pub fn plan(&self) -> &Arc<UnifiedPlan> {
        &self.plan
    }

    /// The pipeline to score *out-of-table* rows with (point-prediction
    /// serving): the query's pipeline with predicate-derived
    /// cross-optimizations applied but **without** data-induced pruning.
    /// Data-induced optimizations assume inputs stay inside the registered
    /// table's observed min/max domains, which a point request need not obey
    /// — this pipeline is exact for any row that satisfies the query's input
    /// predicates.
    pub fn point_pipeline(&self) -> &Arc<Pipeline> {
        &self.point_pipeline
    }

    /// [`PreparedStatement::point_pipeline`] with its flattened scoring
    /// kernels compiled at prepare time — what the serving tier's point
    /// micro-batches score with, so plan-cache hits run only compiled
    /// kernels.
    pub fn point_scorer(&self) -> &Arc<CompiledPipeline> {
        &self.point_compiled
    }

    /// The chosen logical-to-physical transformation (after resolving
    /// applicability: a transform that fell back reports
    /// [`TransformChoice::None`]).
    pub fn transform(&self) -> TransformChoice {
        if self.fallback {
            TransformChoice::None
        } else {
            self.transform
        }
    }

    /// Time spent preparing (parse excluded; optimizer + lowering).
    pub fn optimization_time(&self) -> Duration {
        self.optimization_time
    }

    /// Catalog epoch this statement was prepared against.
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch
    }

    /// Registry epoch this statement was prepared against.
    pub fn registry_epoch(&self) -> u64 {
        self.registry_epoch
    }

    /// Whether this statement was prepared against the session's *current*
    /// catalog and registry. `false` means a table or model was re-registered
    /// since: the statement may embed stale statistics, pruned models, or
    /// pre-compiled artifacts and must not serve.
    pub fn is_fresh(&self, session: &RavenSession) -> bool {
        self.catalog_epoch == session.catalog().epoch()
            && self.registry_epoch == session.registry().epoch()
    }
}

/// An end-to-end Raven session (the `RavenSession` of Fig. 5).
///
/// The catalog and the model registry are held behind [`Arc`]s: sessions are
/// cheap to clone, and a serving tier can hand the same immutable snapshot to
/// many concurrent executions. Registration goes through
/// [`Arc::make_mut`] — copy-on-write, so in-flight executions holding the old
/// snapshot are unaffected — and bumps the catalog/registry epoch counters
/// that invalidate prepared statements.
#[derive(Debug, Clone, Default)]
pub struct RavenSession {
    catalog: Arc<Catalog>,
    registry: Arc<ModelRegistry>,
    config: RavenConfig,
    /// Durable-catalog backend. When set, every registration / drop is
    /// journaled (fsync'd) *before* it is applied in memory, so a crash at
    /// any point either replays the mutation or never acknowledged it.
    store: Option<Arc<DurableStore>>,
}

/// What [`RavenSession::open_durable`] recovered from the data directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryInfo {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Size of the loaded snapshot in bytes (0 without one).
    pub snapshot_bytes: u64,
    /// Journal records replayed over the snapshot.
    pub journal_records_replayed: usize,
    /// Whether a torn journal tail was found and truncated.
    pub journal_tail_truncated: bool,
    /// Hot plan fingerprints (canonical SQL, most-recently-used first)
    /// persisted at snapshot time, for serving-tier cache pre-warm.
    pub plan_fingerprints: Vec<String>,
}

impl RavenSession {
    /// Create a session with the default configuration.
    pub fn new() -> Self {
        RavenSession::default()
    }

    /// Create a session with an explicit configuration.
    pub fn with_config(config: RavenConfig) -> Self {
        RavenSession {
            config,
            ..RavenSession::default()
        }
    }

    /// The session configuration (mutable, so harnesses can toggle rules).
    pub fn config_mut(&mut self) -> &mut RavenConfig {
        &mut self.config
    }

    /// The session configuration.
    pub fn config(&self) -> &RavenConfig {
        &self.config
    }

    /// Open a session backed by a durable data directory (`RAVEN_DATA_DIR`
    /// in serving): recovers the catalog and model registry from the last
    /// snapshot plus the journal (truncating any torn tail), resumes the
    /// pre-crash epoch counters, and journals every subsequent mutation.
    pub fn open_durable(
        dir: impl Into<std::path::PathBuf>,
        config: RavenConfig,
    ) -> Result<(RavenSession, RecoveryInfo)> {
        let (store, recovered) = DurableStore::open(dir)?;
        let session = RavenSession {
            catalog: Arc::new(recovered.catalog),
            registry: Arc::new(recovered.registry),
            config,
            store: Some(Arc::new(store)),
        };
        let info = RecoveryInfo {
            snapshot_loaded: recovered.snapshot_loaded,
            snapshot_bytes: recovered.snapshot_bytes,
            journal_records_replayed: recovered.journal_records_replayed,
            journal_tail_truncated: recovered.journal_tail_truncated,
            plan_fingerprints: recovered.plan_fingerprints,
        };
        Ok((session, info))
    }

    /// The durable store backing this session, if any.
    pub fn durable_store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// Register a table.
    ///
    /// On a durable session the registration is journaled first; a journal
    /// failure here is fail-stop (the in-memory state must never run ahead
    /// of what a restart would recover). Serving tiers use
    /// [`RavenSession::try_register_table`] to surface the error instead.
    pub fn register_table(&mut self, table: Table) {
        self.try_register_table(table)
            .expect("journal write failed; refusing to diverge from durable state");
    }

    /// Register a trained pipeline (fail-stop on journal errors, like
    /// [`RavenSession::register_table`]).
    pub fn register_model(&mut self, pipeline: Pipeline) {
        self.try_register_model(pipeline)
            .expect("journal write failed; refusing to diverge from durable state");
    }

    /// Register a table, journaling it first when the session is durable.
    pub fn try_register_table(&mut self, table: Table) -> Result<()> {
        if let Some(store) = &self.store {
            store.log_register_table(
                table.name(),
                &table,
                self.catalog.epoch() + 1,
                self.registry.epoch(),
            )?;
        }
        Arc::make_mut(&mut self.catalog).register(table);
        Ok(())
    }

    /// Register a trained pipeline, journaling it first when durable.
    pub fn try_register_model(&mut self, pipeline: Pipeline) -> Result<()> {
        if let Some(store) = &self.store {
            store.log_register_model(
                &pipeline.name,
                &pipeline,
                self.catalog.epoch(),
                self.registry.epoch() + 1,
            )?;
        }
        Arc::make_mut(&mut self.registry).register(pipeline);
        Ok(())
    }

    /// Drop a table (journaled first when durable; errors if missing).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        if !self.catalog.contains(name) {
            return Err(RavenError::Relational(format!("unknown table '{name}'")));
        }
        if let Some(store) = &self.store {
            store.log_drop_table(name, self.catalog.epoch() + 1, self.registry.epoch())?;
        }
        Arc::make_mut(&mut self.catalog)
            .drop_table(name)
            .map_err(|e| RavenError::Relational(e.to_string()))?;
        Ok(())
    }

    /// Drop a model by its exact registered name (journaled first when
    /// durable; errors if missing).
    pub fn drop_model(&mut self, name: &str) -> Result<()> {
        if !self.registry.model_names().iter().any(|n| n == name) {
            return Err(RavenError::Ir(format!("unknown model '{name}'")));
        }
        if let Some(store) = &self.store {
            store.log_drop_model(name, self.catalog.epoch(), self.registry.epoch() + 1)?;
        }
        Arc::make_mut(&mut self.registry)
            .drop_model(name)
            .map_err(|e| RavenError::Ir(e.to_string()))?;
        Ok(())
    }

    /// Snapshot the current catalog + registry (plus the given hot-plan
    /// fingerprints for restart cache pre-warm) and compact the journal.
    /// Returns the snapshot size in bytes; errors on a non-durable session.
    pub fn snapshot_with_plans(&self, plan_fingerprints: &[String]) -> Result<u64> {
        let store = self.store.as_ref().ok_or_else(|| {
            RavenError::Storage("session has no durable store (no data directory)".into())
        })?;
        Ok(store.snapshot(&self.catalog, &self.registry, plan_fingerprints)?)
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// A shared handle to the catalog snapshot (cheap; used by serving-side
    /// caches and concurrent executors).
    pub fn catalog_handle(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// A shared handle to the registry snapshot.
    pub fn registry_handle(&self) -> Arc<ModelRegistry> {
        self.registry.clone()
    }

    /// Parse, optimize, and execute a prediction query written with the
    /// `PREDICT` syntax.
    pub fn sql(&self, query: &str) -> Result<PredictionOutput> {
        let plan = parse_prediction_query(query, &self.registry, &self.catalog)?;
        self.execute(&plan)
    }

    /// Parse and prepare a prediction query: run the Raven optimizer and
    /// lower the result to its physical artifact, once. The returned
    /// statement can be executed repeatedly with
    /// [`RavenSession::execute_prepared`].
    pub fn prepare(&self, query: &str) -> Result<PreparedStatement> {
        self.prepare_hooked(query, None)
    }

    /// [`RavenSession::prepare`] with serving-tier model-cache hooks.
    pub fn prepare_hooked(
        &self,
        query: &str,
        hooks: Option<&mut ModelCacheHooks<'_>>,
    ) -> Result<PreparedStatement> {
        let plan = parse_prediction_query(query, &self.registry, &self.catalog)?;
        self.prepare_plan_hooked(&plan, hooks)
    }

    /// Prepare an already-parsed unified plan (see [`RavenSession::prepare`]).
    pub fn prepare_plan(&self, plan: &UnifiedPlan) -> Result<PreparedStatement> {
        self.prepare_plan_hooked(plan, None)
    }

    /// [`RavenSession::prepare_plan`] with serving-tier model-cache hooks.
    pub fn prepare_plan_hooked(
        &self,
        plan: &UnifiedPlan,
        mut hooks: Option<&mut ModelCacheHooks<'_>>,
    ) -> Result<PreparedStatement> {
        let opt_start = Instant::now();
        let (optimized, transform, cross, data_induced, point_pipeline) =
            self.optimize_stages(plan)?;
        let point_pipeline = Arc::new(point_pipeline);
        let point_compiled = Arc::new(
            CompiledPipeline::from_arc(point_pipeline.clone())
                .map_err(|e| RavenError::Ml(e.to_string()))?,
        );
        let (artifact, fallback) = self.lower(&optimized, transform, &mut hooks)?;
        Ok(PreparedStatement {
            plan: Arc::new(optimized),
            point_pipeline,
            point_compiled,
            transform,
            fallback,
            cross,
            data_induced,
            optimization_time: opt_start.elapsed(),
            catalog_epoch: self.catalog.epoch(),
            registry_epoch: self.registry.epoch(),
            artifact,
        })
    }

    /// Optimize a unified plan without executing it (returns the optimized
    /// plan, the chosen transform, and the reports).
    pub fn optimize(
        &self,
        plan: &UnifiedPlan,
    ) -> Result<(
        UnifiedPlan,
        TransformChoice,
        CrossOptReport,
        DataInducedReport,
    )> {
        let (plan, transform, cross, data_induced, _) = self.optimize_stages(plan)?;
        Ok((plan, transform, cross, data_induced))
    }

    /// The optimizer pipeline with a snapshot of the cross-optimized (but
    /// not yet data-induced-pruned) pipeline, taken in passing — feeds
    /// [`PreparedStatement::point_pipeline`] without a second optimizer run.
    #[allow(clippy::type_complexity)]
    fn optimize_stages(
        &self,
        plan: &UnifiedPlan,
    ) -> Result<(
        UnifiedPlan,
        TransformChoice,
        CrossOptReport,
        DataInducedReport,
        Pipeline,
    )> {
        let mut plan = plan.clone();
        let mut cross = CrossOptReport::default();
        if self.config.enable_predicate_pruning && self.config.enable_projection_pushdown {
            cross = apply_cross_optimizations(&mut plan)?;
        } else if self.config.enable_predicate_pruning {
            cross.predicate_pruning_applied = predicate_based_model_pruning(&mut plan)?;
        } else if self.config.enable_projection_pushdown {
            cross.removed_inputs = model_projection_pushdown(&mut plan)?;
            cross.projection_pushdown_applied = !cross.removed_inputs.is_empty();
        }
        let point_pipeline = plan.pipeline.clone();
        let mut data_induced = DataInducedReport::default();
        if self.config.enable_data_induced {
            let report = apply_global_data_induced(&mut plan, &self.catalog)?;
            // columns pruned by data-induced statistics also leave the scan
            data_induced = report;
        }
        let transform = self.choose_transform(&plan);
        Ok((plan, transform, cross, data_induced, point_pipeline))
    }

    /// Optimize and execute a unified plan. Equivalent to
    /// [`RavenSession::prepare_plan`] followed by
    /// [`RavenSession::execute_prepared`] — prepared execution is the *only*
    /// execution path, so cached statements are byte-identical to ad-hoc SQL
    /// by construction.
    pub fn execute(&self, plan: &UnifiedPlan) -> Result<PredictionOutput> {
        let prepared = self.prepare_plan(plan)?;
        self.execute_prepared(&prepared)
    }

    /// Render the prepared statement's relational data-side plan
    /// EXPLAIN-style, annotating every node with the cost model's estimated
    /// output cardinality (`rows≈`). The plan shown is exactly what executes:
    /// after model-projection pushdown, PK-FK join elimination, and
    /// cost-based join reordering, so dropped dimension joins and the chosen
    /// join order are directly observable. Returns `None` for prepared
    /// artifacts with no relational plan (per-partition compiled models
    /// stream their table directly).
    pub fn explain_prepared(&self, prepared: &PreparedStatement) -> Option<String> {
        let plan = match &prepared.artifact {
            PreparedArtifact::Sql { relational } => relational,
            PreparedArtifact::Dnn { data, .. } => data,
            PreparedArtifact::MlRuntime(lowered) => lowered.data.as_ref()?,
        };
        Some(raven_relational::explain_with_estimates(
            plan,
            &self.catalog,
        ))
    }

    /// Execute a prepared statement. Only the residual, data-dependent work
    /// runs: scans, filters, scoring, post-processing. The report's
    /// `optimization_time` is the statement's one-time prepare cost.
    ///
    /// Fails with [`RavenError::Config`] when the statement is stale — a
    /// table or model was registered after it was prepared. Its artifacts
    /// (statistics-pruned models, partition-aligned model vectors, lowered
    /// plans) may no longer match the catalog, and executing them could
    /// silently return wrong results; re-prepare instead.
    pub fn execute_prepared(&self, prepared: &PreparedStatement) -> Result<PredictionOutput> {
        if !prepared.is_fresh(self) {
            return Err(RavenError::Config(format!(
                "prepared statement is stale (prepared at catalog epoch {} / registry epoch {}, \
                 session is at {} / {}); re-prepare the query",
                prepared.catalog_epoch,
                prepared.registry_epoch,
                self.catalog.epoch(),
                self.registry.epoch()
            )));
        }
        let exec_start = Instant::now();
        let outcome = match &prepared.artifact {
            PreparedArtifact::Sql { relational } => self.run_ml_to_sql(relational)?,
            PreparedArtifact::Dnn { dnn, data } => self.run_ml_to_dnn(&prepared.plan, dnn, data)?,
            PreparedArtifact::MlRuntime(lowered) => self.run_ml_runtime(&prepared.plan, lowered)?,
        };
        let mut data_induced = prepared.data_induced.clone();
        if let Some(p) = &outcome.partition_report {
            data_induced.partition_models = p.partition_models;
            data_induced.avg_pruned_columns_per_partition = p.avg_pruned_columns_per_partition;
        }
        let measured_total = exec_start.elapsed();
        let intermediate_materializations = outcome.intermediate_materializations;
        // When the ML time is modeled (simulated GPU) the end-to-end total is
        // data time + modeled ML time rather than the measured wall clock.
        let total_time = if outcome.ml_time_modeled {
            outcome.data_time + outcome.ml_time
        } else {
            measured_total
        };
        let fallback = prepared.fallback || outcome.fallback;
        let report = ExecutionReport {
            cross: prepared.cross.clone(),
            data_induced,
            transform: if fallback {
                TransformChoice::None
            } else {
                prepared.transform
            },
            transform_fallback: fallback,
            optimization_time: prepared.optimization_time,
            data_time: outcome.data_time,
            ml_time: outcome.ml_time,
            total_time,
            output_rows: outcome.batch.num_rows(),
            ml_time_modeled: outcome.ml_time_modeled,
            execution_mode: outcome.execution_mode,
            pruned_partitions: outcome.pruned_partitions,
            streamed_partitions: outcome.streamed_partitions,
            intermediate_materializations,
            join_build_rows: outcome.join_build_rows,
            join_probe_batches: outcome.join_probe_batches,
        };
        Ok(PredictionOutput {
            batch: outcome.batch,
            report,
        })
    }

    // ---------------------------------------------------------------------
    // runtime selection
    // ---------------------------------------------------------------------

    fn choose_transform(&self, plan: &UnifiedPlan) -> TransformChoice {
        match &self.config.runtime_policy {
            RuntimePolicy::NoTransform => TransformChoice::None,
            RuntimePolicy::Force(c) => *c,
            RuntimePolicy::Learned(strategy) => {
                strategy.choose(&PipelineStats::from_pipeline(&plan.pipeline))
            }
            RuntimePolicy::Heuristic => {
                let stats = PipelineStats::from_pipeline(&plan.pipeline);
                let gpu_available = self.config.device.is_simulated();
                // The §5.2 example rule, adapted to this engine's calibration:
                // very large ensembles benefit from the DNN runtime (on GPU),
                // small/medium models with manageable generated SQL go to SQL,
                // everything else stays on the ML runtime.
                if gpu_available && stats.n_tree_nodes > 20_000.0 {
                    TransformChoice::MlToDnn
                } else if stats.is_linear_model == 1.0 || stats.sql_expression_nodes <= 4_000.0 {
                    TransformChoice::MlToSql
                } else {
                    TransformChoice::None
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // execution paths
    // ---------------------------------------------------------------------

    /// Lower the optimized plan to its physical artifact for the chosen
    /// transform, resolving applicability (a transform whose rule does not
    /// apply falls back to the ML-runtime artifact) once at prepare time.
    fn lower(
        &self,
        plan: &UnifiedPlan,
        transform: TransformChoice,
        hooks: &mut Option<&mut ModelCacheHooks<'_>>,
    ) -> Result<(PreparedArtifact, bool)> {
        let attempt = match transform {
            TransformChoice::MlToSql => self.lower_ml_to_sql(plan).map(Some),
            TransformChoice::MlToDnn => self.lower_ml_to_dnn(plan).map(Some),
            TransformChoice::None => Ok(None),
        };
        match attempt {
            Ok(Some(artifact)) => Ok((artifact, false)),
            Ok(None) => Ok((
                PreparedArtifact::MlRuntime(self.lower_ml_runtime(plan, hooks)?),
                false,
            )),
            Err(RavenError::RuleNotApplicable(_)) => Ok((
                PreparedArtifact::MlRuntime(self.lower_ml_runtime(plan, hooks)?),
                true,
            )),
            Err(e) => Err(e),
        }
    }

    /// Resolve the configured [`ExecutionMode`] for a plan: `Auto` costs the
    /// streamed vs. materialized pipeline using the scanned tables' partition
    /// layout, how many partitions the input predicates can prune, and (when
    /// `cost_based_mode` is on) the join cost model's estimate of how many
    /// rows actually survive to scoring.
    fn resolve_execution_mode(&self, plan: &UnifiedPlan) -> ExecutionMode {
        match self.config.execution_mode {
            ExecutionMode::Streaming => ExecutionMode::Streaming,
            ExecutionMode::Materialized => ExecutionMode::Materialized,
            ExecutionMode::Auto => {
                let tables = plan.data.referenced_tables();
                let Some(table) = tables.first().and_then(|t| self.catalog.table(t).ok()) else {
                    return ExecutionMode::Streaming;
                };
                let partitions = table.partitions().len();
                let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
                let surviving = table
                    .partition_statistics()
                    .iter()
                    .filter(|stats| may_satisfy_all(&input_preds, stats))
                    .count();
                let selectivity = surviving as f64 / partitions.max(1) as f64;
                if self.config.cost_based_mode {
                    // total rows the plan reads across every referenced table,
                    // vs. the cost model's estimate of rows surviving joins
                    // and filters (the rows that are concatenated and scored).
                    let scanned_rows: usize = tables
                        .iter()
                        .filter_map(|t| self.catalog.table(t).ok())
                        .map(|t| t.num_rows())
                        .sum();
                    let estimated_out = CostModel::new(&self.catalog)
                        .estimate_rows(&self.data_side_plan(plan))
                        .max(0.0)
                        .round() as usize;
                    choose_execution_mode_from_estimates(
                        scanned_rows,
                        estimated_out,
                        partitions,
                        self.config.degree_of_parallelism,
                        selectivity,
                    )
                } else {
                    // legacy heuristic: first referenced table only, and every
                    // scanned row is assumed to reach scoring.
                    choose_execution_mode(
                        table.num_rows(),
                        partitions,
                        self.config.degree_of_parallelism,
                        selectivity,
                    )
                }
            }
        }
    }

    /// The relational plan computing the model's input data: the query's data
    /// part with input-side predicates applied and projected to the columns
    /// the (optimized) pipeline and the rest of the query still need.
    fn data_side_plan(&self, plan: &UnifiedPlan) -> LogicalPlan {
        let mut data = plan.data.clone();
        let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
        if !input_preds.is_empty() {
            data = data.filter(Expr::conjunction(input_preds));
        }
        let mut needed: Vec<String> = plan
            .pipeline
            .input_names()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        for c in plan.externally_required_columns() {
            if !needed.contains(&c) {
                needed.push(c);
            }
        }
        if !needed.is_empty() {
            data = data.project(needed.iter().map(col).collect());
        }
        data
    }

    /// The relational optimizer configured per the session: join reordering
    /// follows the `cost_based_joins` knob, every other rule stays on.
    fn relational_optimizer(&self) -> Optimizer {
        Optimizer::with_options(raven_relational::OptimizerOptions {
            join_reordering: self.config.cost_based_joins,
            ..Default::default()
        })
    }

    /// The execution context handed to the relational engine.
    /// `partition_pruning` distinguishes the streaming pipeline (which prunes
    /// via statistics) from the legacy materialized plan that models engines
    /// scanning every partition — the legacy plan also materializes at every
    /// filter (no selection vectors), like the §7 baseline systems it stands
    /// in for.
    fn execution_context(&self, partition_pruning: bool) -> ExecutionContext {
        ExecutionContext {
            degree_of_parallelism: self.config.degree_of_parallelism.max(1),
            batch_size: self.config.ml_runtime.batch_size.max(1),
            partition_pruning,
            selection_vectors: partition_pruning && selection_vectors_default(),
            cost_based_build_side: self.config.cost_based_joins,
        }
    }

    /// Run an already-optimized relational plan, returning the result plus a
    /// snapshot of the executor's counters (partitions pruned via statistics
    /// / scanned, intermediate materializations, join build/probe work).
    fn run_optimized(
        &self,
        plan: &LogicalPlan,
        partition_pruning: bool,
    ) -> Result<(Batch, EngineCounters)> {
        let exec = Executor::new();
        let batch = exec.execute(
            plan,
            &self.catalog,
            &self.execution_context(partition_pruning),
        )?;
        Ok((batch, EngineCounters::from_metrics(&exec.metrics())))
    }

    /// Execution mode for the fully-relational transform paths (MLtoSQL and
    /// the data side of MLtoDNN): an explicitly materialized configuration
    /// keeps the legacy no-pruning scan, everything else (including `Auto` —
    /// there is no concat-before-scoring tradeoff to cost on these paths)
    /// uses the streaming engine with statistics pruning.
    fn transform_path_mode(&self) -> (ExecutionMode, bool) {
        match self.config.execution_mode {
            ExecutionMode::Materialized => (ExecutionMode::Materialized, false),
            _ => (ExecutionMode::Streaming, true),
        }
    }

    /// MLtoSQL lowering: the entire query (featurization, model, predicates,
    /// projection, aggregate) becomes one relational plan, optimized once.
    fn lower_ml_to_sql(&self, plan: &UnifiedPlan) -> Result<PreparedArtifact> {
        let score_expr = pipeline_to_sql(&plan.pipeline)?;
        let mut data = plan.data.clone();
        let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
        if !input_preds.is_empty() {
            data = data.filter(Expr::conjunction(input_preds));
        }
        // project the prediction plus every column the rest of the query needs
        let mut exprs: Vec<Expr> = plan
            .externally_required_columns()
            .into_iter()
            .map(|c| col(&c))
            .collect();
        exprs.push(score_expr.alias(&plan.prediction_column));
        data = data.project(exprs);
        let output_preds: Vec<Expr> = plan.output_predicates().into_iter().cloned().collect();
        if !output_preds.is_empty() {
            data = data.filter(Expr::conjunction(output_preds));
        }
        if !plan.projection.is_empty() {
            data = data.project(plan.projection.clone());
        }
        if let Some((group_by, aggs)) = &plan.aggregate {
            data = data.aggregate(group_by.clone(), aggs.clone());
        }
        let optimized = self.relational_optimizer().optimize(&data, &self.catalog)?;
        Ok(PreparedArtifact::Sql {
            relational: Arc::new(optimized),
        })
    }

    /// MLtoSQL execution: run the pre-optimized relational plan on the
    /// streaming partition-parallel engine (or the legacy no-pruning scan
    /// when the session is configured `Materialized`).
    fn run_ml_to_sql(&self, relational: &LogicalPlan) -> Result<PathOutcome> {
        let start = Instant::now();
        let (mode, pruning) = self.transform_path_mode();
        let (batch, counters) = self.run_optimized(relational, pruning)?;
        let mut outcome = PathOutcome::new(batch, mode);
        outcome.data_time = start.elapsed();
        outcome.apply_counters(counters);
        Ok(outcome)
    }

    /// ML-runtime lowering: compile per-partition models once (data-induced
    /// §4.2, bare scans only) and pre-optimize the relational data side.
    /// When serving-tier hooks are present, compiled models are looked up and
    /// stored under a key derived from the scanned tables, the
    /// catalog/registry epochs, and a structural hash of the optimized
    /// pipeline — identical key ⇒ identical compilation input.
    fn lower_ml_runtime(
        &self,
        plan: &UnifiedPlan,
        hooks: &mut Option<&mut ModelCacheHooks<'_>>,
    ) -> Result<MlRuntimePlan> {
        // Compile every scoring pipeline once, at prepare time — flattened
        // tree arenas plus the fused featurizer plan: executions replay only
        // the compiled block-at-a-time kernels.
        let compile_all = |models: &[Pipeline]| -> Result<Arc<Vec<CompiledPipeline>>> {
            models
                .iter()
                .map(|p| CompiledPipeline::compile(p).map_err(|e| RavenError::Ml(e.to_string())))
                .collect::<Result<Vec<_>>>()
                .map(Arc::new)
        };
        let partition_models = if self.config.enable_partition_models {
            let key = hooks.as_ref().map(|_| self.model_cache_key(plan));
            let cached = match (hooks.as_mut(), key.as_deref()) {
                (Some(h), Some(k)) => (h.lookup)(k),
                _ => None,
            };
            match cached {
                // a hit reuses the fully compiled artifacts — pruned
                // pipelines, flat ensembles, and fused featurizer plans
                Some(c) if c.pipelines.len() > 1 => Some((c.pipelines, c.report)),
                _ => {
                    let (models, report) = compile_partition_models(plan, &self.catalog)?;
                    if models.len() > 1 {
                        let compiled = CompiledModels {
                            pipelines: compile_all(&models)?,
                            report,
                        };
                        if let (Some(h), Some(k)) = (hooks.as_mut(), key.as_deref()) {
                            (h.store)(k, &compiled);
                        }
                        Some((compiled.pipelines, compiled.report))
                    } else {
                        None
                    }
                }
            }
        } else {
            None
        };
        match partition_models {
            Some((models, report)) if matches!(plan.data, LogicalPlan::Scan { .. }) => {
                // per-partition compiled models: the table is streamed
                // directly at execution time so partition indices stay
                // aligned with the model vector even under pruning
                let table_name = match &plan.data {
                    LogicalPlan::Scan { table, .. } => table.clone(),
                    _ => unreachable!(),
                };
                let schema = self.catalog.table(&table_name)?.schema().clone();
                Ok(MlRuntimePlan {
                    data: None,
                    scan_table: Some(table_name),
                    models,
                    partition_report: Some(report),
                    schema,
                })
            }
            _ => {
                let data_plan = self.data_side_plan(plan);
                let optimized = self
                    .relational_optimizer()
                    .optimize(&data_plan, &self.catalog)?;
                let schema = Arc::new(optimized.schema(&self.catalog)?);
                Ok(MlRuntimePlan {
                    data: Some(Arc::new(optimized)),
                    scan_table: None,
                    models: compile_all(std::slice::from_ref(&plan.pipeline))?,
                    partition_report: None,
                    schema,
                })
            }
        }
    }

    /// The compiled-model cache key for a plan's partition models. Includes
    /// everything compilation reads: which tables feed the scan (and their
    /// registration epoch, which covers statistics), the registry epoch, and
    /// a structural hash of the optimized pipeline (which already reflects
    /// the query's cross-optimizations).
    fn model_cache_key(&self, plan: &UnifiedPlan) -> String {
        let hash = raven_ir::fnv1a(format!("{:?}", plan.pipeline).as_bytes());
        format!(
            "{}@c{}r{}#p{hash:016x}",
            plan.data.referenced_tables().join(","),
            self.catalog.epoch(),
            self.registry.epoch()
        )
    }

    /// ML-runtime path dispatcher (and the SparkML / MADlib-style baselines):
    /// run the data part on the data engine, score with the ML runtime, then
    /// apply output predicates / projection / aggregation — either as one
    /// streaming partition-parallel pipeline or via the legacy materialized
    /// plan, per the (resolved) [`ExecutionMode`].
    fn run_ml_runtime(&self, plan: &UnifiedPlan, lowered: &MlRuntimePlan) -> Result<PathOutcome> {
        // The row-interpreted / materializing baselines model systems that
        // materialize the data side before scoring; only the vectorized
        // runtime streams.
        let mode = if self.config.baseline != BaselineMode::Vectorized {
            ExecutionMode::Materialized
        } else {
            self.resolve_execution_mode(plan)
        };
        match mode {
            ExecutionMode::Materialized => self.run_ml_runtime_materialized(plan, lowered),
            _ => self.run_ml_runtime_streaming(plan, lowered),
        }
    }

    /// Streaming ML-runtime path: the relational plan compiles to a
    /// [`BatchStream`], each partition flows through scan filters, statistics
    /// pruning, ML scoring, output predicates, and the final projection as
    /// one fused per-partition task on the process-wide work-stealing pool
    /// (bounded by this query's `degree_of_parallelism`), and partitions are
    /// concatenated exactly once at the output boundary (aggregates being the
    /// one remaining pipeline breaker).
    fn run_ml_runtime_streaming(
        &self,
        plan: &UnifiedPlan,
        lowered: &MlRuntimePlan,
    ) -> Result<PathOutcome> {
        let runtime = MlRuntime::with_config(self.config.ml_runtime.clone());
        // one engine/runtime boundary crossing per query, not per partition
        runtime.charge_invocation();
        let ctx = self.execution_context(true);
        let dop = ctx.degree_of_parallelism;
        let wall = Instant::now();

        // 1. the relational side as a partition stream
        let exec = Executor::new();
        let partition_report = lowered.partition_report.clone();
        let manual_pruned = Arc::new(AtomicUsize::new(0));
        let manual_copies = Arc::new(AtomicUsize::new(0));
        let models = lowered.models.clone();
        let source_schema = lowered.schema.clone();
        let selection_vectors = ctx.selection_vectors;
        let stream = match (&lowered.data, &lowered.scan_table) {
            (None, Some(table_name)) => {
                // per-partition compiled models: stream the table directly so
                // partition indices stay aligned with the model vector even
                // when statistics prune some partitions
                let table = self.catalog.table(table_name)?;
                let preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
                let pruned = manual_pruned.clone();
                let copies = manual_copies.clone();
                BatchStream::from_table(&table).map(move |mut item| {
                    if let Some(stats) = &item.stats {
                        if !may_satisfy_all(&preds, stats) {
                            pruned.fetch_add(1, Ordering::Relaxed);
                            return Ok(None);
                        }
                    }
                    for p in &preds {
                        let mask = evaluate_predicate(p, &item.batch).map_err(stream_err)?;
                        if item.apply_mask(&mask, selection_vectors)? {
                            copies.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok(Some(item))
                })
            }
            (Some(data), _) => exec.execute_stream(data, &self.catalog, &ctx)?,
            (None, None) => {
                return Err(RavenError::Ml(
                    "lowered ML-runtime plan has neither a data plan nor a scan table".into(),
                ))
            }
        };

        // 2. per-partition scoring and post-processing, fused into the
        //    stream. Scoring consumes (batch, selection): selected rows are
        //    gathered straight from the source columns into the runtime's
        //    inputs (zero-copy filter→score) and the scores scatter back as
        //    one full-length column, so the selection keeps flowing.
        let ml_nanos = Arc::new(AtomicU64::new(0));
        let score_op: raven_columnar::StreamOp = {
            let runtime = runtime.clone();
            let models = models.clone();
            let prediction = plan.prediction_column.clone();
            let ml_nanos = ml_nanos.clone();
            Arc::new(move |mut item: StreamBatch| {
                let t0 = Instant::now();
                let compiled = if models.len() > 1 {
                    models.get(item.partition).unwrap_or(&models[0])
                } else {
                    &models[0]
                };
                item.batch = runtime
                    .score_batch_into_selected(
                        compiled,
                        &item.batch,
                        item.selection.as_ref(),
                        &prediction,
                    )
                    .map_err(stream_err)?;
                ml_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                Ok(Some(item))
            })
        };
        let post_op: raven_columnar::StreamOp = {
            let output_preds: Vec<Expr> = plan.output_predicates().into_iter().cloned().collect();
            let projection = plan.projection.clone();
            let copies = manual_copies.clone();
            Arc::new(move |mut item: StreamBatch| {
                for p in &output_preds {
                    let mask = evaluate_predicate(p, &item.batch).map_err(stream_err)?;
                    if item.apply_mask(&mask, selection_vectors)? {
                        copies.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if !projection.is_empty() {
                    // projection replaces the columns row-aligned with the
                    // source, so the selection survives untouched
                    let mut columns = Vec::with_capacity(projection.len());
                    let mut fields = Vec::with_capacity(projection.len());
                    for e in &projection {
                        let c = evaluate(e, &item.batch).map_err(stream_err)?;
                        fields.push(Field::new(e.output_name(), c.data_type()));
                        columns.push(c);
                    }
                    item.batch =
                        Batch::new(Arc::new(raven_columnar::Schema::new(fields)?), columns)?;
                }
                Ok(Some(item))
            })
        };

        // 3. drive the pipeline partition-parallel; the single gather of
        //    surviving rows happens at the final output boundary, fused into
        //    the concat
        let scored = stream
            .map({
                let op = score_op.clone();
                move |item| op(item)
            })
            .map({
                let op = post_op.clone();
                move |item| op(item)
            });
        let items = scored.collect(dop)?;
        let streamed_partitions = items.len();
        let mut batch = if items.is_empty() {
            // every partition pruned/filtered away: push one empty batch of
            // the source schema through the same operator chain so the output
            // schema (score column, projection) is still correct
            let empty = StreamBatch::new(Batch::empty(source_schema)?, 0);
            let item = score_op(empty)?.and_then(|item| post_op(item).transpose());
            match item {
                Some(item) => item?.compact()?.batch,
                None => {
                    return Err(RavenError::Ml(
                        "streaming pipeline dropped the boundary batch".into(),
                    ))
                }
            }
        } else {
            let parts: Vec<(&Batch, Option<&raven_columnar::SelectionVector>)> = items
                .iter()
                .map(|i| (&i.batch, i.selection.as_ref()))
                .collect();
            Batch::concat_selected(&parts)?
        };

        // 4. the final aggregate is a pipeline breaker over the concatenated
        //    result
        batch = self.apply_aggregate(plan, batch)?;

        // Per-partition scoring durations accumulate across concurrent
        // workers, so at dop > 1 the sum is CPU time, not wall time. Cap at
        // the wall clock so `data_time + ml_time` always partitions the
        // measured total: exact at dop 1, a scoring-share attribution above.
        let wall_time = wall.elapsed();
        let ml_time = Duration::from_nanos(ml_nanos.load(Ordering::Relaxed)).min(wall_time);
        let mut outcome = PathOutcome::new(batch, ExecutionMode::Streaming);
        outcome.data_time = wall_time.saturating_sub(ml_time);
        outcome.ml_time = ml_time;
        outcome.partition_report = partition_report;
        outcome.pruned_partitions =
            exec.metrics().partitions_pruned() + manual_pruned.load(Ordering::Relaxed);
        outcome.streamed_partitions = streamed_partitions;
        outcome.intermediate_materializations =
            exec.metrics().intermediate_materializations() + manual_copies.load(Ordering::Relaxed);
        outcome.join_build_rows = exec.metrics().join_build_rows();
        outcome.join_probe_batches = exec.metrics().join_probe_batches();
        Ok(outcome)
    }

    /// Legacy materialized ML-runtime path: the relational result is
    /// concatenated into one batch before scoring. Kept as the §7 baseline
    /// (and for the row-interpreted / materializing baseline modes), and as
    /// the plan the streaming pipeline is costed against.
    fn run_ml_runtime_materialized(
        &self,
        plan: &UnifiedPlan,
        lowered: &MlRuntimePlan,
    ) -> Result<PathOutcome> {
        let runtime = MlRuntime::with_config(self.config.ml_runtime.clone());
        let mut data_time = Duration::ZERO;
        let mut ml_time = Duration::ZERO;

        let partition_report = lowered.partition_report.clone();
        // The materialized baseline deep-copies surviving rows at every
        // filter; count the copies so the report contrasts with the
        // zero-materialization streaming path.
        let mut copies = 0usize;
        let mut data_counters = EngineCounters::default();
        let mut scored = match (&lowered.data, &lowered.scan_table) {
            (None, Some(table_name)) => {
                // execute partition by partition with its specialized model
                let table = self.catalog.table(table_name)?;
                let input_preds: Vec<Expr> = plan.input_predicates().into_iter().cloned().collect();
                let mut parts = Vec::new();
                for (batch, compiled) in table.partitions().iter().zip(lowered.models.iter()) {
                    let d0 = Instant::now();
                    let mut batch = batch.clone();
                    for p in &input_preds {
                        let mask = evaluate_predicate(p, &batch)?;
                        batch = batch.filter(&mask)?;
                        copies += 1;
                    }
                    data_time += d0.elapsed();
                    let m0 = Instant::now();
                    let scores = self.score_batch(&runtime, compiled, &batch)?;
                    ml_time += m0.elapsed();
                    parts.push(attach_scores(&batch, &plan.prediction_column, scores)?);
                }
                Batch::concat(&parts)?
            }
            (Some(data), _) => {
                let d0 = Instant::now();
                // the legacy plan scans every partition: no stats pruning
                let (batch, counters) = self.run_optimized(data, false)?;
                copies += counters.intermediate_materializations;
                // this path models engines with no streaming pipeline: only
                // the join counters carry over, partitions stay unreported
                data_counters.join_build_rows = counters.join_build_rows;
                data_counters.join_probe_batches = counters.join_probe_batches;
                data_time += d0.elapsed();
                let m0 = Instant::now();
                let scores = self.score_batch(&runtime, &lowered.models[0], &batch)?;
                ml_time += m0.elapsed();
                attach_scores(&batch, &plan.prediction_column, scores)?
            }
            (None, None) => {
                return Err(RavenError::Ml(
                    "lowered ML-runtime plan has neither a data plan nor a scan table".into(),
                ))
            }
        };

        let d1 = Instant::now();
        let post_copies;
        (scored, post_copies) = self.post_process(plan, scored)?;
        copies += post_copies;
        data_time += d1.elapsed();
        let mut outcome = PathOutcome::new(scored, ExecutionMode::Materialized);
        outcome.data_time = data_time;
        outcome.ml_time = ml_time;
        outcome.partition_report = partition_report;
        outcome.apply_counters(data_counters);
        outcome.intermediate_materializations = copies;
        Ok(outcome)
    }

    fn score_batch(
        &self,
        runtime: &MlRuntime,
        compiled: &CompiledPipeline,
        batch: &Batch,
    ) -> Result<Vec<f64>> {
        let pipeline: &Pipeline = compiled.pipeline();
        match self.config.baseline {
            BaselineMode::Vectorized => Ok(runtime.run_batch_compiled(compiled, batch)?),
            BaselineMode::RowInterpreted => Ok(runtime.run_batch_row_interpreted(pipeline, batch)?),
            BaselineMode::Materialized => {
                // MADlib-style: evaluate the pipeline one operator at a time,
                // materializing every intermediate result into fresh columnar
                // buffers (two extra copies per operator), single threaded.
                let mut inputs = bind_batch(pipeline, batch)?;
                let mut partial = Pipeline {
                    name: pipeline.name.clone(),
                    inputs: pipeline.inputs.clone(),
                    nodes: vec![],
                    output: pipeline.output.clone(),
                };
                for node in &pipeline.nodes {
                    partial.nodes.push(node.clone());
                    partial.output = node.output.clone();
                    let out = runtime.run(&partial, &inputs)?;
                    // materialize: round-trip the value through owned buffers
                    let materialized = match out {
                        raven_ml::FrameValue::Numeric(m) => {
                            let copied =
                                raven_ml::Matrix::new(m.rows(), m.cols(), m.data().to_vec())
                                    .map_err(|e| RavenError::Ml(e.to_string()))?;
                            raven_ml::FrameValue::Numeric(copied)
                        }
                        other => other,
                    };
                    // expose the materialized value as a new pipeline input so
                    // later operators read from "storage"
                    inputs.insert(node.output.clone(), materialized);
                    partial.inputs.push(raven_ml::PipelineInput {
                        name: node.output.clone(),
                        kind: raven_ml::InputKind::Numeric,
                    });
                    partial.nodes.clear();
                }
                let out = inputs
                    .remove(&pipeline.output)
                    .ok_or_else(|| RavenError::Ml("materialized output missing".into()))?;
                let m = out
                    .as_numeric()
                    .map_err(|e| RavenError::Ml(e.to_string()))?;
                Ok(m.column(0))
            }
        }
    }

    /// MLtoDNN lowering: compile the model node to a tensor model bound to
    /// the configured device, and pre-optimize the data-side plan.
    fn lower_ml_to_dnn(&self, plan: &UnifiedPlan) -> Result<PreparedArtifact> {
        let dnn = apply_ml_to_dnn(
            &plan.pipeline,
            self.config.dnn_strategy,
            self.config.device.clone(),
        )?;
        let data_plan = self.data_side_plan(plan);
        let optimized = self
            .relational_optimizer()
            .optimize(&data_plan, &self.catalog)?;
        Ok(PreparedArtifact::Dnn {
            dnn: Arc::new(dnn),
            data: Arc::new(optimized),
        })
    }

    /// MLtoDNN execution: data engine → featurizers on the ML runtime →
    /// compiled tensor model on the configured device. The tensor model
    /// consumes one dense feature matrix, so the data side materializes at
    /// the featurization boundary (the relational plan itself still streams).
    fn run_ml_to_dnn(
        &self,
        plan: &UnifiedPlan,
        dnn: &crate::mltodnn::DnnPlan,
        data: &LogicalPlan,
    ) -> Result<PathOutcome> {
        let runtime = MlRuntime::with_config(self.config.ml_runtime.clone());

        let (mode, pruning) = self.transform_path_mode();
        let d0 = Instant::now();
        let (batch, counters) = self.run_optimized(data, pruning)?;
        let mut copies = counters.intermediate_materializations;
        let mut data_time = d0.elapsed();

        let m0 = Instant::now();
        let inputs = bind_batch(&dnn.featurizer, &batch)?;
        let features = runtime.run(&dnn.featurizer, &inputs)?;
        let features = features
            .as_numeric()
            .map_err(|e| RavenError::Ml(e.to_string()))?;
        let featurize_time = m0.elapsed();
        let run = dnn.model.run(features)?;
        let modeled = dnn.model.device.is_simulated();
        let ml_time = featurize_time + run.reported;

        let d1 = Instant::now();
        let mut scored = attach_scores(&batch, &plan.prediction_column, run.scores)?;
        let post_copies;
        (scored, post_copies) = self.post_process(plan, scored)?;
        copies += post_copies;
        data_time += d1.elapsed();
        let mut outcome = PathOutcome::new(scored, mode);
        outcome.data_time = data_time;
        outcome.ml_time = ml_time;
        outcome.ml_time_modeled = modeled;
        outcome.apply_counters(counters);
        outcome.intermediate_materializations = copies;
        Ok(outcome)
    }

    /// Apply output-side predicates, the final projection, and the aggregate
    /// to a scored batch (materialized paths; the streaming path fuses the
    /// first two per partition and only breaks the pipeline for the
    /// aggregate). Returns the result plus the number of full-batch filter
    /// copies performed.
    fn post_process(&self, plan: &UnifiedPlan, mut batch: Batch) -> Result<(Batch, usize)> {
        let mut copies = 0usize;
        for p in plan.output_predicates() {
            let mask = evaluate_predicate(p, &batch)?;
            batch = batch.filter(&mask)?;
            copies += 1;
        }
        if !plan.projection.is_empty() {
            let mut columns = Vec::with_capacity(plan.projection.len());
            let mut fields = Vec::with_capacity(plan.projection.len());
            for e in &plan.projection {
                let c = evaluate(e, &batch)?;
                fields.push(Field::new(e.output_name(), c.data_type()));
                columns.push(c);
            }
            batch = Batch::new(Arc::new(raven_columnar::Schema::new(fields)?), columns)?;
        }
        Ok((self.apply_aggregate(plan, batch)?, copies))
    }

    /// Apply the plan's final aggregate (if any) by registering the scored
    /// batch with the relational executor — the one pipeline breaker shared
    /// by the streaming and materialized paths.
    fn apply_aggregate(&self, plan: &UnifiedPlan, batch: Batch) -> Result<Batch> {
        let Some((group_by, aggs)) = &plan.aggregate else {
            return Ok(batch);
        };
        let mut catalog = Catalog::new();
        catalog.register(Table::from_batch("__scored", batch)?);
        let agg_plan = LogicalPlan::scan("__scored").aggregate(group_by.clone(), aggs.clone());
        let exec = Executor::new();
        Ok(exec.execute(&agg_plan, &catalog, &ExecutionContext::default())?)
    }
}

fn attach_scores(batch: &Batch, name: &str, scores: Vec<f64>) -> Result<Batch> {
    Ok(batch.with_column(
        Field::new(name, DataType::Float64),
        Arc::new(Column::Float64(scores)),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_columnar::TableBuilder;
    use raven_ml::{train_pipeline, ModelType, PipelineSpec};

    /// Build a small hospital-like scenario: one table, a trained DT pipeline,
    /// and the running-example style query.
    fn session(model: ModelType) -> (RavenSession, String) {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 400;
        let age: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..90.0)).collect();
        let bmi: Vec<f64> = (0..n).map(|_| rng.gen_range(15.0..45.0)).collect();
        let asthma: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let rcount: Vec<i64> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let label: Vec<f64> = (0..n)
            .map(|i| {
                let risk = 0.04 * (age[i] - 55.0) + 0.08 * (bmi[i] - 30.0) + asthma[i] as f64;
                if risk > 0.3 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let table = TableBuilder::new("patients")
            .add_i64("id", (0..n as i64).collect())
            .add_f64("age", age)
            .add_f64("bmi", bmi)
            .add_i64("asthma", asthma)
            .add_i64("rcount", rcount)
            .build()
            .unwrap();
        let train_batch = table
            .to_batch()
            .unwrap()
            .with_column(
                Field::new("label", DataType::Float64),
                Arc::new(Column::Float64(label)),
            )
            .unwrap();
        let pipeline = train_pipeline(
            &train_batch,
            &PipelineSpec {
                name: "risk_model".into(),
                numeric_inputs: vec!["age".into(), "bmi".into()],
                categorical_inputs: vec!["asthma".into()],
                label: "label".into(),
                model,
                seed: 4,
            },
        )
        .unwrap();
        let mut session = RavenSession::new();
        session.register_table(table);
        session.register_model(pipeline);
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.asthma = 1 AND p.risk >= 0.5"
            .to_string();
        (session, query)
    }

    fn ids(batch: &Batch) -> Vec<i64> {
        let mut v = batch
            .column_by_name("id")
            .unwrap()
            .as_i64()
            .unwrap()
            .to_vec();
        v.sort();
        v
    }

    #[test]
    fn optimized_and_unoptimized_results_agree() {
        for model in [
            ModelType::DecisionTree { max_depth: 6 },
            ModelType::LogisticRegression { l1_alpha: 0.01 },
            ModelType::GradientBoosting {
                n_estimators: 8,
                max_depth: 3,
                learning_rate: 0.2,
            },
        ] {
            let (mut session, query) = session(model);
            let optimized = session.sql(&query).unwrap();
            *session.config_mut() = RavenConfig::no_opt();
            let baseline = session.sql(&query).unwrap();
            assert_eq!(
                ids(&optimized.batch),
                ids(&baseline.batch),
                "result mismatch between optimized and unoptimized execution"
            );
            assert!(optimized.report.output_rows > 0);
        }
    }

    #[test]
    fn transforms_are_selected_and_reported() {
        let (mut session, query) = session(ModelType::DecisionTree { max_depth: 5 });
        // heuristic should choose MLtoSQL for a small decision tree
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::MlToSql);
        assert!(out.report.ml_time.is_zero());

        // force the ML runtime
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::None);
        assert!(
            out.report.cross.projection_pushdown_applied
                || out.report.cross.predicate_pruning_applied
        );

        // force MLtoDNN on the simulated GPU
        session.config_mut().runtime_policy = RuntimePolicy::Force(TransformChoice::MlToDnn);
        session.config_mut().device = Device::SimulatedGpu(raven_tensor::GpuProfile::tesla_k80());
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.transform, TransformChoice::MlToDnn);
        assert!(out.report.ml_time_modeled);
    }

    #[test]
    fn all_execution_paths_agree() {
        let (mut session, query) = session(ModelType::GradientBoosting {
            n_estimators: 6,
            max_depth: 3,
            learning_rate: 0.2,
        });
        let mut results = Vec::new();
        for choice in [
            TransformChoice::None,
            TransformChoice::MlToSql,
            TransformChoice::MlToDnn,
        ] {
            session.config_mut().runtime_policy = RuntimePolicy::Force(choice);
            let out = session.sql(&query).unwrap();
            results.push(ids(&out.batch));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn baselines_agree_with_vectorized() {
        let (mut session, query) = session(ModelType::DecisionTree { max_depth: 4 });
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let vectorized = session.sql(&query).unwrap();
        session.config_mut().baseline = BaselineMode::RowInterpreted;
        let row = session.sql(&query).unwrap();
        session.config_mut().baseline = BaselineMode::Materialized;
        let mat = session.sql(&query).unwrap();
        assert_eq!(ids(&vectorized.batch), ids(&row.batch));
        assert_eq!(ids(&vectorized.batch), ids(&mat.batch));
    }

    #[test]
    fn streaming_prunes_partitions_and_matches_materialized() {
        use raven_columnar::{partition_by_column, PartitionSpec};
        let (mut session, _) = session(ModelType::DecisionTree { max_depth: 5 });
        let table = session.catalog().table("patients").unwrap();
        let partitioned = partition_by_column(
            &table,
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions: 8,
            },
        )
        .unwrap();
        session.register_table(partitioned);
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        session.config_mut().degree_of_parallelism = 4;
        // age >= 80 only touches the top range partition(s)
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.age >= 80 AND p.risk >= 0.0";

        session.config_mut().execution_mode = ExecutionMode::Streaming;
        let streamed = session.sql(query).unwrap();
        assert_eq!(streamed.report.execution_mode, ExecutionMode::Streaming);
        assert!(
            streamed.report.pruned_partitions >= 4,
            "expected most range partitions pruned, got {}",
            streamed.report.pruned_partitions
        );
        assert!(streamed.report.streamed_partitions >= 1);
        assert_eq!(
            streamed.report.pruned_partitions + streamed.report.streamed_partitions,
            8
        );

        session.config_mut().execution_mode = ExecutionMode::Materialized;
        let materialized = session.sql(query).unwrap();
        assert_eq!(
            materialized.report.execution_mode,
            ExecutionMode::Materialized
        );
        assert_eq!(materialized.report.pruned_partitions, 0);
        assert_eq!(ids(&streamed.batch), ids(&materialized.batch));
        assert!(
            streamed.report.output_rows > 0,
            "predicate should keep rows"
        );
    }

    #[test]
    fn streaming_partition_models_stay_aligned_under_pruning() {
        use raven_columnar::{partition_by_column, PartitionSpec};
        let (mut session, _) = session(ModelType::DecisionTree { max_depth: 6 });
        let table = session.catalog().table("patients").unwrap();
        let partitioned = partition_by_column(
            &table,
            &PartitionSpec::ByDistinctValue {
                column: "rcount".into(),
            },
        )
        .unwrap();
        session.register_table(partitioned);
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        session.config_mut().enable_partition_models = true;
        session.config_mut().degree_of_parallelism = 2;
        // rcount >= 2 prunes the rcount ∈ {0, 1} partitions entirely
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.rcount >= 2 AND p.risk >= 0.0";

        session.config_mut().execution_mode = ExecutionMode::Streaming;
        let streamed = session.sql(query).unwrap();
        assert!(streamed.report.data_induced.partition_models >= 2);
        assert!(streamed.report.pruned_partitions >= 1);

        session.config_mut().execution_mode = ExecutionMode::Materialized;
        let materialized = session.sql(query).unwrap();
        assert_eq!(ids(&streamed.batch), ids(&materialized.batch));
    }

    #[test]
    fn auto_mode_costs_streaming_vs_materialized() {
        let (mut session, query) = session(ModelType::DecisionTree { max_depth: 4 });
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        session.config_mut().execution_mode = ExecutionMode::Auto;
        // 400 rows in a single partition: the cost model picks materialized
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.execution_mode, ExecutionMode::Materialized);

        // a larger table in many partitions at dop 4: streaming wins
        use raven_columnar::{partition_by_column, PartitionSpec};
        let table = session.catalog().table("patients").unwrap();
        let bigger = table.replicate(8, &["id"]).unwrap();
        let partitioned =
            partition_by_column(&bigger, &PartitionSpec::RoundRobin { partitions: 8 }).unwrap();
        session.register_table(partitioned);
        session.config_mut().degree_of_parallelism = 4;
        let out = session.sql(&query).unwrap();
        assert_eq!(out.report.execution_mode, ExecutionMode::Streaming);
    }

    #[test]
    fn forced_transforms_respect_materialized_mode() {
        use raven_columnar::{partition_by_column, PartitionSpec};
        let (mut session, _) = session(ModelType::DecisionTree { max_depth: 4 });
        let table = session.catalog().table("patients").unwrap();
        let partitioned = partition_by_column(
            &table,
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions: 8,
            },
        )
        .unwrap();
        session.register_table(partitioned);
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.age >= 80 AND p.risk >= 0.0";
        for choice in [TransformChoice::MlToSql, TransformChoice::MlToDnn] {
            session.config_mut().runtime_policy = RuntimePolicy::Force(choice);
            // explicit materialized config: legacy scan, nothing pruned
            session.config_mut().execution_mode = ExecutionMode::Materialized;
            let out = session.sql(query).unwrap();
            assert_eq!(out.report.execution_mode, ExecutionMode::Materialized);
            assert_eq!(out.report.pruned_partitions, 0, "{choice:?}");
            // streaming config: the relational side prunes via statistics
            session.config_mut().execution_mode = ExecutionMode::Streaming;
            let streamed = session.sql(query).unwrap();
            assert_eq!(streamed.report.execution_mode, ExecutionMode::Streaming);
            assert!(streamed.report.pruned_partitions > 0, "{choice:?}");
            assert_eq!(ids(&out.batch), ids(&streamed.batch));
        }
    }

    #[test]
    fn streaming_ml_time_never_exceeds_wall_time() {
        use raven_columnar::{partition_by_column, PartitionSpec};
        let (mut session, query) = session(ModelType::GradientBoosting {
            n_estimators: 8,
            max_depth: 3,
            learning_rate: 0.2,
        });
        let table = session.catalog().table("patients").unwrap();
        let partitioned =
            partition_by_column(&table, &PartitionSpec::RoundRobin { partitions: 6 }).unwrap();
        session.register_table(partitioned);
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        session.config_mut().execution_mode = ExecutionMode::Streaming;
        session.config_mut().degree_of_parallelism = 4;
        let out = session.sql(&query).unwrap();
        // scoring time is summed across workers but capped at the wall
        // clock, so the data/ML split always partitions the total
        assert!(out.report.ml_time <= out.report.total_time + out.report.optimization_time);
        assert!(out.report.data_time + out.report.ml_time <= out.report.total_time * 2);
    }

    #[test]
    fn streaming_empty_result_keeps_output_schema() {
        let (mut session, _) = session(ModelType::DecisionTree { max_depth: 4 });
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        session.config_mut().execution_mode = ExecutionMode::Streaming;
        let query = "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
                     WITH (risk float) AS p WHERE d.age > 1000 AND p.risk >= 0.0";
        let out = session.sql(query).unwrap();
        assert_eq!(out.batch.num_rows(), 0);
        assert_eq!(out.batch.schema().names(), vec!["id", "risk"]);
    }

    #[test]
    fn prepared_statements_replay_and_refuse_stale_catalogs() {
        let (session, query) = session(ModelType::DecisionTree { max_depth: 5 });
        let prepared = session.prepare(&query).unwrap();
        let direct = session.sql(&query).unwrap();
        let replayed = session.execute_prepared(&prepared).unwrap();
        assert_eq!(ids(&direct.batch), ids(&replayed.batch));
        assert!(prepared.is_fresh(&session));

        // registering anything bumps an epoch; the stale statement must
        // error instead of silently executing over the changed catalog
        let mut session = session;
        let table = session.catalog().table("patients").unwrap();
        session.register_table(table.as_ref().clone());
        assert!(!prepared.is_fresh(&session));
        let err = session.execute_prepared(&prepared).unwrap_err();
        assert!(matches!(err, RavenError::Config(_)), "{err}");
        assert!(err.to_string().contains("stale"));
    }

    /// A star-shaped scenario: the model's declared inputs include a
    /// dimension column it never actually uses. Model-projection pushdown
    /// removes the input, the data side stops requiring the dimension table,
    /// and the optimizer's PK-FK join elimination drops the dimension join
    /// entirely — observable in the EXPLAIN output and the join counters.
    #[test]
    fn model_pruning_eliminates_dimension_join() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 240;
        let age: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..90.0)).collect();
        let bmi: Vec<f64> = (0..n).map(|_| rng.gen_range(15.0..45.0)).collect();
        let label: Vec<f64> = (0..n)
            .map(|i| {
                if 0.04 * (age[i] - 55.0) + 0.08 * (bmi[i] - 30.0) > 0.2 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let fact = TableBuilder::new("fact")
            .add_i64("id", (0..n as i64).collect())
            .add_f64("age", age)
            .add_f64("bmi", bmi)
            .add_i64("dim_id", (0..n as i64).map(|i| i % 8).collect())
            .build()
            .unwrap();
        let dim = TableBuilder::new("dim")
            .add_i64("did", (0..8).collect())
            .add_f64("dim_val", (0..8).map(|i| i as f64 * 1.5).collect())
            .build()
            .unwrap();
        let train_batch = fact
            .to_batch()
            .unwrap()
            .with_column(
                Field::new("dim_val", DataType::Float64),
                Arc::new(Column::Float64(
                    (0..n).map(|i| (i % 8) as f64 * 1.5).collect(),
                )),
            )
            .unwrap()
            .with_column(
                Field::new("label", DataType::Float64),
                Arc::new(Column::Float64(label)),
            )
            .unwrap();
        let mut pipeline = train_pipeline(
            &train_batch,
            &PipelineSpec {
                name: "star_model".into(),
                numeric_inputs: vec!["age".into(), "bmi".into(), "dim_val".into()],
                categorical_inputs: vec![],
                label: "label".into(),
                model: ModelType::LogisticRegression { l1_alpha: 0.01 },
                seed: 11,
            },
        )
        .unwrap();
        // make the model provably ignore the dimension feature: zero its
        // weight so `used_features` excludes it (model sparsity, §2.1)
        for node in &mut pipeline.nodes {
            if let raven_ml::Operator::LogisticRegression(m) = &mut node.op {
                m.weights[2] = 0.0;
            }
        }

        let mut session = RavenSession::new();
        session.register_table(fact);
        session.register_table(dim);
        session.config_mut().runtime_policy = RuntimePolicy::NoTransform;
        let data = LogicalPlan::scan("fact").join(LogicalPlan::scan("dim"), "dim_id", "did");
        let mut plan =
            raven_ir::UnifiedPlan::new(data, pipeline, "risk", session.catalog()).unwrap();
        plan.projection = vec![col("id"), col("risk")];

        // optimized: the unused dim_val input is pruned, so the dimension
        // join disappears and no hash table is ever built
        let prepared = session.prepare_plan(&plan).unwrap();
        let explain = session.explain_prepared(&prepared).unwrap();
        assert!(!explain.contains("Join:"), "join survived:\n{explain}");
        assert!(explain.contains("rows≈"), "{explain}");
        let out = session.execute_prepared(&prepared).unwrap();
        assert!(out
            .report
            .cross
            .removed_inputs
            .iter()
            .any(|i| i == "dim_val"));
        assert_eq!(out.report.join_build_rows, 0);

        // control: with projection pushdown disabled the dimension column
        // stays required, the join executes, and the build side is the
        // 8-row dimension table
        session.config_mut().enable_projection_pushdown = false;
        let prepared = session.prepare_plan(&plan).unwrap();
        let explain = session.explain_prepared(&prepared).unwrap();
        assert!(explain.contains("Join:"), "{explain}");
        let control = session.execute_prepared(&prepared).unwrap();
        assert_eq!(control.report.join_build_rows, 8);
        assert!(control.report.join_probe_batches >= 1);
        assert_eq!(ids(&out.batch), ids(&control.batch));
        assert_eq!(out.batch.num_rows(), n);
    }

    #[test]
    fn aggregate_queries_work() {
        let (session, _) = session(ModelType::DecisionTree { max_depth: 4 });
        let plan = parse_prediction_query(
            "SELECT d.id, p.risk FROM PREDICT(MODEL = risk_model, DATA = patients AS d) \
             WITH (risk float) AS p",
            session.registry(),
            session.catalog(),
        )
        .unwrap();
        let mut plan = plan;
        plan.projection = vec![];
        plan.aggregate = Some((
            vec![],
            vec![raven_relational::AggregateExpr {
                func: raven_relational::AggregateFunction::Avg,
                arg: col("risk"),
                alias: "avg_risk".into(),
            }],
        ));
        let out = session.execute(&plan).unwrap();
        assert_eq!(out.batch.num_rows(), 1);
        let avg = out
            .batch
            .column_by_name("avg_risk")
            .unwrap()
            .as_f64()
            .unwrap()[0];
        assert!((0.0..=1.0).contains(&avg));
    }
}
