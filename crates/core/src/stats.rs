//! Pipeline statistics (the 22 features of §5.2) used by the data-driven
//! optimization strategies.

use crate::layout::FeatureLayout;
use raven_ml::{Operator, OperatorCategory, Pipeline};
use serde::{Deserialize, Serialize};

/// The statistics gathered for a trained pipeline, mirroring the feature set
/// the paper extracts for its rule-based / ML-based strategies (§5.2):
/// pipeline shape (inputs, operators, featurizers), one-hot encoder widths,
/// and tree-ensemble complexity (number of trees, depth statistics, node
/// counts), plus sparsity information.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Number of raw data inputs to the pipeline.
    pub n_inputs: f64,
    /// Number of numeric inputs.
    pub n_numeric_inputs: f64,
    /// Number of categorical inputs.
    pub n_categorical_inputs: f64,
    /// Number of features after featurization (the model's input width).
    pub n_features: f64,
    /// Total number of operators in the pipeline.
    pub n_operators: f64,
    /// Number of featurizer operators.
    pub n_featurizers: f64,
    /// Number of one-hot encoders.
    pub n_one_hot_encoders: f64,
    /// Mean number of outputs across one-hot encoders.
    pub mean_ohe_outputs: f64,
    /// Maximum number of outputs across one-hot encoders.
    pub max_ohe_outputs: f64,
    /// Number of scaler operators.
    pub n_scalers: f64,
    /// 1.0 when the model is tree-based, 0.0 otherwise.
    pub is_tree_model: f64,
    /// 1.0 when the model is linear, 0.0 otherwise.
    pub is_linear_model: f64,
    /// Number of trees in the ensemble (0 for linear models).
    pub n_trees: f64,
    /// Mean tree depth (0 for linear models, as in the paper).
    pub mean_tree_depth: f64,
    /// Maximum tree depth.
    pub max_tree_depth: f64,
    /// Standard deviation of tree depths.
    pub std_tree_depth: f64,
    /// Total number of tree nodes.
    pub n_tree_nodes: f64,
    /// Mean leaves per tree.
    pub mean_leaves: f64,
    /// Number of features actually used by the model.
    pub n_used_features: f64,
    /// Fraction of features unused by the model (the sparsity of §2.1).
    pub unused_feature_fraction: f64,
    /// Non-zero weights for linear models (0 for trees).
    pub n_nonzero_weights: f64,
    /// Estimated cost of the generated SQL expression (CASE nodes) per row.
    pub sql_expression_nodes: f64,
}

impl PipelineStats {
    /// Gather statistics from a pipeline.
    pub fn from_pipeline(pipeline: &Pipeline) -> Self {
        let mut stats = PipelineStats {
            n_inputs: pipeline.inputs.len() as f64,
            n_operators: pipeline.node_count() as f64,
            n_features: pipeline.feature_width() as f64,
            ..Default::default()
        };
        stats.n_numeric_inputs = pipeline
            .inputs
            .iter()
            .filter(|i| i.kind == raven_ml::InputKind::Numeric)
            .count() as f64;
        stats.n_categorical_inputs = stats.n_inputs - stats.n_numeric_inputs;

        let cats = pipeline.category_counts();
        stats.n_featurizers = *cats.get(&OperatorCategory::Featurizer).unwrap_or(&0) as f64;

        let mut ohe_widths = Vec::new();
        for node in &pipeline.nodes {
            match &node.op {
                Operator::OneHotEncoder(e) => ohe_widths.push(e.width() as f64),
                Operator::Scaler(_) => stats.n_scalers += 1.0,
                _ => {}
            }
        }
        stats.n_one_hot_encoders = ohe_widths.len() as f64;
        if !ohe_widths.is_empty() {
            stats.mean_ohe_outputs = ohe_widths.iter().sum::<f64>() / ohe_widths.len() as f64;
            stats.max_ohe_outputs = ohe_widths.iter().cloned().fold(0.0, f64::max);
        }

        if let Some(model) = pipeline.model_node() {
            match &model.op {
                Operator::TreeEnsemble(e) => {
                    stats.is_tree_model = 1.0;
                    stats.n_trees = e.n_trees() as f64;
                    stats.mean_tree_depth = e.mean_depth();
                    stats.max_tree_depth = e.max_depth() as f64;
                    let depths: Vec<f64> = e.trees.iter().map(|t| t.depth() as f64).collect();
                    stats.std_tree_depth = std_dev(&depths);
                    stats.n_tree_nodes = e.total_nodes() as f64;
                    stats.mean_leaves = if e.trees.is_empty() {
                        0.0
                    } else {
                        e.trees.iter().map(|t| t.leaf_count() as f64).sum::<f64>()
                            / e.trees.len() as f64
                    };
                    stats.n_used_features = e.used_features().len() as f64;
                    stats.sql_expression_nodes = (e.total_nodes() * 4) as f64;
                }
                Operator::LogisticRegression(m) => {
                    stats.is_linear_model = 1.0;
                    stats.n_nonzero_weights = m.used_features().len() as f64;
                    stats.n_used_features = stats.n_nonzero_weights;
                    stats.sql_expression_nodes = (m.used_features().len() * 3 + 8) as f64;
                }
                Operator::LinearRegression(m) => {
                    stats.is_linear_model = 1.0;
                    stats.n_nonzero_weights = m.used_features().len() as f64;
                    stats.n_used_features = stats.n_nonzero_weights;
                    stats.sql_expression_nodes = (m.used_features().len() * 3 + 2) as f64;
                }
                Operator::LinearSvm(m) => {
                    stats.is_linear_model = 1.0;
                    stats.n_nonzero_weights = m.used_features().len() as f64;
                    stats.n_used_features = stats.n_nonzero_weights;
                    stats.sql_expression_nodes = (m.used_features().len() * 3 + 2) as f64;
                }
                _ => {}
            }
        }
        if stats.n_features > 0.0 {
            stats.unused_feature_fraction =
                1.0 - (stats.n_used_features / stats.n_features).min(1.0);
        }
        // validate the layout is analyzable (used features need feature width)
        let _ = FeatureLayout::analyze(pipeline);
        stats
    }

    /// Names of the statistics, in the order of [`PipelineStats::to_vector`].
    pub fn feature_names() -> Vec<&'static str> {
        vec![
            "n_inputs",
            "n_numeric_inputs",
            "n_categorical_inputs",
            "n_features",
            "n_operators",
            "n_featurizers",
            "n_one_hot_encoders",
            "mean_ohe_outputs",
            "max_ohe_outputs",
            "n_scalers",
            "is_tree_model",
            "is_linear_model",
            "n_trees",
            "mean_tree_depth",
            "max_tree_depth",
            "std_tree_depth",
            "n_tree_nodes",
            "mean_leaves",
            "n_used_features",
            "unused_feature_fraction",
            "n_nonzero_weights",
            "sql_expression_nodes",
        ]
    }

    /// The statistics as a feature vector (22 features, §5.2).
    pub fn to_vector(&self) -> Vec<f64> {
        vec![
            self.n_inputs,
            self.n_numeric_inputs,
            self.n_categorical_inputs,
            self.n_features,
            self.n_operators,
            self.n_featurizers,
            self.n_one_hot_encoders,
            self.mean_ohe_outputs,
            self.max_ohe_outputs,
            self.n_scalers,
            self.is_tree_model,
            self.is_linear_model,
            self.n_trees,
            self.mean_tree_depth,
            self.max_tree_depth,
            self.std_tree_depth,
            self.n_tree_nodes,
            self.mean_leaves,
            self.n_used_features,
            self.unused_feature_fraction,
            self.n_nonzero_weights,
            self.sql_expression_nodes,
        ]
    }
}

fn std_dev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_columnar::TableBuilder;
    use raven_ml::{train_pipeline, ModelType, PipelineSpec};

    fn batch() -> raven_columnar::Batch {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        TableBuilder::new("t")
            .add_f64("a", (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .add_f64("b", (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .add_utf8(
                "c",
                (0..n)
                    .map(|_| ["x", "y", "z"][rng.gen_range(0..3)].to_string())
                    .collect(),
            )
            .add_f64(
                "label",
                (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect(),
            )
            .build_batch()
            .unwrap()
    }

    #[test]
    fn twenty_two_statistics() {
        assert_eq!(PipelineStats::feature_names().len(), 22);
        let p = train_pipeline(
            &batch(),
            &PipelineSpec {
                name: "p".into(),
                numeric_inputs: vec!["a".into(), "b".into()],
                categorical_inputs: vec!["c".into()],
                label: "label".into(),
                model: ModelType::GradientBoosting {
                    n_estimators: 5,
                    max_depth: 3,
                    learning_rate: 0.1,
                },
                seed: 3,
            },
        )
        .unwrap();
        let stats = PipelineStats::from_pipeline(&p);
        let v = stats.to_vector();
        assert_eq!(v.len(), 22);
        assert_eq!(stats.n_inputs, 3.0);
        assert_eq!(stats.n_categorical_inputs, 1.0);
        assert_eq!(stats.n_one_hot_encoders, 1.0);
        assert_eq!(stats.max_ohe_outputs, 3.0);
        assert_eq!(stats.is_tree_model, 1.0);
        assert_eq!(stats.n_trees, 5.0);
        assert!(stats.n_features >= 5.0);
        assert!(stats.n_tree_nodes > 0.0);
        assert!(stats.unused_feature_fraction >= 0.0 && stats.unused_feature_fraction <= 1.0);
    }

    #[test]
    fn linear_model_stats() {
        let p = train_pipeline(
            &batch(),
            &PipelineSpec {
                name: "p".into(),
                numeric_inputs: vec!["a".into(), "b".into()],
                categorical_inputs: vec![],
                label: "label".into(),
                model: ModelType::LogisticRegression { l1_alpha: 0.0 },
                seed: 3,
            },
        )
        .unwrap();
        let stats = PipelineStats::from_pipeline(&p);
        assert_eq!(stats.is_linear_model, 1.0);
        assert_eq!(stats.is_tree_model, 0.0);
        assert_eq!(stats.n_trees, 0.0);
        assert_eq!(stats.mean_tree_depth, 0.0);
        assert!(stats.n_nonzero_weights >= 1.0);
    }

    #[test]
    fn std_dev_edge_cases() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
