//! Error type for the Raven optimizer and session.

use std::fmt;

/// Result alias used throughout `raven-core`.
pub type Result<T> = std::result::Result<T, RavenError>;

/// Errors produced by optimization and end-to-end execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RavenError {
    /// Error from the columnar layer.
    Columnar(String),
    /// Error from the relational engine.
    Relational(String),
    /// Error from the ML substrate.
    Ml(String),
    /// Error from the tensor runtime.
    Tensor(String),
    /// Error from the IR / parser layer.
    Ir(String),
    /// An optimization rule could not be applied to this query.
    RuleNotApplicable(String),
    /// The optimizer or session was configured inconsistently.
    Config(String),
    /// Error from the durable-catalog layer (snapshot/journal I/O,
    /// corruption, recovery).
    Storage(String),
}

impl fmt::Display for RavenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RavenError::Columnar(m) => write!(f, "columnar error: {m}"),
            RavenError::Relational(m) => write!(f, "relational error: {m}"),
            RavenError::Ml(m) => write!(f, "ml error: {m}"),
            RavenError::Tensor(m) => write!(f, "tensor error: {m}"),
            RavenError::Ir(m) => write!(f, "ir error: {m}"),
            RavenError::RuleNotApplicable(m) => write!(f, "rule not applicable: {m}"),
            RavenError::Config(m) => write!(f, "configuration error: {m}"),
            RavenError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for RavenError {}

impl From<raven_columnar::ColumnarError> for RavenError {
    fn from(e: raven_columnar::ColumnarError) -> Self {
        RavenError::Columnar(e.to_string())
    }
}
impl From<raven_relational::RelationalError> for RavenError {
    fn from(e: raven_relational::RelationalError) -> Self {
        RavenError::Relational(e.to_string())
    }
}
impl From<raven_ml::MlError> for RavenError {
    fn from(e: raven_ml::MlError) -> Self {
        RavenError::Ml(e.to_string())
    }
}
impl From<raven_tensor::TensorError> for RavenError {
    fn from(e: raven_tensor::TensorError) -> Self {
        RavenError::Tensor(e.to_string())
    }
}
impl From<raven_ir::IrError> for RavenError {
    fn from(e: raven_ir::IrError) -> Self {
        RavenError::Ir(e.to_string())
    }
}
impl From<raven_storage::StorageError> for RavenError {
    fn from(e: raven_storage::StorageError) -> Self {
        RavenError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RavenError = raven_columnar::ColumnarError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("columnar"));
        let e: RavenError = raven_ir::IrError::UnknownModel("m".into()).into();
        assert!(e.to_string().contains("ir error"));
        assert!(RavenError::RuleNotApplicable("because".into())
            .to_string()
            .contains("not applicable"));
    }
}
