//! MLtoSQL (paper §5.1): translate a trained pipeline into an equivalent SQL
//! scalar expression so the whole prediction query can run on the data engine
//! and never cross into the ML runtime. Linear models and scalers become
//! arithmetic, tree models and encoders become (nested) `CASE WHEN`
//! expressions, and logistic links use `EXP`. The conversion is all-or-nothing
//! like the paper's implementation: any unsupported operator fails the rule
//! and the pipeline stays on the ML runtime.

use crate::error::{RavenError, Result};
use raven_ml::{Operator, Pipeline, Tree, TreeEnsemble, TreeNode};
use raven_relational::{case, col, lit, Expr};
use std::collections::HashMap;

/// Translate a full pipeline into one SQL expression per output (the score).
/// Pipeline inputs are referenced as columns with their input names.
pub fn pipeline_to_sql(pipeline: &Pipeline) -> Result<Expr> {
    // value name → one expression per feature column of that value
    let mut values: HashMap<&str, Vec<Expr>> = HashMap::new();
    for input in &pipeline.inputs {
        values.insert(input.name.as_str(), vec![col(&input.name)]);
    }
    for node in &pipeline.nodes {
        let mut input_exprs: Vec<Expr> = Vec::new();
        for name in &node.inputs {
            let exprs = values.get(name.as_str()).ok_or_else(|| {
                RavenError::RuleNotApplicable(format!("value {name} not available"))
            })?;
            input_exprs.extend(exprs.iter().cloned());
        }
        let outputs = operator_to_sql(&node.op, &input_exprs, node)?;
        values.insert(node.output.as_str(), outputs);
    }
    let out = values
        .get(pipeline.output.as_str())
        .ok_or_else(|| RavenError::RuleNotApplicable("pipeline output missing".into()))?;
    if out.len() != 1 {
        return Err(RavenError::RuleNotApplicable(format!(
            "pipeline output has {} columns, expected 1",
            out.len()
        )));
    }
    Ok(out[0].clone())
}

fn operator_to_sql(
    op: &Operator,
    inputs: &[Expr],
    node: &raven_ml::PipelineNode,
) -> Result<Vec<Expr>> {
    match op {
        Operator::Concat => Ok(inputs.to_vec()),
        Operator::FeatureExtractor(fe) => fe
            .indices
            .iter()
            .map(|&i| {
                inputs.get(i).cloned().ok_or_else(|| {
                    RavenError::RuleNotApplicable("feature extractor index out of range".into())
                })
            })
            .collect(),
        Operator::Constant(c) => Ok(c.values.iter().map(|&v| lit(v)).collect()),
        Operator::Scaler(s) => {
            if inputs.len() != s.width() {
                return Err(RavenError::RuleNotApplicable(format!(
                    "scaler width {} but {} inputs",
                    s.width(),
                    inputs.len()
                )));
            }
            Ok(inputs
                .iter()
                .enumerate()
                .map(|(i, e)| e.clone().sub(lit(s.offsets[i])).mul(lit(s.scales[i])))
                .collect())
        }
        Operator::Imputer(imp) => Ok(inputs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                case(
                    vec![(
                        e.clone().is_null(),
                        lit(imp.fill.get(i).copied().unwrap_or(0.0)),
                    )],
                    e.clone(),
                )
            })
            .collect()),
        Operator::Binarizer(b) => Ok(inputs
            .iter()
            .map(|e| case(vec![(e.clone().gt(lit(b.threshold)), lit(1.0))], lit(0.0)))
            .collect()),
        Operator::OneHotEncoder(enc) => {
            let input = inputs.first().ok_or_else(|| {
                RavenError::RuleNotApplicable("one-hot encoder without input".into())
            })?;
            // The raw data column may be an integer or a string; compare with
            // the matching literal type so the generated SQL type-checks.
            Ok(enc
                .categories
                .iter()
                .map(|cat| {
                    let literal = match cat.parse::<i64>() {
                        Ok(i) => lit(i),
                        Err(_) => lit(cat.as_str()),
                    };
                    case(vec![(input.clone().eq(literal), lit(1.0))], lit(0.0))
                })
                .collect())
        }
        Operator::LabelEncoder(enc) => {
            let input = inputs.first().ok_or_else(|| {
                RavenError::RuleNotApplicable("label encoder without input".into())
            })?;
            let when_then = enc
                .classes
                .iter()
                .enumerate()
                .map(|(i, c)| (input.clone().eq(lit(c.as_str())), lit(i as f64)))
                .collect();
            Ok(vec![case(when_then, lit(-1.0))])
        }
        Operator::LinearRegression(m) => Ok(vec![linear_to_sql(&m.weights, m.intercept, inputs)?]),
        Operator::LogisticRegression(m) => {
            let z = linear_to_sql(&m.weights, m.intercept, inputs)?;
            Ok(vec![sigmoid_sql(z)])
        }
        Operator::LinearSvm(m) => Ok(vec![linear_to_sql(&m.weights, m.intercept, inputs)?]),
        Operator::TreeEnsemble(e) => Ok(vec![ensemble_to_sql(e, inputs)?]),
        Operator::Normalizer(_) => Err(RavenError::RuleNotApplicable(format!(
            "operator {} is not supported by MLtoSQL",
            node.op.name()
        ))),
    }
}

fn linear_to_sql(weights: &[f64], intercept: f64, inputs: &[Expr]) -> Result<Expr> {
    if inputs.len() != weights.len() {
        return Err(RavenError::RuleNotApplicable(format!(
            "linear model has {} weights but {} inputs",
            weights.len(),
            inputs.len()
        )));
    }
    let mut expr = lit(intercept);
    for (w, e) in weights.iter().zip(inputs.iter()) {
        if *w == 0.0 {
            continue; // regularization-induced sparsity: skip the column entirely
        }
        expr = expr.add(e.clone().mul(lit(*w)));
    }
    Ok(expr)
}

fn sigmoid_sql(z: Expr) -> Expr {
    // 1 / (1 + EXP(-z))
    lit(1.0).div(lit(1.0).add(lit(0.0).sub(z).exp()))
}

/// Convert a tree ensemble to SQL (nested CASE per tree, combined per the
/// ensemble semantics), as in the paper's §5.1 example.
pub fn ensemble_to_sql(ensemble: &TreeEnsemble, features: &[Expr]) -> Result<Expr> {
    if features.len() < ensemble.n_features {
        return Err(RavenError::RuleNotApplicable(format!(
            "ensemble expects {} features, got {}",
            ensemble.n_features,
            features.len()
        )));
    }
    let tree_exprs: Vec<Expr> = ensemble
        .trees
        .iter()
        .map(|t| tree_to_sql(t, features))
        .collect::<Result<Vec<_>>>()?;
    let sum = tree_exprs
        .into_iter()
        .reduce(|a, b| a.add(b))
        .unwrap_or_else(|| lit(0.0));
    use raven_ml::EnsembleKind::*;
    Ok(match ensemble.kind {
        DecisionTreeClassifier | DecisionTreeRegressor => sum,
        RandomForestClassifier => sum.div(lit(ensemble.trees.len().max(1) as f64)),
        GradientBoostingClassifier => {
            sigmoid_sql(lit(ensemble.base_score).add(sum.mul(lit(ensemble.learning_rate))))
        }
        GradientBoostingRegressor => {
            lit(ensemble.base_score).add(sum.mul(lit(ensemble.learning_rate)))
        }
    })
}

/// Convert one decision tree into a nested CASE expression via depth-first
/// traversal (paper §5.1).
pub fn tree_to_sql(tree: &Tree, features: &[Expr]) -> Result<Expr> {
    fn walk(tree: &Tree, idx: usize, features: &[Expr]) -> Result<Expr> {
        match &tree.nodes[idx] {
            TreeNode::Leaf { value } => Ok(lit(*value)),
            TreeNode::Branch {
                feature,
                threshold,
                left,
                right,
            } => {
                let f = features.get(*feature).cloned().ok_or_else(|| {
                    RavenError::RuleNotApplicable(format!(
                        "tree references feature {feature} outside the feature expressions"
                    ))
                })?;
                let left_expr = walk(tree, *left, features)?;
                let right_expr = walk(tree, *right, features)?;
                Ok(case(
                    vec![(f.lt_eq(lit(*threshold)), left_expr)],
                    right_expr,
                ))
            }
        }
    }
    walk(tree, tree.root, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_columnar::TableBuilder;
    use raven_ml::{
        train_pipeline, InputKind, MlRuntime, ModelType, Norm, Normalizer, PipelineInput,
        PipelineNode, PipelineSpec,
    };
    use raven_relational::evaluate;

    fn training_batch(n: usize) -> raven_columnar::Batch {
        let mut rng = StdRng::seed_from_u64(21);
        let age: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..90.0)).collect();
        let income: Vec<f64> = (0..n).map(|_| rng.gen_range(10.0..200.0)).collect();
        let city: Vec<String> = (0..n)
            .map(|_| ["sea", "nyc", "sfo"][rng.gen_range(0..3)].to_string())
            .collect();
        let label: Vec<f64> = (0..n)
            .map(|i| {
                let v = 0.05 * (age[i] - 50.0)
                    + 0.01 * income[i]
                    + if city[i] == "sea" { 1.0 } else { 0.0 };
                if v > 0.8 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        TableBuilder::new("t")
            .add_f64("age", age)
            .add_f64("income", income)
            .add_utf8("city", city)
            .add_f64("label", label)
            .build_batch()
            .unwrap()
    }

    fn spec(model: ModelType) -> PipelineSpec {
        PipelineSpec {
            name: "sqltest".into(),
            numeric_inputs: vec!["age".into(), "income".into()],
            categorical_inputs: vec!["city".into()],
            label: "label".into(),
            model,
            seed: 5,
        }
    }

    fn assert_sql_matches_runtime(model: ModelType, tol: f64) {
        let batch = training_batch(250);
        let pipeline = train_pipeline(&batch, &spec(model)).unwrap();
        let expr = pipeline_to_sql(&pipeline).unwrap();
        let sql_scores = evaluate(&expr, &batch).unwrap().to_f64_vec().unwrap();
        let rt_scores = MlRuntime::new().run_batch(&pipeline, &batch).unwrap();
        assert_eq!(sql_scores.len(), rt_scores.len());
        let mut max_err: f64 = 0.0;
        for (a, b) in sql_scores.iter().zip(rt_scores.iter()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(
            max_err <= tol,
            "max error {max_err} exceeds tolerance {tol}"
        );
    }

    #[test]
    fn logistic_regression_to_sql_matches() {
        assert_sql_matches_runtime(ModelType::LogisticRegression { l1_alpha: 0.01 }, 1e-9);
    }

    #[test]
    fn decision_tree_to_sql_matches() {
        assert_sql_matches_runtime(ModelType::DecisionTree { max_depth: 6 }, 1e-9);
    }

    #[test]
    fn random_forest_to_sql_matches() {
        assert_sql_matches_runtime(
            ModelType::RandomForest {
                n_trees: 5,
                max_depth: 4,
            },
            1e-9,
        );
    }

    #[test]
    fn gradient_boosting_to_sql_matches() {
        assert_sql_matches_runtime(
            ModelType::GradientBoosting {
                n_estimators: 10,
                max_depth: 3,
                learning_rate: 0.2,
            },
            1e-9,
        );
    }

    #[test]
    fn generated_sql_mentions_case_for_trees() {
        let batch = training_batch(150);
        let pipeline =
            train_pipeline(&batch, &spec(ModelType::DecisionTree { max_depth: 4 })).unwrap();
        let expr = pipeline_to_sql(&pipeline).unwrap();
        let sql = expr.to_string();
        assert!(sql.contains("CASE WHEN"));
        assert!(sql.contains("age"));
    }

    #[test]
    fn unsupported_operator_fails_whole_conversion() {
        let batch = training_batch(100);
        let mut pipeline =
            train_pipeline(&batch, &spec(ModelType::DecisionTree { max_depth: 3 })).unwrap();
        // splice a Normalizer between concat and model
        pipeline.nodes.insert(
            pipeline.nodes.len() - 1,
            PipelineNode {
                name: "norm".into(),
                op: raven_ml::Operator::Normalizer(Normalizer { norm: Norm::L2 }),
                inputs: vec!["features".into()],
                output: "normed".into(),
            },
        );
        let last = pipeline.nodes.len() - 1;
        pipeline.nodes[last].inputs = vec!["normed".into()];
        pipeline.validate().unwrap();
        assert!(matches!(
            pipeline_to_sql(&pipeline),
            Err(RavenError::RuleNotApplicable(_))
        ));
    }

    #[test]
    fn tree_sql_for_paper_example_shape() {
        // the paper's §5.1 example tree: F[0] > 60 / F[1] = 0 / F[2] = 1
        let tree = Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 0,
                    threshold: 60.0,
                    left: 2,
                    right: 1,
                },
                TreeNode::Branch {
                    feature: 1,
                    threshold: 0.5,
                    left: 3,
                    right: 4,
                },
                TreeNode::Branch {
                    feature: 2,
                    threshold: 0.5,
                    left: 6,
                    right: 5,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 0.0 },
            ],
            root: 0,
        };
        let features = vec![col("f0"), col("f1"), col("f2")];
        let sql = tree_to_sql(&tree, &features).unwrap().to_string();
        assert_eq!(sql.matches("CASE WHEN").count(), 3);

        let missing = tree_to_sql(&tree, &[col("f0")]);
        assert!(missing.is_err());
    }

    #[test]
    fn input_kinds_remain_consistent() {
        // one-hot over integer-typed categorical column compares with integers
        let batch = TableBuilder::new("t")
            .add_f64("x", vec![1.0, 2.0, 3.0, 4.0])
            .add_i64("flag", vec![0, 1, 0, 1])
            .add_f64("label", vec![0.0, 1.0, 0.0, 1.0])
            .build_batch()
            .unwrap();
        let pipeline = train_pipeline(
            &batch,
            &PipelineSpec {
                name: "int_cat".into(),
                numeric_inputs: vec!["x".into()],
                categorical_inputs: vec!["flag".into()],
                label: "label".into(),
                model: ModelType::DecisionTree { max_depth: 3 },
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(
            pipeline
                .inputs
                .iter()
                .find(|i| i.name == "flag")
                .unwrap()
                .kind,
            InputKind::Categorical
        );
        let expr = pipeline_to_sql(&pipeline).unwrap();
        let sql_scores = evaluate(&expr, &batch).unwrap().to_f64_vec().unwrap();
        let rt_scores = MlRuntime::new().run_batch(&pipeline, &batch).unwrap();
        assert_eq!(sql_scores, rt_scores);
    }

    #[test]
    fn pipeline_input_expr_requires_defined_values() {
        let p = raven_ml::Pipeline::new(
            "broken",
            vec![PipelineInput {
                name: "x".into(),
                kind: InputKind::Numeric,
            }],
            vec![],
            "x",
        )
        .unwrap();
        // output is a raw input: fine, single expression
        assert!(pipeline_to_sql(&p).is_ok());
    }
}
