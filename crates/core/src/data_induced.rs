//! Data-induced optimizations (paper §4.2): use min/max column statistics —
//! globally or per partition — to induce predicates that prune the models of
//! a prediction query at compile time, and compile a partition-optimized
//! model per partition.

use crate::cross_opt::model_projection_pushdown;
use crate::error::Result;
use crate::layout::{FeatureLayout, InputMapping};
use raven_columnar::TableStatistics;
use raven_ir::UnifiedPlan;
use raven_ml::{Operator, Pipeline};
use raven_relational::{Catalog, LogicalPlan};
use std::collections::BTreeMap;

/// Outcome of applying data-induced optimizations.
#[derive(Debug, Clone, Default)]
pub struct DataInducedReport {
    /// Whether the globally-optimized model changed.
    pub global_pruning_applied: bool,
    /// Data columns pruned after global data-induced pruning.
    pub pruned_columns: Vec<String>,
    /// Number of per-partition models compiled (0 when not partitioned).
    pub partition_models: usize,
    /// Average number of columns pruned across partition-optimized models.
    pub avg_pruned_columns_per_partition: f64,
}

/// Derive per-feature domains from table statistics for the inputs of a
/// pipeline (the statistics-induced predicates of §4.2).
pub fn domains_from_statistics(
    pipeline: &Pipeline,
    stats: &TableStatistics,
    layout: &FeatureLayout,
) -> BTreeMap<usize, (f64, f64)> {
    let mut domains = BTreeMap::new();
    for input in &pipeline.inputs {
        let Some(cs) = stats.column(&input.name) else {
            continue;
        };
        let Some((min, max)) = cs.numeric_range() else {
            continue;
        };
        match layout.input(&input.name) {
            Some(InputMapping::Affine {
                feature,
                offset,
                scale,
            }) => {
                let a = (min - offset) * scale;
                let b = (max - offset) * scale;
                domains.insert(*feature, (a.min(b), a.max(b)));
            }
            Some(InputMapping::Identity { feature }) => {
                domains.insert(*feature, (min, max));
            }
            Some(InputMapping::OneHot {
                features,
                categories,
            })
                // A constant column pins its whole one-hot block.
                if cs.is_constant() => {
                    let cat = cs
                        .min
                        .as_ref()
                        .map(|v| match v {
                            raven_columnar::Value::Utf8(s) => s.clone(),
                            other => other
                                .as_f64()
                                .map(raven_ml::format_numeric_category)
                                .unwrap_or_default(),
                        })
                        .unwrap_or_default();
                    for (i, feature) in features.iter().enumerate() {
                        let v = if categories.get(i).map(|c| c == &cat).unwrap_or(false) {
                            1.0
                        } else {
                            0.0
                        };
                        domains.insert(*feature, (v, v));
                    }
                }
            _ => {}
        }
    }
    domains
}

/// Prune the plan's model using the *global* statistics of its base tables.
/// Returns the data columns that became prunable as a result.
pub fn apply_global_data_induced(
    plan: &mut UnifiedPlan,
    catalog: &Catalog,
) -> Result<DataInducedReport> {
    let mut report = DataInducedReport::default();
    let stats = gather_statistics(&plan.data, catalog);
    let layout = match FeatureLayout::analyze(&plan.pipeline) {
        Ok(l) => l,
        Err(_) => return Ok(report),
    };
    let domains = domains_from_statistics(&plan.pipeline, &stats, &layout);
    if domains.is_empty() {
        return Ok(report);
    }
    report.global_pruning_applied = prune_pipeline_with_domains(&mut plan.pipeline, &domains)?;
    if report.global_pruning_applied {
        report.pruned_columns = model_projection_pushdown(plan)?;
    }
    Ok(report)
}

/// Compile a partition-optimized pipeline per partition of the scanned table
/// (when the data part is a scan of a value-partitioned table), as in §4.2's
/// per-partition models. The returned pipelines are aligned with the table's
/// partitions; partitions whose statistics prune nothing reuse the input
/// pipeline.
pub fn compile_partition_models(
    plan: &UnifiedPlan,
    catalog: &Catalog,
) -> Result<(Vec<Pipeline>, DataInducedReport)> {
    let mut report = DataInducedReport::default();
    let table_name = match &plan.data {
        LogicalPlan::Scan { table, .. } => table.clone(),
        other => {
            // only direct scans keep partition alignment
            let tables = other.referenced_tables();
            if tables.len() == 1 {
                tables[0].clone()
            } else {
                return Ok((vec![plan.pipeline.clone()], report));
            }
        }
    };
    let table = catalog.table(&table_name)?;
    if table.partitions().len() <= 1 {
        return Ok((vec![plan.pipeline.clone()], report));
    }
    let layout = match FeatureLayout::analyze(&plan.pipeline) {
        Ok(l) => l,
        Err(_) => return Ok((vec![plan.pipeline.clone()], report)),
    };
    let mut pipelines = Vec::with_capacity(table.partitions().len());
    let mut total_pruned_cols = 0usize;
    for part_stats in table.partition_statistics() {
        let domains = domains_from_statistics(&plan.pipeline, part_stats, &layout);
        let mut pipeline = plan.pipeline.clone();
        let changed = prune_pipeline_with_domains(&mut pipeline, &domains)?;
        if changed {
            // per-partition densification (counts the pruned columns of Tab. 2)
            let mut partition_plan = plan.clone();
            partition_plan.pipeline = pipeline.clone();
            let removed = model_projection_pushdown(&mut partition_plan)?;
            total_pruned_cols += removed.len();
            pipeline = partition_plan.pipeline;
        }
        pipelines.push(pipeline);
    }
    report.partition_models = pipelines.len();
    report.avg_pruned_columns_per_partition =
        total_pruned_cols as f64 / pipelines.len().max(1) as f64;
    Ok((pipelines, report))
}

fn prune_pipeline_with_domains(
    pipeline: &mut Pipeline,
    domains: &BTreeMap<usize, (f64, f64)>,
) -> Result<bool> {
    if domains.is_empty() {
        return Ok(false);
    }
    let Some(model) = pipeline.model_node() else {
        return Ok(false);
    };
    let model_name = model.name.clone();
    let mut changed = false;
    let mut nodes = pipeline.nodes.clone();
    for node in nodes.iter_mut().filter(|n| n.name == model_name) {
        if let Operator::TreeEnsemble(ensemble) = &mut node.op {
            let pruned = ensemble.prune_with_domains(domains);
            if pruned.total_nodes() < ensemble.total_nodes() {
                *ensemble = pruned;
                changed = true;
            }
        }
    }
    if changed {
        pipeline.nodes = nodes;
    }
    Ok(changed)
}

fn gather_statistics(plan: &LogicalPlan, catalog: &Catalog) -> TableStatistics {
    let mut merged = TableStatistics::default();
    for table in plan.referenced_tables() {
        if let Some(stats) = catalog.statistics(&table) {
            if merged.columns.is_empty() {
                merged = stats;
            } else {
                // columns from different tables are disjoint; append
                let row_count = merged.row_count.max(stats.row_count);
                merged.columns.extend(stats.columns);
                merged.row_count = row_count;
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_columnar::{partition_by_column, PartitionSpec, TableBuilder};
    use raven_ml::{
        InputKind, MlRuntime, Operator, PipelineInput, PipelineNode, Tree, TreeEnsemble, TreeNode,
    };
    use raven_relational::col;

    /// Tree splitting on raw age at 60: data whose max age is 50 can prune the
    /// right sub-tree entirely.
    fn pipeline() -> Pipeline {
        let tree = Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 0,
                    threshold: 60.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Branch {
                    feature: 1,
                    threshold: 1.5,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 0.9 },
                TreeNode::Leaf { value: 0.1 },
                TreeNode::Leaf { value: 0.4 },
            ],
            root: 0,
        };
        Pipeline::new(
            "m",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "rcount".into(),
                    kind: InputKind::Numeric,
                },
            ],
            vec![
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["age".into(), "rcount".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 2)),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    fn young_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("hospital")
                .add_i64("id", vec![1, 2, 3])
                .add_f64("age", vec![25.0, 40.0, 50.0])
                .add_f64("rcount", vec![0.0, 1.0, 2.0])
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn global_stats_prune_unreachable_subtree() {
        let c = young_catalog();
        let mut plan =
            UnifiedPlan::new(LogicalPlan::scan("hospital"), pipeline(), "risk", &c).unwrap();
        plan.projection = vec![col("id"), col("risk")];
        let before = plan.pipeline.clone();
        let report = apply_global_data_induced(&mut plan, &c).unwrap();
        assert!(report.global_pruning_applied);
        // age column is no longer needed by the pruned model (root decided)
        assert!(report.pruned_columns.contains(&"age".to_string()));

        // predictions on in-domain data are unchanged
        let batch = c.table("hospital").unwrap().to_batch().unwrap();
        let rt = MlRuntime::new();
        let orig = rt.run_batch(&before, &batch).unwrap();
        let new = rt.run_batch(&plan.pipeline, &batch).unwrap();
        assert_eq!(orig, new);
    }

    #[test]
    fn no_pruning_when_stats_cover_both_branches() {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("hospital")
                .add_i64("id", vec![1, 2])
                .add_f64("age", vec![25.0, 80.0])
                .add_f64("rcount", vec![0.0, 3.0])
                .build()
                .unwrap(),
        );
        let mut plan =
            UnifiedPlan::new(LogicalPlan::scan("hospital"), pipeline(), "risk", &c).unwrap();
        let report = apply_global_data_induced(&mut plan, &c).unwrap();
        assert!(!report.global_pruning_applied);
    }

    #[test]
    fn partition_models_are_specialized_and_correct() {
        let mut c = Catalog::new();
        let table = TableBuilder::new("hospital")
            .add_i64("id", (0..8).collect())
            .add_f64("age", vec![20.0, 30.0, 40.0, 50.0, 65.0, 70.0, 80.0, 90.0])
            .add_f64("rcount", vec![0.0, 1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let partitioned = partition_by_column(
            &table,
            &PartitionSpec::ByRange {
                column: "age".into(),
                partitions: 2,
            },
        )
        .unwrap();
        c.register(partitioned);
        let plan = UnifiedPlan::new(LogicalPlan::scan("hospital"), pipeline(), "risk", &c).unwrap();
        let (models, report) = compile_partition_models(&plan, &c).unwrap();
        assert_eq!(report.partition_models, models.len());
        assert!(models.len() >= 2);

        // each partition-specific model matches the original on its partition
        let rt = MlRuntime::new();
        let table = c.table("hospital").unwrap();
        for (batch, model) in table.partitions().iter().zip(models.iter()) {
            let orig = rt.run_batch(&plan.pipeline, batch).unwrap();
            // the specialized pipeline may have dropped inputs; bind only what it needs
            let inputs = raven_ml::bind_batch(model, batch).unwrap();
            let new = rt.run(model, &inputs).unwrap();
            assert_eq!(orig, new.as_numeric().unwrap().column(0));
        }
        // at least one partition model is smaller than the original
        let orig_nodes: usize = match &plan.pipeline.model_node().unwrap().op {
            Operator::TreeEnsemble(e) => e.total_nodes(),
            _ => 0,
        };
        assert!(models.iter().any(|m| match &m.model_node().unwrap().op {
            Operator::TreeEnsemble(e) => e.total_nodes() < orig_nodes,
            _ => false,
        }));
    }

    #[test]
    fn single_partition_table_returns_original() {
        let c = young_catalog();
        let plan = UnifiedPlan::new(LogicalPlan::scan("hospital"), pipeline(), "risk", &c).unwrap();
        let (models, report) = compile_partition_models(&plan, &c).unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(report.partition_models, 0);
    }
}
