//! # raven-core
//!
//! The Raven optimizer — the paper's primary contribution. It consumes the
//! unified IR of a prediction query (`raven-ir`) and applies:
//!
//! * **logical cross-optimizations** (§4.1): predicate-based model pruning and
//!   model-projection pushdown,
//! * **data-induced optimizations** (§4.2): statistics- and partition-driven
//!   model pruning,
//! * **logical-to-physical runtime selection** (§5): MLtoSQL, MLtoDNN, and the
//!   data-driven strategies (rule-based, classification-based,
//!   regression-based) that pick between them,
//!
//! and executes the optimized query end to end via [`session::RavenSession`]
//! on the relational engine, the ML runtime, and the tensor/DNN runtime.

pub mod cross_opt;
pub mod data_induced;
pub mod error;
pub mod layout;
pub mod mltodnn;
pub mod mltosql;
pub mod session;
pub mod stats;
pub mod strategy;

pub use cross_opt::{
    apply_cross_optimizations, derive_domains_from_predicates, model_projection_pushdown,
    predicate_based_model_pruning, CrossOptReport,
};
pub use data_induced::{
    apply_global_data_induced, compile_partition_models, domains_from_statistics, DataInducedReport,
};
pub use error::{RavenError, Result};
pub use layout::{FeatureLayout, InputMapping};
pub use mltodnn::{apply_ml_to_dnn, DnnPlan};
pub use mltosql::{ensemble_to_sql, pipeline_to_sql, tree_to_sql};
pub use session::{
    BaselineMode, CompiledModels, ExecutionReport, ModelCacheHooks, PredictionOutput,
    PreparedStatement, RavenConfig, RavenSession, RecoveryInfo, RuntimePolicy,
};
pub use stats::PipelineStats;
pub use strategy::{
    choose_execution_mode, choose_execution_mode_from_estimates, cost_based_mode_default,
    estimate_mode_cost, estimate_mode_cost_from_estimates, evaluate_strategy, stratified_folds,
    ClassificationStrategy, ExecutionMode, OptimizationStrategy, RegressionStrategy,
    RuleBasedStrategy, StrategyCorpus, StrategyObservation, TransformChoice,
};
