//! Cross-optimizations (paper §4.1): predicate-based model pruning
//! (data-to-model) and model-projection pushdown (model-to-data).

use crate::error::Result;
use crate::layout::{FeatureLayout, InputMapping};
use raven_ir::UnifiedPlan;
use raven_ml::{format_numeric_category, Operator};
use raven_relational::{BinaryOp, Expr};
use std::collections::{BTreeMap, BTreeSet};

/// What a cross-optimization pass did, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrossOptReport {
    /// Tree/graph nodes in the models before and after pruning.
    pub model_nodes_before: usize,
    pub model_nodes_after: usize,
    /// Feature-vector width before and after densification.
    pub features_before: usize,
    pub features_after: usize,
    /// Pipeline inputs (data columns) removed from the query.
    pub removed_inputs: Vec<String>,
    /// Whether each rule changed anything.
    pub predicate_pruning_applied: bool,
    pub projection_pushdown_applied: bool,
}

// ---------------------------------------------------------------------------
// Predicate-based model pruning
// ---------------------------------------------------------------------------

/// Per-feature value domain derived from query predicates.
type Domains = BTreeMap<usize, (f64, f64)>;

/// Derive per-feature domains implied by the query's input-side predicates,
/// pushing constants through scalers and one-hot encoders (paper §4.1 Step 2).
pub fn derive_domains_from_predicates(predicates: &[&Expr], layout: &FeatureLayout) -> Domains {
    let mut domains: Domains = BTreeMap::new();
    for predicate in predicates {
        let Some((column, op, value)) = predicate.as_column_literal_comparison() else {
            continue;
        };
        let Some(mapping) = layout.input(column) else {
            continue;
        };
        match mapping {
            InputMapping::Affine {
                feature,
                offset,
                scale,
            } => {
                let Some(v) = value.as_f64() else { continue };
                let t = (v - offset) * scale;
                apply_numeric_domain(&mut domains, *feature, op, t, *scale < 0.0);
            }
            InputMapping::Identity { feature } => {
                let Some(v) = value.as_f64() else { continue };
                apply_numeric_domain(&mut domains, *feature, op, v, false);
            }
            InputMapping::OneHot {
                features,
                categories,
            } => {
                // Only equality predicates give exact one-hot constants.
                if op != BinaryOp::Eq {
                    continue;
                }
                let cat = match value {
                    raven_columnar::Value::Utf8(s) => s.clone(),
                    other => other
                        .as_f64()
                        .map(format_numeric_category)
                        .unwrap_or_default(),
                };
                for (i, feature) in features.iter().enumerate() {
                    let v = if categories.get(i).map(|c| c == &cat).unwrap_or(false) {
                        1.0
                    } else {
                        0.0
                    };
                    intersect(&mut domains, *feature, v, v);
                }
            }
            InputMapping::Opaque { .. } => {}
        }
    }
    domains
}

fn apply_numeric_domain(
    domains: &mut Domains,
    feature: usize,
    op: BinaryOp,
    t: f64,
    flipped: bool,
) {
    // When the affine scale is negative the inequality direction flips.
    let op = if flipped {
        match op {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    } else {
        op
    };
    match op {
        BinaryOp::Eq => intersect(domains, feature, t, t),
        BinaryOp::Lt | BinaryOp::LtEq => intersect(domains, feature, f64::NEG_INFINITY, t),
        BinaryOp::Gt | BinaryOp::GtEq => intersect(domains, feature, t, f64::INFINITY),
        _ => {}
    }
}

fn intersect(domains: &mut Domains, feature: usize, lo: f64, hi: f64) {
    let entry = domains
        .entry(feature)
        .or_insert((f64::NEG_INFINITY, f64::INFINITY));
    entry.0 = entry.0.max(lo);
    entry.1 = entry.1.min(hi);
}

/// Apply predicate-based model pruning to the plan's pipeline, using the
/// query's input-side predicates (on data columns) and output-side predicates
/// (on the prediction). Returns whether anything changed.
pub fn predicate_based_model_pruning(plan: &mut UnifiedPlan) -> Result<bool> {
    let layout = match FeatureLayout::analyze(&plan.pipeline) {
        Ok(l) => l,
        Err(_) => return Ok(false),
    };
    let input_preds = plan
        .input_predicates()
        .into_iter()
        .cloned()
        .collect::<Vec<_>>();
    let pred_refs: Vec<&Expr> = input_preds.iter().collect();
    let domains = derive_domains_from_predicates(&pred_refs, &layout);

    let mut changed = false;
    let model_node_name = match plan.pipeline.model_node() {
        Some(n) => n.name.clone(),
        None => return Ok(false),
    };
    // clone out, modify, write back
    let mut nodes = plan.pipeline.nodes.clone();
    for node in nodes.iter_mut().filter(|n| n.name == model_node_name) {
        match &mut node.op {
            Operator::TreeEnsemble(ensemble) => {
                if !domains.is_empty() {
                    let pruned = ensemble.prune_with_domains(&domains);
                    if pruned.total_nodes() < ensemble.total_nodes() {
                        *ensemble = pruned;
                        changed = true;
                    }
                }
                // Output-side predicate pruning for single trees: keep only
                // paths to leaves that can satisfy the predicate; other rows
                // are filtered out by the query's post-filter anyway.
                if ensemble.trees.len() == 1 && ensemble.kind.is_classifier() {
                    if let Some(threshold) = output_score_threshold(plan) {
                        let tree = &ensemble.trees[0];
                        let pruned = tree
                            .prune_by_output(&|v| v >= threshold, f64::NEG_INFINITY)
                            .compact();
                        if pruned.node_count() < tree.node_count() {
                            ensemble.trees[0] = pruned;
                            changed = true;
                        }
                    }
                }
            }
            Operator::LogisticRegression(model) => {
                for (&feature, &(lo, hi)) in &domains {
                    if lo == hi && feature < model.n_features() {
                        *model = model.fold_constant(feature, lo)?;
                        changed = true;
                    }
                }
            }
            Operator::LinearRegression(model) => {
                for (&feature, &(lo, hi)) in &domains {
                    if lo == hi && feature < model.n_features() {
                        *model = model.fold_constant(feature, lo)?;
                        changed = true;
                    }
                }
            }
            _ => {}
        }
    }
    if changed {
        plan.pipeline.nodes = nodes;
    }
    Ok(changed)
}

/// Extract a `score >= c` (or `score > c`) lower bound from the output-side
/// predicates, when present.
fn output_score_threshold(plan: &UnifiedPlan) -> Option<f64> {
    for p in plan.output_predicates() {
        if let Some((column, op, value)) = p.as_column_literal_comparison() {
            if column == plan.prediction_column {
                let v = value.as_f64()?;
                match op {
                    BinaryOp::GtEq | BinaryOp::Gt => return Some(v),
                    _ => {}
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Model-projection pushdown
// ---------------------------------------------------------------------------

/// Apply model-projection pushdown: densify the model to its used features,
/// push the implied FeatureExtractor through Concat / Scaler / OneHotEncoder
/// producers, and drop pipeline inputs (data columns) that are no longer
/// consumed. Returns the names of removed inputs.
pub fn model_projection_pushdown(plan: &mut UnifiedPlan) -> Result<Vec<String>> {
    let layout = match FeatureLayout::analyze(&plan.pipeline) {
        Ok(l) => l,
        Err(_) => return Ok(vec![]),
    };
    let Some(model_node) = plan.pipeline.model_node() else {
        return Ok(vec![]);
    };
    let model_name = model_node.name.clone();

    // 1. determine used feature indices
    let used: Vec<usize> = match &model_node.op {
        Operator::TreeEnsemble(e) => e.used_features().into_iter().collect(),
        Operator::LogisticRegression(m) => m.used_features(),
        Operator::LinearRegression(m) => m.used_features(),
        Operator::LinearSvm(m) => m.used_features(),
        _ => return Ok(vec![]),
    };
    let used_set: BTreeSet<usize> = used.iter().copied().collect();
    if used_set.len() >= layout.width {
        return Ok(vec![]); // nothing unused
    }

    // 2. decide which inputs can be dropped from the pipeline entirely: all of
    //    their features are unused by the model. (The data side still provides
    //    columns the query needs elsewhere — `data_side_plan` projects the
    //    union of pipeline inputs and externally required columns — so this is
    //    always safe.)
    let mut removable: Vec<String> = Vec::new();
    for (input, mapping) in &layout.inputs {
        let features = mapping.feature_indices();
        let all_unused = features.iter().all(|f| !used_set.contains(f));
        if all_unused {
            removable.push(input.clone());
        }
    }

    // 3. the features we keep are the used ones plus every feature fed by an
    //    input we cannot remove (its encoder still produces the whole block).
    let mut kept: BTreeSet<usize> = used_set.clone();
    for (input, mapping) in &layout.inputs {
        if !removable.contains(input) {
            kept.extend(mapping.feature_indices());
        }
    }
    // features not owned by any input (e.g. constants) stay
    let owned: BTreeSet<usize> = layout
        .inputs
        .values()
        .flat_map(|m| m.feature_indices())
        .collect();
    for f in 0..layout.width {
        if !owned.contains(&f) {
            kept.insert(f);
        }
    }
    let mut kept: Vec<usize> = kept.into_iter().collect();
    if kept.is_empty() {
        // The model ignores every feature (e.g. fully pruned to a constant).
        // Keep a single feature column so the pipeline remains executable.
        kept.push(0);
    }
    if kept.len() >= layout.width {
        return Ok(vec![]);
    }
    let kept_set: BTreeSet<usize> = kept.iter().copied().collect();
    // An input whose block now intersects the kept set (e.g. the force-kept
    // feature 0) must not be dropped after all.
    removable.retain(|input| {
        layout
            .input(input)
            .map(|m| m.feature_indices().iter().all(|f| !kept_set.contains(f)))
            .unwrap_or(false)
    });

    // 4. densify the model to the kept features (in ascending order). If the
    //    model consumes raw columns directly (no Concat), drop the removable
    //    ones from its own input list so the runtime feature vector matches
    //    the densified indices.
    let removable_set: BTreeSet<&String> = removable.iter().collect();
    let mut nodes = plan.pipeline.nodes.clone();
    for node in nodes.iter_mut().filter(|n| n.name == model_name) {
        match &mut node.op {
            Operator::TreeEnsemble(e) => *e = e.select(&kept)?,
            Operator::LogisticRegression(m) => *m = m.select(&kept)?,
            Operator::LinearRegression(m) => *m = m.select(&kept)?,
            Operator::LinearSvm(m) => *m = m.select(&kept)?,
            _ => {}
        }
        if node.inputs.len() > 1 {
            node.inputs.retain(|i| !removable_set.contains(i));
        }
    }
    plan.pipeline.nodes = nodes;

    // 5. rewrite featurizers so they no longer produce the dropped blocks:
    //    - scaler: select the surviving columns, drop removed inputs
    //    - one-hot encoders of removed inputs: the whole node goes away
    //    (dead-node pruning removes them once the concat edge is gone)
    let mut nodes = plan.pipeline.nodes.clone();
    for node in nodes.iter_mut() {
        match &mut node.op {
            Operator::Scaler(scaler) => {
                // node.inputs are raw columns, one feature each, in order
                let keep_cols: Vec<usize> = node
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|(_, name)| !removable_set.contains(name))
                    .map(|(i, _)| i)
                    .collect();
                if keep_cols.len() < node.inputs.len() && !keep_cols.is_empty() {
                    *scaler = scaler.select(&keep_cols)?;
                    node.inputs = keep_cols.iter().map(|&i| node.inputs[i].clone()).collect();
                }
            }
            Operator::Concat => {
                // Drop concat inputs whose producers only served removed inputs.
                // (Handled below via dead-node pruning: a producer is dead when
                // its own inputs were removed, so we drop the edge if its
                // producer consumes only removable inputs.)
            }
            _ => {}
        }
    }
    plan.pipeline.nodes = nodes;

    // drop concat edges that reference values produced solely from removed inputs
    let dead_values: Vec<String> = plan
        .pipeline
        .nodes
        .iter()
        .filter(|n| {
            !n.inputs.is_empty()
                && n.inputs
                    .iter()
                    .all(|i| removable_set.contains(&i.to_string()))
        })
        .map(|n| n.output.clone())
        .collect();
    let mut nodes = plan.pipeline.nodes.clone();
    for node in nodes.iter_mut() {
        if matches!(node.op, Operator::Concat) {
            node.inputs
                .retain(|i| !dead_values.contains(i) && !removable_set.contains(i));
        }
    }
    plan.pipeline.nodes = nodes;

    // scaler nodes that lost all inputs (every numeric column removed) are dead
    let mut nodes = plan.pipeline.nodes.clone();
    let empty_outputs: Vec<String> = nodes
        .iter()
        .filter(|n| n.inputs.is_empty() && !matches!(n.op, Operator::Constant(_)))
        .filter(|n| n.output != plan.pipeline.output)
        .map(|n| n.output.clone())
        .collect();
    for node in nodes.iter_mut() {
        if matches!(node.op, Operator::Concat) {
            node.inputs.retain(|i| !empty_outputs.contains(i));
        }
    }
    nodes.retain(|n| !empty_outputs.contains(&n.output));
    plan.pipeline.nodes = nodes;

    // 6. finally, prune inputs/nodes no longer reachable from the output.
    let mut removed = plan.pipeline.prune_dead_nodes();
    removed.sort();
    Ok(removed)
}

/// Run both cross-optimizations in the paper's order (pruning first, then
/// projection pushdown) and produce a report.
pub fn apply_cross_optimizations(plan: &mut UnifiedPlan) -> Result<CrossOptReport> {
    let mut report = CrossOptReport {
        model_nodes_before: model_size(plan),
        features_before: plan.pipeline.feature_width(),
        ..Default::default()
    };
    report.predicate_pruning_applied = predicate_based_model_pruning(plan)?;
    let removed = model_projection_pushdown(plan)?;
    report.projection_pushdown_applied = !removed.is_empty();
    report.removed_inputs = removed;
    report.model_nodes_after = model_size(plan);
    report.features_after = plan.pipeline.feature_width();
    Ok(report)
}

fn model_size(plan: &UnifiedPlan) -> usize {
    plan.pipeline
        .model_node()
        .map(|n| match &n.op {
            Operator::TreeEnsemble(e) => e.total_nodes(),
            Operator::LogisticRegression(m) => m.used_features().len() + 1,
            Operator::LinearRegression(m) => m.used_features().len() + 1,
            Operator::LinearSvm(m) => m.used_features().len() + 1,
            _ => 1,
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_columnar::TableBuilder;
    use raven_ml::{
        bind_batch, InputKind, LogisticRegressionModel, MlRuntime, OneHotEncoder, Operator,
        Pipeline, PipelineInput, PipelineNode, Scaler, Tree, TreeEnsemble, TreeNode,
    };
    use raven_relational::{col, lit, Catalog, LogicalPlan};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("patients")
                .add_i64("id", vec![1, 2, 3, 4])
                .add_f64("age", vec![30.0, 70.0, 55.0, 62.0])
                .add_f64("bpm", vec![60.0, 95.0, 70.0, 80.0])
                .add_i64("asthma", vec![1, 0, 1, 1])
                .build()
                .unwrap(),
        );
        c
    }

    /// Pipeline shaped like Fig. 3: Scaler(age, bpm) + OHE(asthma) → Concat →
    /// TreeClassifier whose right sub-tree only fires for asthma=0 and whose
    /// bpm feature is never used.
    fn pipeline() -> Pipeline {
        let tree = Tree {
            nodes: vec![
                /*0*/
                TreeNode::Branch {
                    feature: 3,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                /*1*/
                TreeNode::Branch {
                    feature: 2,
                    threshold: 0.5,
                    left: 3,
                    right: 4,
                },
                /*2*/
                TreeNode::Branch {
                    feature: 0,
                    threshold: 1.0,
                    left: 5,
                    right: 6,
                },
                /*3*/ TreeNode::Leaf { value: 0.1 },
                /*4*/ TreeNode::Leaf { value: 0.2 },
                /*5*/ TreeNode::Leaf { value: 0.3 },
                /*6*/ TreeNode::Leaf { value: 0.9 },
            ],
            root: 0,
        };
        Pipeline::new(
            "m",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bpm".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![50.0, 70.0],
                        scales: vec![0.1, 0.05],
                    }),
                    inputs: vec!["age".into(), "bpm".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "ohe".into(),
                    op: Operator::OneHotEncoder(OneHotEncoder {
                        categories: vec!["0".into(), "1".into()],
                    }),
                    inputs: vec!["asthma".into()],
                    output: "enc".into(),
                },
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["scaled".into(), "enc".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 4)),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    fn plan_with_predicate(pred: Expr) -> UnifiedPlan {
        let c = catalog();
        let mut p =
            UnifiedPlan::new(LogicalPlan::scan("patients"), pipeline(), "risk", &c).unwrap();
        p.predicates = vec![pred];
        p.projection = vec![col("id"), col("risk")];
        p
    }

    #[test]
    fn domains_propagate_through_featurizers() {
        let layout = FeatureLayout::analyze(&pipeline()).unwrap();
        let p1 = col("asthma").eq(lit(1i64));
        let p2 = col("age").lt(lit(30.0));
        let domains = derive_domains_from_predicates(&[&p1, &p2], &layout);
        // asthma=1 → one-hot features 2,3 become constants [0,1]
        assert_eq!(domains.get(&2), Some(&(0.0, 0.0)));
        assert_eq!(domains.get(&3), Some(&(1.0, 1.0)));
        // age<30 → scaled (30-50)*0.1 = -2.0 upper bound
        let (lo, hi) = domains[&0];
        assert_eq!(lo, f64::NEG_INFINITY);
        assert!((hi - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn predicate_pruning_shrinks_tree_and_preserves_predictions() {
        let mut plan = plan_with_predicate(col("asthma").eq(lit(1i64)));
        let before_nodes = model_size(&plan);
        let before_pipeline = plan.pipeline.clone();
        let changed = predicate_based_model_pruning(&mut plan).unwrap();
        assert!(changed);
        assert!(model_size(&plan) < before_nodes);

        // Predictions must agree on rows satisfying the predicate.
        let batch = TableBuilder::new("t")
            .add_f64("age", vec![30.0, 70.0])
            .add_f64("bpm", vec![60.0, 95.0])
            .add_i64("asthma", vec![1, 1])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let orig = rt.run_batch(&before_pipeline, &batch).unwrap();
        let pruned = rt.run_batch(&plan.pipeline, &batch).unwrap();
        assert_eq!(orig, pruned);
    }

    #[test]
    fn projection_pushdown_removes_unused_bpm() {
        // Without predicates the tree uses features 0 (age), 2, 3 (asthma) but
        // never feature 1 (bpm) → bpm should be removed end-to-end.
        let c = catalog();
        let mut plan =
            UnifiedPlan::new(LogicalPlan::scan("patients"), pipeline(), "risk", &c).unwrap();
        plan.projection = vec![col("id"), col("risk")];
        let before_pipeline = plan.pipeline.clone();
        let removed = model_projection_pushdown(&mut plan).unwrap();
        assert_eq!(removed, vec!["bpm".to_string()]);
        assert!(plan.pipeline.input("bpm").is_none());
        assert_eq!(plan.pipeline.feature_width(), 3);
        assert!(plan.validate(&c).is_ok());

        // Predictions unchanged for arbitrary rows.
        let batch = TableBuilder::new("t")
            .add_f64("age", vec![30.0, 70.0, 62.0])
            .add_f64("bpm", vec![60.0, 95.0, 70.0])
            .add_i64("asthma", vec![1, 0, 1])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let orig = rt.run_batch(&before_pipeline, &batch).unwrap();
        let new_inputs = bind_batch(&plan.pipeline, &batch).unwrap();
        let new = rt.run(&plan.pipeline, &new_inputs).unwrap();
        assert_eq!(orig, new.as_numeric().unwrap().column(0));
    }

    #[test]
    fn pushdown_keeps_externally_required_columns_in_query() {
        let c = catalog();
        let mut plan =
            UnifiedPlan::new(LogicalPlan::scan("patients"), pipeline(), "risk", &c).unwrap();
        // the query itself selects bpm: the column leaves the *pipeline* (the
        // model never uses it) but remains externally required, so the data
        // side must still produce it.
        plan.projection = vec![col("bpm"), col("risk")];
        let removed = model_projection_pushdown(&mut plan).unwrap();
        assert_eq!(removed, vec!["bpm".to_string()]);
        assert!(plan.externally_required_columns().contains("bpm"));
        assert!(plan.pipeline.input("bpm").is_none());
    }

    #[test]
    fn combined_rules_compose() {
        // asthma=1 prunes the left sub-tree (features 2,3 decided); with the
        // output threshold, projection pushdown can then also drop columns.
        let mut plan = plan_with_predicate(col("asthma").eq(lit(1i64)));
        let report = apply_cross_optimizations(&mut plan).unwrap();
        assert!(report.predicate_pruning_applied);
        assert!(report.projection_pushdown_applied);
        assert!(report.features_after < report.features_before);
        assert!(report.model_nodes_after <= report.model_nodes_before);
        // bpm unused by the model AND asthma becomes constant → both removable
        assert!(report.removed_inputs.contains(&"bpm".to_string()));
        assert!(report.removed_inputs.contains(&"asthma".to_string()));
    }

    #[test]
    fn output_predicate_prunes_single_tree() {
        let mut plan = plan_with_predicate(col("risk").gt_eq(lit(0.5)));
        let before = plan.pipeline.clone();
        let changed = predicate_based_model_pruning(&mut plan).unwrap();
        assert!(changed);
        // rows that originally scored >= 0.5 keep their score; rows below the
        // threshold may map to the sentinel but still fail the post-filter.
        let batch = TableBuilder::new("t")
            .add_f64("age", vec![70.0, 30.0, 40.0])
            .add_f64("bpm", vec![60.0, 60.0, 70.0])
            .add_i64("asthma", vec![1, 1, 0])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let orig = rt.run_batch(&before, &batch).unwrap();
        let pruned = rt.run_batch(&plan.pipeline, &batch).unwrap();
        for (o, p) in orig.iter().zip(pruned.iter()) {
            if *o >= 0.5 {
                assert_eq!(o, p);
            } else {
                assert!(*p < 0.5);
            }
        }
        // the example row age=70, asthma=1 satisfies the threshold
        assert!(orig[0] >= 0.5);
        assert!(orig[1] < 0.5);
    }

    #[test]
    fn linear_model_constant_folding() {
        let c = catalog();
        let lr = Pipeline::new(
            "lr",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bpm".into(),
                    kind: InputKind::Numeric,
                },
            ],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::LogisticRegression(LogisticRegressionModel {
                    weights: vec![0.1, 0.0],
                    intercept: -3.0,
                }),
                inputs: vec!["age".into(), "bpm".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap();
        let mut plan = UnifiedPlan::new(LogicalPlan::scan("patients"), lr, "risk", &c).unwrap();
        plan.predicates = vec![col("age").eq(lit(40.0))];
        plan.projection = vec![col("id"), col("risk")];
        let report = apply_cross_optimizations(&mut plan).unwrap();
        assert!(report.predicate_pruning_applied);
        // bpm (zero weight) is dropped; age is folded into the intercept and
        // only survives as the single column kept for executability.
        assert_eq!(plan.pipeline.inputs.len(), 1);
        assert!(report.removed_inputs.contains(&"bpm".to_string()));
        assert!(report.features_after < report.features_before);
    }

    #[test]
    fn no_change_when_all_features_used_and_no_predicates() {
        let c = catalog();
        // model that uses every feature
        let tree = Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 0,
                    threshold: 0.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Branch {
                    feature: 1,
                    threshold: 0.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Branch {
                    feature: 2,
                    threshold: 0.5,
                    left: 5,
                    right: 6,
                },
                TreeNode::Branch {
                    feature: 3,
                    threshold: 0.5,
                    left: 7,
                    right: 8,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 0.5 },
            ],
            root: 0,
        };
        let mut p = pipeline();
        for node in p.nodes.iter_mut() {
            if node.name == "model" {
                node.op = Operator::TreeEnsemble(TreeEnsemble::single_tree(tree.clone(), 4));
            }
        }
        let mut plan = UnifiedPlan::new(LogicalPlan::scan("patients"), p, "risk", &c).unwrap();
        plan.projection = vec![col("id"), col("risk")];
        let report = apply_cross_optimizations(&mut plan).unwrap();
        assert!(!report.predicate_pruning_applied);
        assert!(!report.projection_pushdown_applied);
        assert!(report.removed_inputs.is_empty());
    }
}
