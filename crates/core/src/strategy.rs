//! Data-driven optimization strategies (paper §5.2).
//!
//! The optimizer must pick, per trained pipeline, one of three evaluations:
//! leave the pipeline on the ML runtime (`None`), translate it to SQL
//! (`MLtoSQL`), or translate it to a tensor program for the DNN runtime /
//! GPU (`MLtoDNN`). The choice is learned from a benchmark corpus of
//! pipelines: an ML-informed rule-based strategy, a classification-based
//! strategy (random forest over the 22 statistics), and a regression-based
//! strategy that predicts the runtime of each option and picks the minimum.

use crate::error::{RavenError, Result};
use crate::stats::PipelineStats;
use raven_ml::{
    train_decision_tree, train_random_forest, EnsembleKind, ForestConfig, Matrix, Tree, TreeConfig,
    TreeEnsemble, TreeTask,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The logical-to-physical transformation applied to a trained pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransformChoice {
    /// Keep the pipeline on the ML runtime (cross-optimizations only).
    None,
    /// Translate the pipeline to SQL and run it on the data engine.
    MlToSql,
    /// Translate the pipeline to a tensor program (DNN runtime, possibly GPU).
    MlToDnn,
}

impl TransformChoice {
    /// All selectable choices, in a stable order.
    pub fn all() -> [TransformChoice; 3] {
        [
            TransformChoice::None,
            TransformChoice::MlToSql,
            TransformChoice::MlToDnn,
        ]
    }

    /// Stable class index used by the learned strategies.
    pub fn class_index(&self) -> usize {
        match self {
            TransformChoice::None => 0,
            TransformChoice::MlToSql => 1,
            TransformChoice::MlToDnn => 2,
        }
    }

    /// Inverse of [`TransformChoice::class_index`].
    pub fn from_class_index(i: usize) -> TransformChoice {
        match i {
            1 => TransformChoice::MlToSql,
            2 => TransformChoice::MlToDnn,
            _ => TransformChoice::None,
        }
    }

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TransformChoice::None => "none",
            TransformChoice::MlToSql => "MLtoSQL",
            TransformChoice::MlToDnn => "MLtoDNN",
        }
    }
}

/// One benchmark observation: a pipeline's statistics plus the measured
/// runtime (seconds) of each transformation option.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyObservation {
    /// The pipeline's 22 statistics.
    pub stats: PipelineStats,
    /// Measured runtime per transformation choice.
    pub runtimes: BTreeMap<TransformChoice, f64>,
}

impl StrategyObservation {
    /// The optimal (minimum-runtime) choice of this observation.
    pub fn best_choice(&self) -> TransformChoice {
        self.runtimes
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| *c)
            .unwrap_or(TransformChoice::None)
    }

    /// Runtime of a given choice (infinity when missing).
    pub fn runtime(&self, choice: TransformChoice) -> f64 {
        self.runtimes.get(&choice).copied().unwrap_or(f64::INFINITY)
    }
}

/// A corpus of observations used to train / evaluate strategies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrategyCorpus {
    /// The observations.
    pub observations: Vec<StrategyObservation>,
}

impl StrategyCorpus {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Count of observations whose optimum is each choice (the class balance
    /// reported in §5.2).
    pub fn class_balance(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for o in &self.observations {
            *out.entry(o.best_choice().name()).or_insert(0) += 1;
        }
        out
    }

    fn feature_matrix(&self, indices: &[usize]) -> Matrix {
        let cols: Vec<Vec<f64>> = {
            let vectors: Vec<Vec<f64>> = indices
                .iter()
                .map(|&obs_idx| self.observations[obs_idx].stats.to_vector())
                .collect();
            let width = vectors.first().map(|v| v.len()).unwrap_or(0);
            (0..width)
                .map(|j| vectors.iter().map(|v| v[j]).collect())
                .collect()
        };
        Matrix::from_columns(&cols).expect("aligned feature columns")
    }
}

/// The strategy interface: given a pipeline's statistics, pick a transform.
pub trait OptimizationStrategy: std::fmt::Debug {
    /// Choose a transformation for a pipeline with these statistics.
    fn choose(&self, stats: &PipelineStats) -> TransformChoice;
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Execution-mode selection (streamed vs. materialized data side)
// ---------------------------------------------------------------------------

/// How the data side of a prediction query is driven through the ML scoring
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Let the optimizer cost both plans and pick the cheaper one
    /// ([`choose_execution_mode`]).
    Auto,
    /// Streaming partition-parallel pipeline: partitions flow through
    /// relational filters and ML scoring one at a time, pruned by statistics,
    /// concatenated only at the final output boundary.
    Streaming,
    /// Legacy materialized pipeline: the relational result is concatenated
    /// into one batch before scoring (the pre-BatchStream behaviour, kept as
    /// the baseline the streaming path is costed against).
    Materialized,
}

impl ExecutionMode {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutionMode::Auto => "auto",
            ExecutionMode::Streaming => "streaming",
            ExecutionMode::Materialized => "materialized",
        }
    }
}

/// Abstract per-row / per-partition cost weights of the execution-mode cost
/// model. Units are arbitrary; only ratios matter.
mod mode_cost {
    /// Cost of scanning + filtering one row.
    pub const SCAN_ROW: f64 = 1.0;
    /// Cost of scoring one row on the ML runtime.
    pub const SCORE_ROW: f64 = 2.0;
    /// Cost of copying one row into the concatenated batch (materialized
    /// only).
    pub const CONCAT_ROW: f64 = 0.5;
    /// Fixed cost of dispatching one partition task to the worker pool
    /// (streaming only).
    pub const TASK: f64 = 500.0;
}

/// Estimated abstract cost of executing the data-plus-scoring pipeline in a
/// given mode over `rows` rows spread across `partitions` partitions with
/// `dop` workers. `selectivity` is the fraction of partitions the statistics
/// cannot prune (1.0 = nothing prunable).
pub fn estimate_mode_cost(
    mode: ExecutionMode,
    rows: usize,
    partitions: usize,
    dop: usize,
    selectivity: f64,
) -> f64 {
    if mode == ExecutionMode::Auto {
        return estimate_mode_cost(ExecutionMode::Streaming, rows, partitions, dop, selectivity)
            .min(estimate_mode_cost(
                ExecutionMode::Materialized,
                rows,
                partitions,
                dop,
                selectivity,
            ));
    }
    let rows = rows as f64;
    let partitions = partitions.max(1) as f64;
    let selectivity = selectivity.clamp(0.0, 1.0);
    match mode {
        ExecutionMode::Materialized => {
            // scans everything (no partition pruning), single-threaded
            // scoring over one concatenated batch
            rows * (mode_cost::SCAN_ROW + mode_cost::CONCAT_ROW + mode_cost::SCORE_ROW)
        }
        _ => {
            let workers = (dop.max(1) as f64).min(partitions);
            let surviving_rows = rows * selectivity;
            surviving_rows * (mode_cost::SCAN_ROW + mode_cost::SCORE_ROW) / workers
                + partitions * mode_cost::TASK
        }
    }
}

/// Pick the cheaper of the streamed and materialized plans for a table with
/// `rows` rows in `partitions` partitions, executed at degree-of-parallelism
/// `dop` with an (estimated) unprunable-partition fraction `selectivity`.
/// This is what `ExecutionMode::Auto` resolves through.
pub fn choose_execution_mode(
    rows: usize,
    partitions: usize,
    dop: usize,
    selectivity: f64,
) -> ExecutionMode {
    let streaming =
        estimate_mode_cost(ExecutionMode::Streaming, rows, partitions, dop, selectivity);
    let materialized = estimate_mode_cost(
        ExecutionMode::Materialized,
        rows,
        partitions,
        dop,
        selectivity,
    );
    if streaming <= materialized {
        ExecutionMode::Streaming
    } else {
        ExecutionMode::Materialized
    }
}

/// Abstract cost of a mode when the join optimizer's cardinality estimate for
/// the data side is available (multi-join plans). Unlike
/// [`estimate_mode_cost`], which assumes every scanned row reaches scoring,
/// this separates `scanned_rows` (total base-table rows the plan reads) from
/// `estimated_out_rows` (the cost model's estimate of rows surviving joins and
/// filters, i.e. rows that are actually concatenated and scored).
pub fn estimate_mode_cost_from_estimates(
    mode: ExecutionMode,
    scanned_rows: usize,
    estimated_out_rows: usize,
    partitions: usize,
    dop: usize,
    selectivity: f64,
) -> f64 {
    let scanned = scanned_rows as f64;
    let out = estimated_out_rows as f64;
    let partitions = partitions.max(1) as f64;
    let selectivity = selectivity.clamp(0.0, 1.0);
    match mode {
        ExecutionMode::Materialized => {
            // every base row is scanned once; only surviving rows pay the
            // concat-into-one-batch and scoring costs.
            scanned * mode_cost::SCAN_ROW + out * (mode_cost::CONCAT_ROW + mode_cost::SCORE_ROW)
        }
        _ => {
            let workers = (dop.max(1) as f64).min(partitions);
            // pruning skips whole partitions' worth of scanning; surviving
            // rows are scored in-stream (no concat), but each partition pays
            // a task-dispatch fee.
            (scanned * selectivity * mode_cost::SCAN_ROW + out * mode_cost::SCORE_ROW) / workers
                + partitions * mode_cost::TASK
        }
    }
}

/// Estimate-aware counterpart of [`choose_execution_mode`]: picks Streaming
/// vs. Materialized from the join cost model's intermediate-size estimate
/// instead of assuming the scan cardinality flows through scoring. Used for
/// multi-join plans when cost-based mode selection is enabled (the default;
/// pin `RAVEN_MODE_COST=legacy` to restore the single-table heuristic).
pub fn choose_execution_mode_from_estimates(
    scanned_rows: usize,
    estimated_out_rows: usize,
    partitions: usize,
    dop: usize,
    selectivity: f64,
) -> ExecutionMode {
    let streaming = estimate_mode_cost_from_estimates(
        ExecutionMode::Streaming,
        scanned_rows,
        estimated_out_rows,
        partitions,
        dop,
        selectivity,
    );
    let materialized = estimate_mode_cost_from_estimates(
        ExecutionMode::Materialized,
        scanned_rows,
        estimated_out_rows,
        partitions,
        dop,
        selectivity,
    );
    if streaming <= materialized {
        ExecutionMode::Streaming
    } else {
        ExecutionMode::Materialized
    }
}

/// Whether cost-based execution-mode selection is enabled by default, read
/// once from the `RAVEN_MODE_COST` environment variable (same A/B-pin shape
/// as `RAVEN_JOIN_ORDER` for join ordering). `legacy` (or `off`/`0`) pins the
/// pre-cost-model heuristic that only looks at the first referenced table.
pub fn cost_based_mode_default() -> bool {
    !raven_columnar::envcfg::mode_cost_legacy()
}

// ---------------------------------------------------------------------------
// ML-informed rule-based strategy
// ---------------------------------------------------------------------------

/// The ML-informed rule-based strategy: a deep decision tree is trained on the
/// corpus, its `k` most frequently split-on statistics are selected, and a
/// shallow tree over only those statistics becomes the rule (so no model needs
/// to be evaluated at optimization time beyond a couple of comparisons).
#[derive(Debug, Clone)]
pub struct RuleBasedStrategy {
    /// Indices (into the 22-feature vector) of the selected statistics.
    pub selected_features: Vec<usize>,
    shallow_tree: Tree,
}

impl RuleBasedStrategy {
    /// Train the rule from a corpus. `k` is the number of statistics kept
    /// (the paper uses k = 3).
    pub fn train(corpus: &StrategyCorpus, k: usize) -> Result<Self> {
        if corpus.is_empty() {
            return Err(RavenError::Config("empty strategy corpus".into()));
        }
        let all: Vec<usize> = (0..corpus.len()).collect();
        let x = corpus.feature_matrix(&all);
        // multi-class handled as best-class index regression targets for the
        // deep "feature discovery" tree and one-vs-rest shallow trees.
        let labels: Vec<f64> = corpus
            .observations
            .iter()
            .map(|o| o.best_choice().class_index() as f64)
            .collect();
        let deep = train_decision_tree(
            &x,
            &labels,
            &TreeConfig {
                max_depth: 8,
                task: TreeTask::Regression,
                ..Default::default()
            },
        )
        .map_err(|e| RavenError::Ml(e.to_string()))?;
        // feature importance = split frequency
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for f in deep_split_features(&deep) {
            *counts.entry(f).or_insert(0) += 1;
        }
        let mut ranked: Vec<(usize, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let selected: Vec<usize> = ranked.into_iter().take(k.max(1)).map(|(f, _)| f).collect();
        let selected = if selected.is_empty() {
            vec![0]
        } else {
            selected
        };

        let x_sel = select_columns(&x, &selected);
        let shallow = train_decision_tree(
            &x_sel,
            &labels,
            &TreeConfig {
                max_depth: 3,
                task: TreeTask::Regression,
                ..Default::default()
            },
        )
        .map_err(|e| RavenError::Ml(e.to_string()))?;
        Ok(RuleBasedStrategy {
            selected_features: selected,
            shallow_tree: shallow,
        })
    }

    /// Render the learned rule as human-readable text (the "if #features >
    /// 100 apply MLtoDNN ..." form of §5.2).
    pub fn describe(&self) -> String {
        let names = PipelineStats::feature_names();
        let selected: Vec<&str> = self
            .selected_features
            .iter()
            .map(|&i| names.get(i).copied().unwrap_or("?"))
            .collect();
        format!(
            "rule over statistics [{}], {} decision nodes",
            selected.join(", "),
            self.shallow_tree.node_count()
        )
    }
}

impl OptimizationStrategy for RuleBasedStrategy {
    fn choose(&self, stats: &PipelineStats) -> TransformChoice {
        let v = stats.to_vector();
        let row: Vec<f64> = self
            .selected_features
            .iter()
            .map(|&i| v.get(i).copied().unwrap_or(0.0))
            .collect();
        let class = self.shallow_tree.predict_row(&row).round().max(0.0) as usize;
        TransformChoice::from_class_index(class.min(2))
    }
    fn name(&self) -> &'static str {
        "ml-informed-rule-based"
    }
}

fn deep_split_features(tree: &Tree) -> Vec<usize> {
    tree.used_features().into_iter().collect()
}

fn select_columns(x: &Matrix, indices: &[usize]) -> Matrix {
    x.select_columns(indices).expect("valid selected features")
}

// ---------------------------------------------------------------------------
// Classification-based strategy
// ---------------------------------------------------------------------------

/// The classification-based strategy: a random-forest classifier over the 22
/// statistics predicting the best transformation directly (one-vs-rest).
#[derive(Debug, Clone)]
pub struct ClassificationStrategy {
    forests: Vec<(TransformChoice, TreeEnsemble)>,
}

impl ClassificationStrategy {
    /// Train from a corpus.
    pub fn train(corpus: &StrategyCorpus) -> Result<Self> {
        if corpus.is_empty() {
            return Err(RavenError::Config("empty strategy corpus".into()));
        }
        let all: Vec<usize> = (0..corpus.len()).collect();
        let x = corpus.feature_matrix(&all);
        let mut forests = Vec::new();
        for choice in TransformChoice::all() {
            let y: Vec<f64> = corpus
                .observations
                .iter()
                .map(|o| if o.best_choice() == choice { 1.0 } else { 0.0 })
                .collect();
            let forest = train_random_forest(
                &x,
                &y,
                &ForestConfig {
                    n_trees: 10,
                    tree: TreeConfig {
                        max_depth: 5,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .map_err(|e| RavenError::Ml(e.to_string()))?;
            forests.push((choice, forest));
        }
        Ok(ClassificationStrategy { forests })
    }
}

impl OptimizationStrategy for ClassificationStrategy {
    fn choose(&self, stats: &PipelineStats) -> TransformChoice {
        let row = stats.to_vector();
        self.forests
            .iter()
            .map(|(choice, forest)| (*choice, forest.predict_row(&row)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(TransformChoice::None)
    }
    fn name(&self) -> &'static str {
        "classification-based"
    }
}

// ---------------------------------------------------------------------------
// Regression-based strategy
// ---------------------------------------------------------------------------

/// The regression-based strategy: a decision-tree regressor predicting
/// `log(runtime)` with the transformation one-hot encoded as extra features
/// (3× the training data, §5.2); at optimization time the predicted runtime
/// of each option is compared and the minimum wins.
#[derive(Debug, Clone)]
pub struct RegressionStrategy {
    tree: TreeEnsemble,
}

impl RegressionStrategy {
    /// Train from a corpus.
    pub fn train(corpus: &StrategyCorpus) -> Result<Self> {
        if corpus.is_empty() {
            return Err(RavenError::Config("empty strategy corpus".into()));
        }
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        for obs in &corpus.observations {
            for choice in TransformChoice::all() {
                let runtime = obs.runtime(choice);
                if !runtime.is_finite() {
                    continue;
                }
                let mut row = obs.stats.to_vector();
                for c in TransformChoice::all() {
                    row.push(if c == choice { 1.0 } else { 0.0 });
                }
                rows.push(row);
                y.push((runtime.max(1e-9)).ln());
            }
        }
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let cols: Vec<Vec<f64>> = (0..width)
            .map(|j| rows.iter().map(|r| r[j]).collect())
            .collect();
        let x = Matrix::from_columns(&cols).map_err(|e| RavenError::Ml(e.to_string()))?;
        let tree = train_decision_tree(
            &x,
            &y,
            &TreeConfig {
                max_depth: 8,
                task: TreeTask::Regression,
                ..Default::default()
            },
        )
        .map_err(|e| RavenError::Ml(e.to_string()))?;
        Ok(RegressionStrategy {
            tree: TreeEnsemble {
                kind: EnsembleKind::DecisionTreeRegressor,
                trees: vec![tree],
                n_features: width,
                learning_rate: 1.0,
                base_score: 0.0,
            },
        })
    }

    /// Predicted runtime (seconds) of a choice for a pipeline.
    pub fn predict_runtime(&self, stats: &PipelineStats, choice: TransformChoice) -> f64 {
        let mut row = stats.to_vector();
        for c in TransformChoice::all() {
            row.push(if c == choice { 1.0 } else { 0.0 });
        }
        self.tree.predict_row(&row).exp()
    }
}

impl OptimizationStrategy for RegressionStrategy {
    fn choose(&self, stats: &PipelineStats) -> TransformChoice {
        TransformChoice::all()
            .into_iter()
            .map(|c| (c, self.predict_runtime(stats, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(TransformChoice::None)
    }
    fn name(&self) -> &'static str {
        "regression-based"
    }
}

// ---------------------------------------------------------------------------
// Evaluation helpers (Fig. 4)
// ---------------------------------------------------------------------------

/// Evaluate a strategy on a test split: classification accuracy against the
/// oracle choice, and "speedup optimality" — the total oracle runtime divided
/// by the total runtime of the strategy's picks (1.0 = optimal), the metric of
/// the paper's Fig. 4.
pub fn evaluate_strategy(
    strategy: &dyn OptimizationStrategy,
    test: &[&StrategyObservation],
) -> (f64, f64) {
    if test.is_empty() {
        return (0.0, 0.0);
    }
    let mut correct = 0usize;
    let mut chosen_total = 0.0;
    let mut optimal_total = 0.0;
    for obs in test {
        let choice = strategy.choose(&obs.stats);
        if choice == obs.best_choice() {
            correct += 1;
        }
        chosen_total += obs.runtime(choice).min(1e9);
        optimal_total += obs.runtime(obs.best_choice());
    }
    let accuracy = correct as f64 / test.len() as f64;
    let optimality = if chosen_total > 0.0 {
        optimal_total / chosen_total
    } else {
        0.0
    };
    (accuracy, optimality)
}

/// Stratified k-fold indices over the corpus (stratified by oracle class), as
/// used by the paper's 200-run evaluation.
pub fn stratified_folds(corpus: &StrategyCorpus, k: usize, seed: u64) -> Vec<Vec<usize>> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, o) in corpus.observations.iter().enumerate() {
        by_class
            .entry(o.best_choice().class_index())
            .or_default()
            .push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k.max(1)];
    for indices in by_class.values_mut() {
        indices.shuffle(&mut rng);
        for (pos, idx) in indices.iter().enumerate() {
            folds[pos % k.max(1)].push(*idx);
        }
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic corpus with a learnable structure: big ensembles are fastest
    /// on the DNN runtime, small/shallow trees with few features are fastest
    /// as SQL, everything else stays on the ML runtime.
    fn corpus(n: usize) -> StrategyCorpus {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut observations = Vec::new();
        for _ in 0..n {
            let n_trees: f64 = [1.0, 5.0, 20.0, 100.0, 500.0][rng.gen_range(0..5)];
            let depth: f64 = rng.gen_range(2.0..12.0);
            let n_features: f64 = rng.gen_range(5.0..500.0);
            let nodes = n_trees * (2.0f64.powf(depth.min(10.0)));
            let stats = PipelineStats {
                n_inputs: (n_features / 3.0).max(2.0),
                n_features,
                n_trees,
                mean_tree_depth: depth,
                max_tree_depth: depth,
                n_tree_nodes: nodes,
                is_tree_model: 1.0,
                n_operators: 4.0,
                ..Default::default()
            };
            // synthetic runtime model with noise
            let ml = 1.0 + 0.002 * nodes + rng.gen_range(0.0..0.1);
            let sql = 0.3 + 0.01 * nodes + rng.gen_range(0.0..0.1);
            let dnn = 2.5 + 0.0002 * nodes + rng.gen_range(0.0..0.1);
            let mut runtimes = BTreeMap::new();
            runtimes.insert(TransformChoice::None, ml);
            runtimes.insert(TransformChoice::MlToSql, sql);
            runtimes.insert(TransformChoice::MlToDnn, dnn);
            observations.push(StrategyObservation { stats, runtimes });
        }
        StrategyCorpus { observations }
    }

    #[test]
    fn choices_round_trip() {
        for c in TransformChoice::all() {
            assert_eq!(TransformChoice::from_class_index(c.class_index()), c);
        }
        assert_eq!(TransformChoice::MlToSql.name(), "MLtoSQL");
    }

    #[test]
    fn observation_best_choice() {
        let c = corpus(10);
        for o in &c.observations {
            let best = o.best_choice();
            for choice in TransformChoice::all() {
                assert!(o.runtime(best) <= o.runtime(choice) + 1e-12);
            }
        }
        assert!(!c.class_balance().is_empty());
    }

    #[test]
    fn strategies_beat_random_on_synthetic_corpus() {
        let c = corpus(150);
        let test_refs: Vec<&StrategyObservation> = c.observations.iter().collect();

        let rule = RuleBasedStrategy::train(&c, 3).unwrap();
        let (acc_rule, opt_rule) = evaluate_strategy(&rule, &test_refs);
        assert!(acc_rule > 0.6, "rule accuracy {acc_rule}");
        assert!(opt_rule > 0.7, "rule optimality {opt_rule}");
        assert!(!rule.describe().is_empty());
        assert!(rule.selected_features.len() <= 3);

        let cls = ClassificationStrategy::train(&c).unwrap();
        let (acc_cls, opt_cls) = evaluate_strategy(&cls, &test_refs);
        assert!(acc_cls > 0.7, "classification accuracy {acc_cls}");
        assert!(opt_cls > 0.8, "classification optimality {opt_cls}");

        let reg = RegressionStrategy::train(&c).unwrap();
        let (acc_reg, opt_reg) = evaluate_strategy(&reg, &test_refs);
        assert!(acc_reg > 0.6, "regression accuracy {acc_reg}");
        assert!(opt_reg > 0.7, "regression optimality {opt_reg}");
        // predicted runtimes are positive
        assert!(reg.predict_runtime(&c.observations[0].stats, TransformChoice::MlToSql) > 0.0);
    }

    #[test]
    fn stratified_folds_cover_all_observations() {
        let c = corpus(50);
        let folds = stratified_folds(&c, 5, 1);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 50);
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn empty_corpus_rejected() {
        let empty = StrategyCorpus::default();
        assert!(RuleBasedStrategy::train(&empty, 3).is_err());
        assert!(ClassificationStrategy::train(&empty).is_err());
        assert!(RegressionStrategy::train(&empty).is_err());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn evaluate_on_empty_test_set() {
        let c = corpus(20);
        let rule = RuleBasedStrategy::train(&c, 2).unwrap();
        assert_eq!(evaluate_strategy(&rule, &[]), (0.0, 0.0));
    }

    #[test]
    fn execution_mode_costing_prefers_streaming_for_partitioned_data() {
        // many partitions, prunable predicate: streaming wins clearly
        assert_eq!(
            choose_execution_mode(100_000, 16, 4, 0.25),
            ExecutionMode::Streaming
        );
        // large single-partition table: streaming still at least ties
        // (no concat cost) and must never lose by the task-dispatch epsilon
        assert_eq!(
            choose_execution_mode(1_000_000, 1, 1, 1.0),
            ExecutionMode::Streaming
        );
        // tiny table with many partitions and no pruning: task dispatch
        // overhead dominates, materialized wins
        assert_eq!(
            choose_execution_mode(100, 64, 1, 1.0),
            ExecutionMode::Materialized
        );
        // Auto cost equals the cheaper branch
        let auto = estimate_mode_cost(ExecutionMode::Auto, 10_000, 8, 2, 0.5);
        let best = estimate_mode_cost(ExecutionMode::Streaming, 10_000, 8, 2, 0.5).min(
            estimate_mode_cost(ExecutionMode::Materialized, 10_000, 8, 2, 0.5),
        );
        assert_eq!(auto, best);
        assert_eq!(ExecutionMode::Streaming.name(), "streaming");
    }

    #[test]
    fn estimate_aware_mode_choice_uses_join_output_size() {
        // Selective join: 100k rows scanned but only ~100 survive to scoring.
        // The legacy chooser (which assumes all scanned rows are scored)
        // prefers streaming on a large single-partition table, but with the
        // output estimate the concat cost shrinks to ~nothing while streaming
        // still pays the per-partition task fee: materialized wins.
        assert_eq!(
            choose_execution_mode(100_000, 1, 4, 1.0),
            ExecutionMode::Streaming
        );
        assert_eq!(
            choose_execution_mode_from_estimates(100_000, 100, 1, 4, 1.0),
            ExecutionMode::Materialized
        );
        // Non-selective join over well-partitioned prunable data: streaming.
        assert_eq!(
            choose_execution_mode_from_estimates(100_000, 100_000, 16, 4, 0.25),
            ExecutionMode::Streaming
        );
        // When the estimate says everything survives and there is one
        // partition with one worker, the two cost models agree on ordering:
        // streaming drops the concat term, so it still wins for big tables.
        assert_eq!(
            choose_execution_mode_from_estimates(1_000_000, 1_000_000, 1, 1, 1.0),
            ExecutionMode::Streaming
        );
        // Degenerate empty estimate never panics.
        let _ = choose_execution_mode_from_estimates(0, 0, 0, 0, f64::NAN);
    }
}
