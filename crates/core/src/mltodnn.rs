//! MLtoDNN (paper §5.1): translate the traditional-ML model of a pipeline
//! into a tensor program executed by the DNN runtime (`raven-tensor`), on the
//! CPU or a (simulated) GPU. Featurizers stay on the ML runtime, mirroring
//! Raven's integration where only the model is handed to Hummingbird.

use crate::error::{RavenError, Result};
use raven_ml::Pipeline;
use raven_tensor::{compile_operator, Device, Strategy, TensorModel};

/// The result of applying MLtoDNN: the original pipeline truncated to stop at
/// the model's input (so featurization still runs on the ML runtime) plus the
/// compiled tensor model bound to a device.
#[derive(Debug, Clone)]
pub struct DnnPlan {
    /// Pipeline producing the model's feature matrix.
    pub featurizer: Pipeline,
    /// The compiled model bound to its device.
    pub model: TensorModel,
}

/// Compile the model node of `pipeline` with the given Hummingbird strategy
/// and bind it to `device`. Fails when the pipeline has no model or the model
/// kind is not tensor-compilable (the pipeline then stays on the ML runtime,
/// as in the paper's 88% coverage discussion, §7.4).
pub fn apply_ml_to_dnn(pipeline: &Pipeline, strategy: Strategy, device: Device) -> Result<DnnPlan> {
    let model_node = pipeline
        .model_node()
        .ok_or_else(|| RavenError::RuleNotApplicable("pipeline has no model operator".into()))?;
    let compiled = compile_operator(&model_node.op, strategy)
        .map_err(|e| RavenError::RuleNotApplicable(e.to_string()))?;

    // Featurizer pipeline: same graph, but its output is the model's input
    // value (the feature matrix). When the model consumes several values they
    // are implicitly concatenated by the runtime, so the common case of a
    // single `features` input is what we support; otherwise fall back.
    if model_node.inputs.len() != 1 {
        return Err(RavenError::RuleNotApplicable(
            "model node with multiple inputs is not supported by MLtoDNN".into(),
        ));
    }
    let feature_value = model_node.inputs[0].clone();
    let mut featurizer = pipeline.clone();
    featurizer.output = feature_value;
    featurizer.name = format!("{}::featurizer", pipeline.name);
    featurizer.prune_dead_nodes();
    featurizer
        .validate()
        .map_err(|e| RavenError::Ml(e.to_string()))?;

    Ok(DnnPlan {
        featurizer,
        model: TensorModel::new(compiled, device),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_columnar::TableBuilder;
    use raven_ml::{bind_batch, train_pipeline, MlRuntime, ModelType, PipelineSpec};
    use raven_tensor::GpuProfile;

    fn batch(n: usize) -> raven_columnar::Batch {
        let mut rng = StdRng::seed_from_u64(13);
        TableBuilder::new("t")
            .add_f64("a", (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
            .add_f64("b", (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .add_utf8(
                "c",
                (0..n)
                    .map(|_| ["u", "v"][rng.gen_range(0..2)].to_string())
                    .collect(),
            )
            .add_f64(
                "label",
                (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect(),
            )
            .build_batch()
            .unwrap()
    }

    #[test]
    fn dnn_plan_matches_ml_runtime() {
        let b = batch(200);
        let pipeline = train_pipeline(
            &b,
            &PipelineSpec {
                name: "gb".into(),
                numeric_inputs: vec!["a".into(), "b".into()],
                categorical_inputs: vec!["c".into()],
                label: "label".into(),
                model: ModelType::GradientBoosting {
                    n_estimators: 8,
                    max_depth: 3,
                    learning_rate: 0.2,
                },
                seed: 2,
            },
        )
        .unwrap();
        let rt = MlRuntime::new();
        let expected = rt.run_batch(&pipeline, &b).unwrap();

        for device in [Device::Cpu, Device::SimulatedGpu(GpuProfile::tesla_k80())] {
            for strategy in [Strategy::Gemm, Strategy::TreeTraversal] {
                let plan = apply_ml_to_dnn(&pipeline, strategy, device.clone()).unwrap();
                // run featurizer then tensor model
                let inputs = bind_batch(&plan.featurizer, &b).unwrap();
                let features = rt.run(&plan.featurizer, &inputs).unwrap();
                let features = features.as_numeric().unwrap();
                let run = plan.model.run(features).unwrap();
                for (a, e) in run.scores.iter().zip(expected.iter()) {
                    assert!((a - e).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn featurizer_pipeline_stops_before_model() {
        let b = batch(100);
        let pipeline = train_pipeline(
            &b,
            &PipelineSpec {
                name: "dt".into(),
                numeric_inputs: vec!["a".into()],
                categorical_inputs: vec![],
                label: "label".into(),
                model: ModelType::DecisionTree { max_depth: 3 },
                seed: 2,
            },
        )
        .unwrap();
        let plan = apply_ml_to_dnn(&pipeline, Strategy::Gemm, Device::Cpu).unwrap();
        assert!(
            plan.featurizer.model_node().is_none()
                || !plan
                    .featurizer
                    .model_node()
                    .map(|n| n.output == plan.featurizer.output)
                    .unwrap_or(false)
        );
        assert!(plan.featurizer.node_count() < pipeline.node_count());
    }
}
