//! Fused featurize→score kernels: the whole prediction pipeline compiled
//! into one block-at-a-time pass.
//!
//! PR 4 vectorized tree scoring, but every featurizer still ran
//! interpreter-shaped: `bind_batch` cloned each source column into a
//! row-major [`crate::Matrix`] (allocating a `String` per row for
//! integer-backed categorical columns), every operator allocated a fresh
//! intermediate `Matrix`, encoders linearly scanned their category lists per
//! row, and the tree kernel finally re-transposed the concatenated result
//! into feature-major lanes. [`FusedPipeline`] compiles all of that away at
//! prepare time:
//!
//! * the operator DAG is **resolved into per-lane programs**: each output
//!   feature lane is traced back to the source column that feeds it plus a
//!   (usually length-0–2) chain of scalar stages — NaN-fill (imputer), the
//!   affine `(x - offset) * scale` (scaler), thresholding (binarizer) —
//!   folded through structural operators (concat, feature extraction,
//!   constants);
//! * one-hot encoders become **lane scatters** with a precomputed
//!   [`CategoryTable`]: per row one hash/binary-search lookup (numeric
//!   categories compare *numerically* — no `format!`, no `String`), the
//!   owned lanes pre-filled with the encoding of "no hit";
//! * execution makes **one pass over the source columns per 64-row block**,
//!   writing finished feature-major lanes straight into the scratch the
//!   model kernels consume — no intermediate `Matrix` exists at any point;
//! * the model runs in the same pass: tree ensembles via
//!   [`FlatEnsemble::score_lanes_block`] (the PR 4 perfect-tree walker, now
//!   with the AVX2 tier), linear models via a dense **lane-major
//!   dot-product kernel** that folds weights in the same per-row order as
//!   the interpreted `dot_rows`, so results stay bit-identical.
//!
//! Pipelines the resolver cannot express (row-wise normalizers, models fed
//! by other models, categorical values consumed as numerics, …) simply
//! don't fuse: [`FusedPipeline::compile`] returns `None` and the runtime
//! falls back to the PR 4 per-operator path with flat tree kernels — which
//! also remains the A/B baseline via [`force_fusion`]. The
//! `RAVEN_SCORER=interpreted` oracle disables both tiers.

use crate::error::{MlError, Result};
use crate::ops::featurizer::CategoryTable;
use crate::ops::linear::sigmoid;
use crate::ops::{FlatEnsemble, Operator, BLOCK};
use crate::pipeline::{InputKind, Pipeline};
use raven_columnar::{Batch, Column, ColumnarError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// fusion-mode selection (fused by default, per-operator path as the baseline)
// ---------------------------------------------------------------------------

/// 0 = no override (fused when compiled), 2 = force the per-operator PR 4
/// baseline (interpreted featurizers + flat tree kernels).
static FORCE_FUSION: AtomicU8 = AtomicU8::new(0);

/// Programmatically pin whether compiled fused pipelines are used (benches
/// A/B the fused pass against the per-operator baseline with this). `None`
/// restores the default (fused whenever compilation succeeded). The
/// `RAVEN_SCORER=interpreted` oracle overrides both — it pins the fully
/// interpreted graph.
pub fn force_fusion(enabled: Option<bool>) {
    FORCE_FUSION.store(
        match enabled {
            None | Some(true) => 0,
            Some(false) => 2,
        },
        Ordering::SeqCst,
    );
}

/// Whether fused pipelines are currently in use (given one compiled).
pub fn fusion_active() -> bool {
    FORCE_FUSION.load(Ordering::SeqCst) != 2
}

// ---------------------------------------------------------------------------
// compiled form
// ---------------------------------------------------------------------------

/// A per-lane scalar transform chain, applied in DAG order. Each stage is
/// exactly the interpreted operator's per-cell computation, so a fused lane
/// is bit-identical to the operator chain it replaced.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ScalarStage {
    /// Imputer: replace NaN with the per-feature fill value.
    FillNan(f64),
    /// Scaler: `(x - offset) * scale`.
    Affine { offset: f64, scale: f64 },
    /// Binarizer: `1.0` when `x > threshold`, else `0.0`.
    Binarize(f64),
}

impl ScalarStage {
    #[inline(always)]
    fn apply(self, v: f64) -> f64 {
        match self {
            ScalarStage::FillNan(fill) => {
                if v.is_nan() {
                    fill
                } else {
                    v
                }
            }
            ScalarStage::Affine { offset, scale } => (v - offset) * scale,
            ScalarStage::Binarize(t) => {
                if v > t {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[inline(always)]
fn apply_stages(stages: &[ScalarStage], mut v: f64) -> f64 {
    for s in stages {
        v = s.apply(v);
    }
    v
}

/// Where a one-hot / label lookup reads its category value from.
#[derive(Debug, Clone)]
enum CatSource {
    /// A categorical pipeline input: looked up by the source column's own
    /// type (strings hash, integers/bools hit the integer table, floats the
    /// numeric table) — the allocation-free equivalent of the runtime's
    /// to-string binding.
    Categorical { input: u32 },
    /// A numeric value (possibly transformed by stages) matched against the
    /// categories with `format_numeric_category` semantics, numerically.
    Numeric {
        input: u32,
        stages: Arc<[ScalarStage]>,
    },
}

/// Per category index: the `(lane, hit value)` writes a one-hot scatter
/// performs when a row lands on that category.
type OneHotWrites = Arc<[Box<[(u32, f64)]>]>;

/// One compiled lane writer. Every op owns a disjoint set of output lanes
/// and (re)writes them completely for each block.
#[derive(Debug, Clone)]
enum FusedOp {
    /// One numeric source column → one lane through a scalar stage chain.
    Numeric {
        input: u32,
        lane: u32,
        stages: Arc<[ScalarStage]>,
    },
    /// A constant lane (constant nodes, with any downstream stages folded).
    Const { lane: u32, value: f64 },
    /// Label-encode a categorical source column into one lane (class index
    /// or -1.0, then any downstream stages).
    Label {
        input: u32,
        lane: u32,
        table: Arc<CategoryTable>,
        stages: Arc<[ScalarStage]>,
    },
    /// One-hot scatter: pre-fill the owned lanes with their "no hit" value
    /// (downstream stages applied to 0.0), compute the row's category index
    /// once, and write the "hit" value (stages applied to 1.0) into the
    /// lane(s) kept for that category.
    OneHot {
        source: CatSource,
        table: Arc<CategoryTable>,
        /// `(lane, stages(0.0))` for every owned output lane.
        fill: Arc<[(u32, f64)]>,
        /// Per category index: the `(lane, stages(1.0))` writes it triggers
        /// (empty when projection dropped that category's lane).
        set: OneHotWrites,
    },
}

/// The model kernel at the end of the fused pass.
#[derive(Debug, Clone)]
enum FusedModel {
    /// Tree ensembles: the PR 4 flattened perfect-tree walker, fed lanes
    /// directly.
    Trees(Arc<FlatEnsemble>),
    /// Linear models: dense lane-major dot product plus link function.
    Linear {
        weights: Arc<[f64]>,
        intercept: f64,
        sigmoid_link: bool,
    },
}

/// A fully compiled featurize→score pipeline. Built once at prepare time by
/// [`crate::CompiledPipeline`]; cloning is cheap (everything is shared).
#[derive(Debug, Clone)]
pub struct FusedPipeline {
    /// Every pipeline input, in declaration order — all must be present in a
    /// scored batch (missing-column errors match `bind_batch`), even ones no
    /// lane reads.
    inputs: Arc<[(String, InputKind)]>,
    ops: Arc<[FusedOp]>,
    n_lanes: usize,
    model: FusedModel,
}

/// Intermediate per-value lane description used during resolution.
#[derive(Debug, Clone)]
enum LaneSpec {
    Numeric {
        input: u32,
        stages: Vec<ScalarStage>,
    },
    Const(f64),
    RawCategorical {
        input: u32,
    },
    Label {
        input: u32,
        enc: usize,
        stages: Vec<ScalarStage>,
    },
    OneHotBit {
        enc: usize,
        bit: u32,
        stages: Vec<ScalarStage>,
    },
}

/// Encoder instance discovered during resolution (`enc` indexes this list).
#[derive(Debug, Clone)]
struct EncoderSpec {
    source: CatSource,
    table: Arc<CategoryTable>,
    width: usize,
}

impl FusedPipeline {
    /// Try to compile `pipeline` into a fused pass. Returns `None` whenever
    /// the pipeline's shape falls outside the fusable operator set — the
    /// caller keeps the per-operator compiled path as the fallback, so
    /// failing to fuse is never an error (and pipelines whose interpreted
    /// evaluation would fail, e.g. width mismatches, intentionally don't
    /// fuse so the interpreted path reports its error).
    pub(crate) fn compile(
        pipeline: &Pipeline,
        flat: &HashMap<String, Arc<FlatEnsemble>>,
    ) -> Option<FusedPipeline> {
        let model_node = pipeline.output_node()?;
        if !model_node.op.is_model() {
            return None;
        }
        let input_idx: HashMap<&str, u32> = pipeline
            .inputs
            .iter()
            .enumerate()
            .map(|(i, inp)| (inp.name.as_str(), i as u32))
            .collect();
        let mut encoders: Vec<EncoderSpec> = Vec::new();
        // Lane programs per value name; `None` marks a value the resolver
        // cannot express (only fatal if the model transitively needs it).
        let mut values: HashMap<&str, Option<Vec<LaneSpec>>> = HashMap::new();
        for inp in &pipeline.inputs {
            let spec = match inp.kind {
                InputKind::Numeric => LaneSpec::Numeric {
                    input: input_idx[inp.name.as_str()],
                    stages: Vec::new(),
                },
                InputKind::Categorical => LaneSpec::RawCategorical {
                    input: input_idx[inp.name.as_str()],
                },
            };
            values.insert(inp.name.as_str(), Some(vec![spec]));
        }
        for node in &pipeline.nodes {
            if node.name == model_node.name {
                continue;
            }
            let resolved = resolve_node(&node.op, &node.inputs, &values, &mut encoders);
            values.insert(node.output.as_str(), resolved);
        }

        // The model consumes the implicit concatenation of its inputs.
        let lanes = numeric_lanes(&model_node.inputs, &values)?;
        let n_lanes = lanes.len();
        let model = match &model_node.op {
            Operator::TreeEnsemble(_) => {
                let scorer = flat.get(model_node.name.as_str())?;
                if scorer.n_features() > n_lanes {
                    return None;
                }
                FusedModel::Trees(scorer.clone())
            }
            Operator::LinearRegression(m) => linear_model(&m.weights, m.intercept, false, n_lanes)?,
            Operator::LogisticRegression(m) => {
                linear_model(&m.weights, m.intercept, true, n_lanes)?
            }
            Operator::LinearSvm(m) => linear_model(&m.weights, m.intercept, false, n_lanes)?,
            _ => return None,
        };

        // Lower lane specs into lane-writer ops; one-hot bits of the same
        // encoder coalesce into a single scatter op.
        let mut ops: Vec<FusedOp> = Vec::new();
        let mut onehot: HashMap<usize, Vec<(u32, u32, Vec<ScalarStage>)>> = HashMap::new();
        for (lane, spec) in lanes.into_iter().enumerate() {
            let lane = lane as u32;
            match spec {
                LaneSpec::Numeric { input, stages } => ops.push(FusedOp::Numeric {
                    input,
                    lane,
                    stages: stages.into(),
                }),
                LaneSpec::Const(value) => ops.push(FusedOp::Const { lane, value }),
                LaneSpec::Label { input, enc, stages } => ops.push(FusedOp::Label {
                    input,
                    lane,
                    table: encoders[enc].table.clone(),
                    stages: stages.into(),
                }),
                LaneSpec::OneHotBit { enc, bit, stages } => {
                    onehot.entry(enc).or_default().push((lane, bit, stages));
                }
                LaneSpec::RawCategorical { .. } => return None,
            }
        }
        let mut encs: Vec<usize> = onehot.keys().copied().collect();
        encs.sort_unstable();
        for enc in encs {
            let members = &onehot[&enc];
            let spec = &encoders[enc];
            let fill: Vec<(u32, f64)> = members
                .iter()
                .map(|(lane, _, stages)| (*lane, apply_stages(stages, 0.0)))
                .collect();
            let mut set: Vec<Vec<(u32, f64)>> = vec![Vec::new(); spec.width];
            for (lane, bit, stages) in members {
                set[*bit as usize].push((*lane, apply_stages(stages, 1.0)));
            }
            ops.push(FusedOp::OneHot {
                source: spec.source.clone(),
                table: spec.table.clone(),
                fill: fill.into(),
                set: set
                    .into_iter()
                    .map(|v| v.into_boxed_slice())
                    .collect::<Vec<_>>()
                    .into(),
            });
        }

        Some(FusedPipeline {
            inputs: pipeline
                .inputs
                .iter()
                .map(|i| (i.name.clone(), i.kind))
                .collect::<Vec<_>>()
                .into(),
            ops: ops.into(),
            n_lanes,
            model,
        })
    }

    /// Number of feature lanes the fused pass produces for the model.
    pub fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    /// Compiled-artifact validation: every lane program must reference only
    /// real source inputs (`input < inputs.len()`) and write only real lanes
    /// (`lane < n_lanes`), including the one-hot fill/scatter writes, and
    /// the model kernel must agree with the lane count (tree ensembles read
    /// at most `n_lanes` features — and pass their own arena checks — and
    /// linear weights match the lane width exactly).
    ///
    /// [`compile`](FusedPipeline::compile) establishes all of this by
    /// construction; `verify` re-checks it in debug builds and under
    /// `RAVEN_VERIFY=strict` so a miscompiled pipeline fails at prepare time
    /// instead of reading a stranger's lane at serve time.
    pub fn verify(&self) -> Result<()> {
        let bad = |msg: String| Err(MlError::InvalidModel(format!("fused pipeline: {msg}")));
        let n_inputs = self.inputs.len();
        let check_input = |i: u32, what: &str| -> Result<()> {
            if i as usize >= n_inputs {
                return bad(format!("{what} reads input {i}, pipeline has {n_inputs}"));
            }
            Ok(())
        };
        let check_lane = |l: u32, what: &str| -> Result<()> {
            if l as usize >= self.n_lanes {
                return bad(format!("{what} writes lane {l} of {}", self.n_lanes));
            }
            Ok(())
        };
        for op in self.ops.iter() {
            match op {
                FusedOp::Numeric { input, lane, .. } => {
                    check_input(*input, "numeric op")?;
                    check_lane(*lane, "numeric op")?;
                }
                FusedOp::Const { lane, .. } => check_lane(*lane, "const op")?,
                FusedOp::Label { input, lane, .. } => {
                    check_input(*input, "label op")?;
                    check_lane(*lane, "label op")?;
                }
                FusedOp::OneHot {
                    source, fill, set, ..
                } => {
                    match source {
                        CatSource::Categorical { input } | CatSource::Numeric { input, .. } => {
                            check_input(*input, "one-hot source")?
                        }
                    }
                    for (lane, _) in fill.iter() {
                        check_lane(*lane, "one-hot fill")?;
                    }
                    for writes in set.iter() {
                        for (lane, _) in writes.iter() {
                            check_lane(*lane, "one-hot scatter")?;
                        }
                    }
                }
            }
        }
        match &self.model {
            FusedModel::Trees(scorer) => {
                if scorer.n_features() > self.n_lanes {
                    return bad(format!(
                        "tree model reads {} features from {} lanes",
                        scorer.n_features(),
                        self.n_lanes
                    ));
                }
                scorer.verify()?;
            }
            FusedModel::Linear { weights, .. } => {
                if weights.len() != self.n_lanes {
                    return bad(format!(
                        "linear model has {} weights for {} lanes",
                        weights.len(),
                        self.n_lanes
                    ));
                }
            }
        }
        Ok(())
    }

    /// Resolve the batch columns every pipeline input binds to (by name,
    /// with `bind_batch`-compatible missing-column errors).
    pub(crate) fn bind<'a>(&'a self, batch: &'a Batch) -> Result<BoundFused<'a>> {
        let mut cols = Vec::with_capacity(self.inputs.len());
        for (name, _) in self.inputs.iter() {
            let col = batch
                .column_by_name(name)
                .map_err(|_| MlError::MissingInput(format!("column {name} not in batch")))?;
            cols.push(col.as_ref());
        }
        Ok(BoundFused { fused: self, cols })
    }
}

fn linear_model(
    weights: &[f64],
    intercept: f64,
    sigmoid_link: bool,
    n_lanes: usize,
) -> Option<FusedModel> {
    if weights.len() != n_lanes {
        return None;
    }
    Some(FusedModel::Linear {
        weights: weights.to_vec().into(),
        intercept,
        sigmoid_link,
    })
}

/// Concatenate the lane programs of `inputs`, requiring every lane to carry
/// a numeric value (raw categorical lanes would make the interpreted
/// `as_numeric` fail, so they don't fuse).
fn numeric_lanes(
    inputs: &[String],
    values: &HashMap<&str, Option<Vec<LaneSpec>>>,
) -> Option<Vec<LaneSpec>> {
    let mut out = Vec::new();
    for name in inputs {
        let lanes = values.get(name.as_str())?.as_ref()?;
        if lanes
            .iter()
            .any(|l| matches!(l, LaneSpec::RawCategorical { .. }))
        {
            return None;
        }
        out.extend(lanes.iter().cloned());
    }
    Some(out)
}

/// Append a scalar stage to every lane of a numeric value (folding constants
/// eagerly — the same f64 op the interpreter would run per row).
fn push_stage(lanes: &mut [LaneSpec], stage: impl Fn(usize) -> ScalarStage) {
    for (c, lane) in lanes.iter_mut().enumerate() {
        match lane {
            LaneSpec::Numeric { stages, .. }
            | LaneSpec::Label { stages, .. }
            | LaneSpec::OneHotBit { stages, .. } => stages.push(stage(c)),
            LaneSpec::Const(v) => *v = stage(c).apply(*v),
            LaneSpec::RawCategorical { .. } => unreachable!("checked by numeric_lanes"),
        }
    }
}

fn resolve_node(
    op: &Operator,
    inputs: &[String],
    values: &HashMap<&str, Option<Vec<LaneSpec>>>,
    encoders: &mut Vec<EncoderSpec>,
) -> Option<Vec<LaneSpec>> {
    match op {
        Operator::Scaler(s) => {
            let mut lanes = numeric_lanes(inputs, values)?;
            // a scales/offsets length mismatch makes the interpreted
            // transform error at runtime — decline to fuse so it still does
            if lanes.len() != s.width() || s.scales.len() != s.offsets.len() {
                return None;
            }
            push_stage(&mut lanes, |c| ScalarStage::Affine {
                offset: s.offsets[c],
                scale: s.scales[c],
            });
            Some(lanes)
        }
        Operator::Imputer(imp) => {
            let mut lanes = numeric_lanes(inputs, values)?;
            if lanes.len() != imp.fill.len() {
                return None;
            }
            push_stage(&mut lanes, |c| ScalarStage::FillNan(imp.fill[c]));
            Some(lanes)
        }
        Operator::Binarizer(b) => {
            let mut lanes = numeric_lanes(inputs, values)?;
            push_stage(&mut lanes, |_| ScalarStage::Binarize(b.threshold));
            Some(lanes)
        }
        Operator::OneHotEncoder(e) => {
            let lanes = single_lane(inputs, values)?;
            let source = cat_source(lanes)?;
            let enc = encoders.len();
            encoders.push(EncoderSpec {
                source,
                table: Arc::new(CategoryTable::build(&e.categories)),
                width: e.categories.len(),
            });
            Some(
                (0..e.categories.len())
                    .map(|bit| LaneSpec::OneHotBit {
                        enc,
                        bit: bit as u32,
                        stages: Vec::new(),
                    })
                    .collect(),
            )
        }
        Operator::LabelEncoder(l) => {
            let lanes = single_lane(inputs, values)?;
            // the interpreted label encoder accepts only string inputs
            let LaneSpec::RawCategorical { input } = lanes else {
                return None;
            };
            let enc = encoders.len();
            encoders.push(EncoderSpec {
                source: CatSource::Categorical { input: *input },
                table: Arc::new(CategoryTable::build(&l.classes)),
                width: l.classes.len(),
            });
            Some(vec![LaneSpec::Label {
                input: *input,
                enc,
                stages: Vec::new(),
            }])
        }
        Operator::Concat => numeric_lanes(inputs, values),
        Operator::FeatureExtractor(fe) => {
            let lanes = numeric_lanes(inputs, values)?;
            fe.indices
                .iter()
                .map(|&i| lanes.get(i).cloned())
                .collect::<Option<Vec<_>>>()
        }
        Operator::Constant(c) => Some(c.values.iter().map(|&v| LaneSpec::Const(v)).collect()),
        Operator::Normalizer(_)
        | Operator::LinearRegression(_)
        | Operator::LogisticRegression(_)
        | Operator::LinearSvm(_)
        | Operator::TreeEnsemble(_) => None,
    }
}

/// The single lane of an encoder's single single-column input.
fn single_lane<'v>(
    inputs: &[String],
    values: &'v HashMap<&str, Option<Vec<LaneSpec>>>,
) -> Option<&'v LaneSpec> {
    if inputs.len() != 1 {
        return None;
    }
    let lanes = values.get(inputs[0].as_str())?.as_ref()?;
    if lanes.len() != 1 {
        return None;
    }
    lanes.first()
}

fn cat_source(lane: &LaneSpec) -> Option<CatSource> {
    match lane {
        LaneSpec::RawCategorical { input } => Some(CatSource::Categorical { input: *input }),
        LaneSpec::Numeric { input, stages } => Some(CatSource::Numeric {
            input: *input,
            stages: stages.clone().into(),
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------------

/// Row addressing for one block: either a contiguous run of batch rows or a
/// gathered selection (the zero-copy filter→score path reads selected rows
/// straight from the source columns).
trait RowIx: Copy {
    fn at(self, i: usize) -> usize;
}

#[derive(Clone, Copy)]
struct Seq(usize);
impl RowIx for Seq {
    #[inline(always)]
    fn at(self, i: usize) -> usize {
        self.0 + i
    }
}

#[derive(Clone, Copy)]
struct Gather<'a>(&'a [u32]);
impl RowIx for Gather<'_> {
    #[inline(always)]
    fn at(self, i: usize) -> usize {
        self.0[i] as usize
    }
}

/// A [`FusedPipeline`] with its input columns resolved against one batch.
#[derive(Debug)]
pub(crate) struct BoundFused<'a> {
    fused: &'a FusedPipeline,
    cols: Vec<&'a Column>,
}

impl BoundFused<'_> {
    /// Score `len` contiguous rows starting at `start`, appending one score
    /// per row to `out`.
    pub(crate) fn score_range(&self, start: usize, len: usize, out: &mut Vec<f64>) -> Result<()> {
        self.score_blocks(len, |offset| Seq(start + offset), out)
    }

    /// Score the gathered rows at `indices`, appending one score per row.
    pub(crate) fn score_gathered(&self, indices: &[u32], out: &mut Vec<f64>) -> Result<()> {
        self.score_blocks(indices.len(), |offset| Gather(&indices[offset..]), out)
    }

    fn score_blocks<R: RowIx>(
        &self,
        total: usize,
        rows_at: impl Fn(usize) -> R,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.reserve(total);
        let lanes = self.fused.n_lanes.max(1);
        let mut feat = vec![0.0f64; lanes * BLOCK];
        let mut block_out = [0.0f64; BLOCK];
        let mut done = 0;
        while done < total {
            let blen = BLOCK.min(total - done);
            let rows = rows_at(done);
            for op in self.fused.ops.iter() {
                self.fill_lanes(op, rows, blen, &mut feat)?;
            }
            match &self.fused.model {
                FusedModel::Trees(scorer) => scorer.score_lanes_block(&feat, blen, &mut block_out),
                FusedModel::Linear {
                    weights,
                    intercept,
                    sigmoid_link,
                } => linear_lanes_block(
                    weights,
                    *intercept,
                    *sigmoid_link,
                    &feat,
                    blen,
                    &mut block_out,
                ),
            }
            out.extend_from_slice(&block_out[..blen]);
            done += blen;
        }
        Ok(())
    }

    /// Run one lane-writer op for a block: read the rows it needs straight
    /// from its source column and write its owned feature-major lanes.
    fn fill_lanes<R: RowIx>(
        &self,
        op: &FusedOp,
        rows: R,
        blen: usize,
        feat: &mut [f64],
    ) -> Result<()> {
        match op {
            FusedOp::Const { lane, value } => {
                feat[*lane as usize * BLOCK..*lane as usize * BLOCK + blen].fill(*value);
            }
            FusedOp::Numeric {
                input,
                lane,
                stages,
            } => {
                let dst = &mut feat[*lane as usize * BLOCK..*lane as usize * BLOCK + blen];
                fill_numeric(self.cols[*input as usize], rows, stages, dst)?;
            }
            FusedOp::Label {
                input,
                lane,
                table,
                stages,
            } => {
                let col = self.cols[*input as usize];
                let dst = &mut feat[*lane as usize * BLOCK..*lane as usize * BLOCK + blen];
                for (i, d) in dst.iter_mut().enumerate() {
                    let idx = categorical_index(col, table, rows.at(i));
                    *d = apply_stages(stages, idx.map(|x| x as f64).unwrap_or(-1.0));
                }
            }
            FusedOp::OneHot {
                source,
                table,
                fill,
                set,
            } => {
                for &(lane, zero) in fill.iter() {
                    feat[lane as usize * BLOCK..lane as usize * BLOCK + blen].fill(zero);
                }
                match source {
                    CatSource::Categorical { input } => {
                        let col = self.cols[*input as usize];
                        for i in 0..blen {
                            if let Some(idx) = categorical_index(col, table, rows.at(i)) {
                                for &(lane, one) in set[idx].iter() {
                                    feat[lane as usize * BLOCK + i] = one;
                                }
                            }
                        }
                    }
                    CatSource::Numeric { input, stages } => {
                        let col = self.cols[*input as usize];
                        for i in 0..blen {
                            let v = apply_stages(stages, numeric_at(col, rows.at(i))?);
                            if let Some(idx) = table.index_of_f64(v) {
                                for &(lane, one) in set[idx].iter() {
                                    feat[lane as usize * BLOCK + i] = one;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Category index of one categorical-kind cell, by source column type — the
/// allocation-free equivalent of the runtime's to-string binding followed by
/// a string match.
#[inline(always)]
fn categorical_index(col: &Column, table: &CategoryTable, row: usize) -> Option<usize> {
    match col {
        Column::Utf8(v) => table.index_of_str(&v[row]),
        Column::Int64(v) => table.index_of_i64(v[row]),
        Column::Boolean(v) => table.index_of_bool(v[row]),
        Column::Float64(v) => table.index_of_f64(v[row]),
    }
}

fn numeric_type_error() -> MlError {
    MlError::from(ColumnarError::TypeMismatch {
        expected: "numeric".into(),
        found: "Utf8".into(),
    })
}

/// One numeric-kind cell (the same conversions as `column_to_frame`).
#[inline(always)]
fn numeric_at(col: &Column, row: usize) -> Result<f64> {
    match col {
        Column::Float64(v) => Ok(v[row]),
        Column::Int64(v) => Ok(v[row] as f64),
        Column::Boolean(v) => Ok(if v[row] { 1.0 } else { 0.0 }),
        Column::Utf8(_) => Err(numeric_type_error()),
    }
}

/// Fill one lane from a numeric source column through a stage chain, with
/// the inner loop monomorphized per column type.
fn fill_numeric<R: RowIx>(
    col: &Column,
    rows: R,
    stages: &[ScalarStage],
    dst: &mut [f64],
) -> Result<()> {
    match col {
        Column::Float64(v) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = apply_stages(stages, v[rows.at(i)]);
            }
        }
        Column::Int64(v) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = apply_stages(stages, v[rows.at(i)] as f64);
            }
        }
        Column::Boolean(v) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = apply_stages(stages, if v[rows.at(i)] { 1.0 } else { 0.0 });
            }
        }
        Column::Utf8(_) => return Err(numeric_type_error()),
    }
    Ok(())
}

/// Dense lane-major dot product: `out[i] = link(intercept + Σ_f w_f ·
/// lane_f[i])`, folding weights in ascending feature order — the exact
/// per-row operation sequence of the interpreted `dot_rows`, so linear
/// scores are bit-identical.
fn linear_lanes_block(
    weights: &[f64],
    intercept: f64,
    sigmoid_link: bool,
    chunk: &[f64],
    blen: usize,
    out: &mut [f64],
) {
    out[..blen].fill(intercept);
    for (f, &w) in weights.iter().enumerate() {
        let lane = &chunk[f * BLOCK..f * BLOCK + blen];
        for (o, &v) in out[..blen].iter_mut().zip(lane) {
            *o += v * w;
        }
    }
    if sigmoid_link {
        for o in out[..blen].iter_mut() {
            *o = sigmoid(*o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{
        Binarizer, ConstantNode, FeatureExtractor, Imputer, LabelEncoder, Normalizer,
        OneHotEncoder, Scaler, Tree, TreeEnsemble, TreeNode,
    };
    use crate::pipeline::{PipelineInput, PipelineNode};
    use crate::runtime::{bind_batch, MlRuntime};
    use crate::CompiledPipeline;
    use raven_columnar::TableBuilder;

    fn covid_pipeline() -> Pipeline {
        // imputer → scaler over numerics; one-hot over a categorical; concat;
        // a small tree — the paper's running-example shape
        let tree = Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 3,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Branch {
                    feature: 0,
                    threshold: 1.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 0.5 },
            ],
            root: 0,
        };
        Pipeline::new(
            "fused",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bmi".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![
                PipelineNode {
                    name: "imputer".into(),
                    op: Operator::Imputer(Imputer {
                        fill: vec![40.0, 25.0],
                    }),
                    inputs: vec!["age".into(), "bmi".into()],
                    output: "filled".into(),
                },
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![50.0, 25.0],
                        scales: vec![0.1, 1.0],
                    }),
                    inputs: vec!["filled".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "ohe".into(),
                    op: Operator::OneHotEncoder(OneHotEncoder {
                        categories: vec!["0".into(), "1".into()],
                    }),
                    inputs: vec!["asthma".into()],
                    output: "enc".into(),
                },
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["scaled".into(), "enc".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree, 4)),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    fn batch() -> Batch {
        TableBuilder::new("t")
            .add_f64("age", vec![70.0, f64::NAN, 65.0, 30.0, 80.0])
            .add_f64("bmi", vec![22.0, 30.0, f64::NAN, 27.0, 31.0])
            .add_i64("asthma", vec![1, 0, 1, 2, 0])
            .build_batch()
            .unwrap()
    }

    #[test]
    fn fused_pipeline_compiles_and_matches_interpreted() {
        let p = covid_pipeline();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        let fused = compiled.fused().expect("running example fuses");
        assert_eq!(fused.n_lanes(), 4);
        let b = batch();
        let rt = MlRuntime::new();
        let inputs = bind_batch(&p, &b).unwrap();
        let expected = rt.run(&p, &inputs).unwrap();
        let expected = expected.as_numeric().unwrap();
        let bound = fused.bind(&b).unwrap();
        let mut got = Vec::new();
        bound.score_range(0, b.num_rows(), &mut got).unwrap();
        for (r, &g) in got.iter().enumerate() {
            assert_eq!(expected.get(r, 0).to_bits(), g.to_bits(), "row {r}");
        }
        // gathered rows score like the contiguous rows they index
        let mut gathered = Vec::new();
        bound.score_gathered(&[4, 0, 2], &mut gathered).unwrap();
        assert_eq!(gathered.len(), 3);
        for (g, r) in gathered.iter().zip([4usize, 0, 2]) {
            assert_eq!(g.to_bits(), got[r].to_bits());
        }
    }

    #[test]
    fn linear_and_structural_operators_fuse() {
        // binarizer → extractor → constant concat → logistic model
        let p = Pipeline::new(
            "lin",
            vec![
                PipelineInput {
                    name: "x".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "y".into(),
                    kind: InputKind::Numeric,
                },
            ],
            vec![
                PipelineNode {
                    name: "bin".into(),
                    op: Operator::Binarizer(Binarizer { threshold: 0.5 }),
                    inputs: vec!["x".into(), "y".into()],
                    output: "b".into(),
                },
                PipelineNode {
                    name: "fx".into(),
                    op: Operator::FeatureExtractor(FeatureExtractor {
                        indices: vec![1, 0, 1],
                    }),
                    inputs: vec!["b".into()],
                    output: "sel".into(),
                },
                PipelineNode {
                    name: "konst".into(),
                    op: Operator::Constant(ConstantNode { values: vec![2.5] }),
                    inputs: vec![],
                    output: "k".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::LogisticRegression(crate::ops::LogisticRegressionModel {
                        weights: vec![0.5, -1.5, 2.0, 0.25],
                        intercept: 0.1,
                    }),
                    inputs: vec!["sel".into(), "k".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        let fused = compiled.fused().expect("linear pipeline fuses");
        let b = TableBuilder::new("t")
            .add_f64("x", vec![0.2, 0.9, 0.5])
            .add_i64("y", vec![1, 0, 2])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let inputs = bind_batch(&p, &b).unwrap();
        let expected = rt.run(&p, &inputs).unwrap();
        let expected = expected.as_numeric().unwrap();
        let mut got = Vec::new();
        fused.bind(&b).unwrap().score_range(0, 3, &mut got).unwrap();
        for (r, g) in got.iter().enumerate() {
            assert_eq!(expected.get(r, 0).to_bits(), g.to_bits(), "row {r}");
        }
    }

    #[test]
    fn label_encoder_fuses_with_downstream_stages() {
        let p = Pipeline::new(
            "lab",
            vec![PipelineInput {
                name: "cat".into(),
                kind: InputKind::Categorical,
            }],
            vec![
                PipelineNode {
                    name: "label".into(),
                    op: Operator::LabelEncoder(LabelEncoder {
                        classes: vec!["low".into(), "high".into()],
                    }),
                    inputs: vec!["cat".into()],
                    output: "idx".into(),
                },
                PipelineNode {
                    name: "scale".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![0.5],
                        scales: vec![2.0],
                    }),
                    inputs: vec!["idx".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::LinearRegression(crate::ops::LinearRegressionModel {
                        weights: vec![3.0],
                        intercept: -1.0,
                    }),
                    inputs: vec!["scaled".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        let fused = compiled.fused().expect("label pipeline fuses");
        let b = TableBuilder::new("t")
            .add_utf8("cat", vec!["high".into(), "low".into(), "??".into()])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let inputs = bind_batch(&p, &b).unwrap();
        let expected = rt.run(&p, &inputs).unwrap();
        let expected = expected.as_numeric().unwrap();
        let mut got = Vec::new();
        fused.bind(&b).unwrap().score_range(0, 3, &mut got).unwrap();
        for (r, g) in got.iter().enumerate() {
            assert_eq!(expected.get(r, 0).to_bits(), g.to_bits(), "row {r}");
        }
    }

    #[test]
    fn unfusable_shapes_fall_back_cleanly() {
        // a normalizer on the model path defeats per-lane fusion
        let p = Pipeline::new(
            "norm",
            vec![PipelineInput {
                name: "x".into(),
                kind: InputKind::Numeric,
            }],
            vec![
                PipelineNode {
                    name: "n".into(),
                    op: Operator::Normalizer(Normalizer {
                        norm: crate::ops::Norm::L2,
                    }),
                    inputs: vec!["x".into()],
                    output: "nx".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::LinearRegression(crate::ops::LinearRegressionModel {
                        weights: vec![1.0],
                        intercept: 0.0,
                    }),
                    inputs: vec!["nx".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        assert!(compiled.fused().is_none());

        // ... but a dead unfusable node does not defeat fusion
        let mut p2 = covid_pipeline();
        p2.inputs.push(PipelineInput {
            name: "extra".into(),
            kind: InputKind::Numeric,
        });
        p2.nodes.insert(
            0,
            PipelineNode {
                name: "dead_norm".into(),
                op: Operator::Normalizer(Normalizer {
                    norm: crate::ops::Norm::L1,
                }),
                inputs: vec!["extra".into()],
                output: "dead".into(),
            },
        );
        let compiled = CompiledPipeline::compile(&p2).unwrap();
        assert!(compiled.fused().is_some());
    }

    #[test]
    fn ragged_scaler_declines_to_fuse_instead_of_panicking() {
        // offsets/scales length mismatch passes Pipeline::validate (only
        // tree ensembles have operator-level validation) but errors in the
        // interpreted transform — fusion must bail, not index out of bounds
        let p = Pipeline::new(
            "ragged",
            vec![
                PipelineInput {
                    name: "x".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "y".into(),
                    kind: InputKind::Numeric,
                },
            ],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![1.0, 2.0],
                        scales: vec![0.5],
                    }),
                    inputs: vec!["x".into(), "y".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::LinearRegression(crate::ops::LinearRegressionModel {
                        weights: vec![1.0, 1.0],
                        intercept: 0.0,
                    }),
                    inputs: vec!["scaled".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        assert!(compiled.fused().is_none());
        // the per-operator path still reports the interpreted error
        let b = TableBuilder::new("t")
            .add_f64("x", vec![1.0])
            .add_f64("y", vec![2.0])
            .build_batch()
            .unwrap();
        assert!(MlRuntime::new().run_batch_compiled(&compiled, &b).is_err());
    }

    #[test]
    fn missing_column_errors_match_bind_batch() {
        let p = covid_pipeline();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        let fused = compiled.fused().unwrap();
        let b = TableBuilder::new("t")
            .add_f64("age", vec![1.0])
            .build_batch()
            .unwrap();
        assert!(matches!(
            fused.bind(&b).unwrap_err(),
            MlError::MissingInput(_)
        ));
    }

    #[test]
    fn numeric_one_hot_source_matches_interpreted() {
        // one-hot over a *numeric* input (format_numeric_category semantics)
        let p = Pipeline::new(
            "numcat",
            vec![PipelineInput {
                name: "v".into(),
                kind: InputKind::Numeric,
            }],
            vec![
                PipelineNode {
                    name: "ohe".into(),
                    op: Operator::OneHotEncoder(OneHotEncoder {
                        categories: vec!["1".into(), "2.5".into(), "NaN".into()],
                    }),
                    inputs: vec!["v".into()],
                    output: "enc".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: Operator::LinearRegression(crate::ops::LinearRegressionModel {
                        weights: vec![1.0, 10.0, 100.0],
                        intercept: 0.0,
                    }),
                    inputs: vec!["enc".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap();
        let compiled = CompiledPipeline::compile(&p).unwrap();
        let fused = compiled.fused().expect("numeric one-hot fuses");
        let b = TableBuilder::new("t")
            .add_f64("v", vec![1.0, 2.5, f64::NAN, -0.0, 7.0])
            .build_batch()
            .unwrap();
        let rt = MlRuntime::new();
        let inputs = bind_batch(&p, &b).unwrap();
        let expected = rt.run(&p, &inputs).unwrap();
        let expected = expected.as_numeric().unwrap();
        let mut got = Vec::new();
        fused.bind(&b).unwrap().score_range(0, 5, &mut got).unwrap();
        for (r, g) in got.iter().enumerate() {
            assert_eq!(expected.get(r, 0).to_bits(), g.to_bits(), "row {r}");
        }
    }

    #[test]
    fn force_fusion_toggle() {
        assert!(fusion_active());
        force_fusion(Some(false));
        assert!(!fusion_active());
        force_fusion(None);
        assert!(fusion_active());
    }
}
