//! Error type for the ML substrate.

use raven_columnar::ColumnarError;
use std::fmt;

/// Result alias used throughout `raven-ml`.
pub type Result<T> = std::result::Result<T, MlError>;

/// Errors produced by pipeline construction, training, and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Error bubbled up from the columnar layer.
    Columnar(ColumnarError),
    /// The pipeline graph is malformed (dangling inputs, cycles, arity errors).
    InvalidPipeline(String),
    /// An operator received inputs with an unexpected shape or type.
    ShapeMismatch(String),
    /// Problem during model training.
    Training(String),
    /// A value required by an operator was missing at inference time.
    MissingInput(String),
    /// A trained model is structurally invalid (e.g. a tree splits on a
    /// feature index outside the ensemble's declared feature width). Caught
    /// when a model is registered/compiled rather than silently scoring NaN.
    InvalidModel(String),
    /// Operation not supported for this operator.
    Unsupported(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Columnar(e) => write!(f, "columnar error: {e}"),
            MlError::InvalidPipeline(m) => write!(f, "invalid pipeline: {m}"),
            MlError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            MlError::Training(m) => write!(f, "training error: {m}"),
            MlError::MissingInput(m) => write!(f, "missing input: {m}"),
            MlError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            MlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<ColumnarError> for MlError {
    fn from(e: ColumnarError) -> Self {
        MlError::Columnar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MlError::InvalidPipeline("x".into())
            .to_string()
            .contains("invalid pipeline"));
        let e: MlError = ColumnarError::ColumnNotFound("c".into()).into();
        assert!(e.to_string().contains("columnar"));
    }
}
