//! # raven-ml
//!
//! The traditional-ML substrate of the Raven reproduction: the operator set of
//! the unified IR's ML side (featurizers, linear models, tree ensembles — the
//! operators §2.1 of the paper shows dominate enterprise pipelines), trained
//! pipelines as ONNX-like operator DAGs, model training (so pipelines are fit
//! on data exactly like the scikit-learn pipelines of §7), and a batch
//! inference runtime standing in for ONNX Runtime behind the data engine's
//! UDF boundary.
//!
//! Scoring runs compiled kernels by default: [`CompiledPipeline`] pairs a
//! validated pipeline with flattened tree arenas ([`FlatEnsemble`], with an
//! AVX2 tier runtime-dispatched per tree shape) and — whenever the shape
//! allows — the fully fused featurize→score pass ([`FusedPipeline`], see
//! [`kernels`]). The interpreted operator graph survives as the parity
//! oracle (`RAVEN_SCORER=interpreted`), the per-operator compiled path as
//! the fusion baseline ([`force_fusion`]), and the scalar cursor groups as
//! the SIMD baseline (`RAVEN_SIMD=off` / [`force_simd`]).

pub mod builder;
pub mod compiled;
pub mod error;
pub mod frame;
pub mod kernels;
pub mod ops;
pub mod pipeline;
pub mod runtime;
pub mod train;

pub use builder::{train_pipeline, ModelType, PipelineSpec};
pub use compiled::CompiledPipeline;
pub use error::{MlError, Result};
pub use frame::{FrameValue, Matrix, StringMatrix};
pub use kernels::{force_fusion, fusion_active, FusedPipeline};
pub use ops::{
    force_scorer, force_simd, format_numeric_category, scorer_mode, sigmoid, simd_active,
    Binarizer, CategoryTable, ConstantNode, EnsembleKind, FeatureExtractor, FlatEnsemble, Imputer,
    LabelEncoder, LinearRegressionModel, LinearSvmModel, LogisticRegressionModel, Norm, Normalizer,
    OneHotEncoder, Operator, OperatorCategory, Scaler, ScorerMode, Tree, TreeEnsemble, TreeNode,
};
pub use pipeline::{InputKind, Pipeline, PipelineInput, PipelineNode};
pub use runtime::{
    bind_batch, bind_batch_gather, column_to_frame, column_to_frame_gather, MlRuntime,
    RuntimeConfig,
};
pub use train::{
    accuracy, fit_one_hot, fit_standard_scaler, train_decision_tree,
    train_decision_tree_classifier, train_gradient_boosting, train_linear_regression,
    train_logistic_regression, train_random_forest, BoostingConfig, ForestConfig, LinearConfig,
    TreeConfig, TreeTask,
};
