//! Trained pipelines: DAGs of ML operators (the "model pipeline M" of the
//! paper, Fig. 2 ➋), analogous to an ONNX-ML graph.
//!
//! Values flowing along edges are named, like ONNX value names. Each node
//! consumes one or more named values and produces exactly one named value.
//! Pipeline inputs are the raw data columns (numeric or categorical) the
//! prediction query must bind.

use crate::error::{MlError, Result};
use crate::ops::{Operator, OperatorCategory};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Kind of a pipeline input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputKind {
    /// Numeric column, bound from a Float64/Int64/Boolean data column.
    Numeric,
    /// Categorical column, bound from a Utf8 (or integer) data column and fed
    /// to encoders as strings.
    Categorical,
}

/// A pipeline input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineInput {
    /// Name of the input (matches the data column it binds to).
    pub name: String,
    /// Input kind.
    pub kind: InputKind,
}

/// One operator node in the pipeline DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineNode {
    /// Unique node name.
    pub name: String,
    /// The operator.
    pub op: Operator,
    /// Names of consumed values (pipeline inputs or other nodes' outputs).
    pub inputs: Vec<String>,
    /// Name of the produced value.
    pub output: String,
}

/// A trained pipeline: inputs, operator nodes in topological order, and the
/// name of the final prediction value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Human-readable pipeline name (e.g. `covid_risk.onnx`).
    pub name: String,
    /// Raw data inputs.
    pub inputs: Vec<PipelineInput>,
    /// Operator nodes, topologically ordered.
    pub nodes: Vec<PipelineNode>,
    /// Name of the value holding the final prediction (the "score").
    pub output: String,
}

impl Pipeline {
    /// Create and validate a pipeline.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<PipelineInput>,
        nodes: Vec<PipelineNode>,
        output: impl Into<String>,
    ) -> Result<Self> {
        let p = Pipeline {
            name: name.into(),
            inputs,
            nodes,
            output: output.into(),
        };
        p.validate()?;
        Ok(p)
    }

    /// Full validation: the structural invariants of
    /// [`Pipeline::validate_structure`] plus each operator's trained
    /// parameters ([`Operator::validate`] — e.g. tree feature bounds). Run
    /// when a pipeline is built or compiled; the per-evaluation check in the
    /// runtime uses only the cheap structural part, since the O(model-size)
    /// operator check belongs at registration, not in the scoring loop.
    pub fn validate(&self) -> Result<()> {
        self.validate_structure()?;
        for n in &self.nodes {
            n.op.validate()?;
        }
        Ok(())
    }

    /// Check structural invariants: unique names, inputs defined before use,
    /// reachable output. O(graph), independent of model sizes.
    pub fn validate_structure(&self) -> Result<()> {
        let mut defined: HashSet<&str> = HashSet::new();
        for i in &self.inputs {
            if !defined.insert(i.name.as_str()) {
                return Err(MlError::InvalidPipeline(format!(
                    "duplicate input name {}",
                    i.name
                )));
            }
        }
        let mut node_names: HashSet<&str> = HashSet::new();
        for n in &self.nodes {
            if !node_names.insert(n.name.as_str()) {
                return Err(MlError::InvalidPipeline(format!(
                    "duplicate node name {}",
                    n.name
                )));
            }
            for input in &n.inputs {
                if !defined.contains(input.as_str()) {
                    return Err(MlError::InvalidPipeline(format!(
                        "node {} consumes undefined value {}",
                        n.name, input
                    )));
                }
            }
            if !defined.insert(n.output.as_str()) {
                return Err(MlError::InvalidPipeline(format!(
                    "value {} produced more than once",
                    n.output
                )));
            }
        }
        if !defined.contains(self.output.as_str()) {
            return Err(MlError::InvalidPipeline(format!(
                "pipeline output {} is never produced",
                self.output
            )));
        }
        Ok(())
    }

    /// Names of the pipeline's data inputs.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs.iter().map(|i| i.name.as_str()).collect()
    }

    /// Find a pipeline input by name.
    pub fn input(&self, name: &str) -> Option<&PipelineInput> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// The node producing the given value name, if any.
    pub fn producer(&self, value: &str) -> Option<&PipelineNode> {
        self.nodes.iter().find(|n| n.output == value)
    }

    /// Nodes consuming the given value name.
    pub fn consumers(&self, value: &str) -> Vec<&PipelineNode> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.iter().any(|i| i == value))
            .collect()
    }

    /// The node producing the pipeline output (usually the model).
    pub fn output_node(&self) -> Option<&PipelineNode> {
        self.producer(&self.output)
    }

    /// The model node of the pipeline: the operator producing the output when
    /// it is a model, otherwise the unique model operator in the graph.
    pub fn model_node(&self) -> Option<&PipelineNode> {
        if let Some(n) = self.output_node() {
            if n.op.is_model() {
                return Some(n);
            }
        }
        self.nodes.iter().find(|n| n.op.is_model())
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Count operators per category.
    pub fn category_counts(&self) -> BTreeMap<OperatorCategory, usize> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.op.category()).or_insert(0) += 1;
        }
        out
    }

    /// Count operators by name (e.g. how many one-hot encoders).
    pub fn operator_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.op.name()).or_insert(0) += 1;
        }
        out
    }

    /// Width (number of feature columns) of every value in the graph, given
    /// that each pipeline input contributes one column.
    pub fn value_widths(&self) -> HashMap<String, usize> {
        let mut widths: HashMap<String, usize> = HashMap::new();
        for i in &self.inputs {
            widths.insert(i.name.clone(), 1);
        }
        for n in &self.nodes {
            let input_widths: Vec<usize> = n
                .inputs
                .iter()
                .map(|i| widths.get(i).copied().unwrap_or(0))
                .collect();
            widths.insert(n.output.clone(), n.op.output_width(&input_widths));
        }
        widths
    }

    /// Total number of features fed into the model node (post featurization).
    pub fn feature_width(&self) -> usize {
        let widths = self.value_widths();
        self.model_node()
            .map(|m| {
                m.inputs
                    .iter()
                    .map(|i| widths.get(i).copied().unwrap_or(0))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Remove nodes whose outputs are not (transitively) needed to compute the
    /// pipeline output, and inputs no longer consumed by any remaining node.
    /// Returns the list of removed input names.
    pub fn prune_dead_nodes(&mut self) -> Vec<String> {
        // values needed, walking backwards from the output
        let mut needed: HashSet<String> = HashSet::new();
        needed.insert(self.output.clone());
        let mut changed = true;
        while changed {
            changed = false;
            for n in &self.nodes {
                if needed.contains(&n.output) {
                    for i in &n.inputs {
                        if needed.insert(i.clone()) {
                            changed = true;
                        }
                    }
                }
            }
        }
        self.nodes.retain(|n| needed.contains(&n.output));
        let mut removed = Vec::new();
        self.inputs.retain(|i| {
            if needed.contains(&i.name) {
                true
            } else {
                removed.push(i.name.clone());
                false
            }
        });
        removed
    }

    /// A compact single-line summary used in logs and experiment output.
    pub fn summary(&self) -> String {
        let model = self
            .model_node()
            .map(|n| n.op.name())
            .unwrap_or("<no model>");
        format!(
            "{} [{} inputs, {} operators, {} features, model={}]",
            self.name,
            self.inputs.len(),
            self.nodes.len(),
            self.feature_width(),
            model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ConstantNode, OneHotEncoder, Operator, Scaler, Tree, TreeEnsemble};

    /// A miniature version of the paper's running-example pipeline:
    /// age, bmi → Scaler; asthma → OHE; Concat; TreeClassifier.
    pub(crate) fn example_pipeline() -> Pipeline {
        let scaler = Operator::Scaler(Scaler {
            offsets: vec![50.0, 25.0],
            scales: vec![0.1, 1.0],
        });
        let ohe = Operator::OneHotEncoder(OneHotEncoder {
            categories: vec!["0".into(), "1".into()],
        });
        let tree = Operator::TreeEnsemble(TreeEnsemble::single_tree(
            Tree {
                nodes: vec![
                    crate::ops::TreeNode::Branch {
                        feature: 3,
                        threshold: 0.5,
                        left: 1,
                        right: 2,
                    },
                    crate::ops::TreeNode::Branch {
                        feature: 0,
                        threshold: 1.0,
                        left: 3,
                        right: 4,
                    },
                    crate::ops::TreeNode::Leaf { value: 1.0 },
                    crate::ops::TreeNode::Leaf { value: 0.0 },
                    crate::ops::TreeNode::Leaf { value: 1.0 },
                ],
                root: 0,
            },
            4,
        ));
        Pipeline::new(
            "covid_risk.onnx",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bmi".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: scaler,
                    inputs: vec!["age".into(), "bmi".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "ohe_asthma".into(),
                    op: ohe,
                    inputs: vec!["asthma".into()],
                    output: "asthma_enc".into(),
                },
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["scaled".into(), "asthma_enc".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "model".into(),
                    op: tree,
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let p = example_pipeline();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.input_names(), vec!["age", "bmi", "asthma"]);
        assert_eq!(p.producer("scaled").unwrap().name, "scaler");
        assert_eq!(p.consumers("scaled").len(), 1);
        assert_eq!(p.output_node().unwrap().name, "model");
        assert_eq!(p.model_node().unwrap().op.name(), "DecisionTreeClassifier");
        assert!(p.input("asthma").is_some());
        assert!(p.input("nope").is_none());
    }

    #[test]
    fn validation_catches_errors() {
        let mut p = example_pipeline();
        p.output = "missing".into();
        assert!(p.validate().is_err());

        let mut p = example_pipeline();
        p.nodes[0].inputs.push("ghost".into());
        assert!(p.validate().is_err());

        let mut p = example_pipeline();
        p.nodes[1].output = "scaled".into();
        assert!(p.validate().is_err());

        let mut p = example_pipeline();
        p.inputs.push(PipelineInput {
            name: "age".into(),
            kind: InputKind::Numeric,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn widths_and_feature_count() {
        let p = example_pipeline();
        let widths = p.value_widths();
        assert_eq!(widths["scaled"], 2);
        assert_eq!(widths["asthma_enc"], 2);
        assert_eq!(widths["features"], 4);
        assert_eq!(widths["score"], 1);
        assert_eq!(p.feature_width(), 4);
    }

    #[test]
    fn counts() {
        let p = example_pipeline();
        let cats = p.category_counts();
        assert_eq!(cats[&OperatorCategory::Featurizer], 2);
        assert_eq!(cats[&OperatorCategory::Structural], 1);
        assert_eq!(cats[&OperatorCategory::TreeModel], 1);
        assert_eq!(p.operator_counts()["OneHotEncoder"], 1);
    }

    #[test]
    fn prune_dead_nodes_removes_unused() {
        let mut p = example_pipeline();
        // add a dangling constant node and an unused input
        p.inputs.push(PipelineInput {
            name: "unused_col".into(),
            kind: InputKind::Numeric,
        });
        p.nodes.push(PipelineNode {
            name: "dangling".into(),
            op: Operator::Constant(ConstantNode { values: vec![1.0] }),
            inputs: vec![],
            output: "dangling_out".into(),
        });
        p.validate().unwrap();
        let removed = p.prune_dead_nodes();
        assert_eq!(removed, vec!["unused_col".to_string()]);
        assert_eq!(p.node_count(), 4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn summary_mentions_model() {
        let p = example_pipeline();
        let s = p.summary();
        assert!(s.contains("DecisionTreeClassifier"));
        assert!(s.contains("4 operators"));
    }
}
