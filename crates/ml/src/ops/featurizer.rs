//! Featurization operators (the ONNX-ML "data transformers" of §3):
//! scalers, encoders, imputer, binarizer, normalizer, concat, feature
//! extractor, and constant nodes.

use crate::error::{MlError, Result};
use crate::frame::{FrameValue, Matrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Standard/affine scaler: `y = (x - offset) * scale` per feature column
/// (ONNX `Scaler` semantics, matching the paper's §4.1 constant propagation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    /// Per-feature offsets (typically the training means).
    pub offsets: Vec<f64>,
    /// Per-feature scales (typically `1 / std`).
    pub scales: Vec<f64>,
}

impl Scaler {
    /// Identity scaler over `width` features.
    pub fn identity(width: usize) -> Self {
        Scaler {
            offsets: vec![0.0; width],
            scales: vec![1.0; width],
        }
    }

    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.offsets.len() || input.cols() != self.scales.len() {
            return Err(MlError::ShapeMismatch(format!(
                "scaler configured for {} features, input has {}",
                self.offsets.len(),
                input.cols()
            )));
        }
        let cols = input.cols();
        let mut data = Vec::with_capacity(input.data().len());
        if cols > 0 {
            for row in input.data().chunks_exact(cols) {
                for ((&v, &o), &s) in row.iter().zip(&self.offsets).zip(&self.scales) {
                    data.push((v - o) * s);
                }
            }
        }
        Matrix::new(input.rows(), cols, data)
    }

    /// Transform a single scalar for feature `col` (used when propagating
    /// predicate constants through the scaler at optimization time).
    pub fn transform_scalar(&self, col: usize, value: f64) -> Result<f64> {
        if col >= self.offsets.len() {
            return Err(MlError::ShapeMismatch(format!(
                "feature {col} out of range for scaler width {}",
                self.offsets.len()
            )));
        }
        Ok((value - self.offsets[col]) * self.scales[col])
    }

    /// Restrict the scaler to the given feature columns (densification).
    pub fn select(&self, indices: &[usize]) -> Result<Scaler> {
        let mut offsets = Vec::with_capacity(indices.len());
        let mut scales = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.offsets.len() {
                return Err(MlError::ShapeMismatch(format!(
                    "feature {i} out of range for scaler width {}",
                    self.offsets.len()
                )));
            }
            offsets.push(self.offsets[i]);
            scales.push(self.scales[i]);
        }
        Ok(Scaler { offsets, scales })
    }

    /// Width of the scaler (inputs == outputs).
    pub fn width(&self) -> usize {
        self.offsets.len()
    }
}

/// Precomputed category → output-index lookup shared by the interpreted
/// encoders and the fused featurization kernels.
///
/// The interpreted encoders used to do an O(#categories) linear scan per row,
/// and — for numeric inputs — allocate a fresh `format!` String per row just
/// to compare it against the category list. This table is built once (per
/// `transform` call on the interpreted path, once at compile time on the
/// fused path) and answers every lookup without allocating:
///
/// * strings hash straight into `by_string`;
/// * numeric values compare **numerically**: a category string `c` matches a
///   value `v` iff `format_numeric_category(v) == c`, which holds iff `c`
///   parses to a float that round-trips through the formatter and equals `v`
///   (`format_numeric_category` is value-faithful, so distinct values never
///   share a rendering, and `-0.0` renders like `0.0`). The one value whose
///   equality is not numeric is NaN (`format!` renders it `"NaN"`), kept as
///   an explicit index;
/// * `i64`/bool-sourced categorical columns (which the runtime renders via
///   `to_string`) use an exact integer table.
#[derive(Debug, Clone, Default)]
pub struct CategoryTable {
    by_string: HashMap<String, usize>,
    /// `(value, index)` for categories reachable from an `f64`, sorted by
    /// value (no NaNs; `-0.0` never appears — it renders as `"0"`).
    numeric: Vec<(f64, usize)>,
    by_int: HashMap<i64, usize>,
    nan_index: Option<usize>,
}

impl CategoryTable {
    /// Build the lookup table. Duplicate category strings keep their first
    /// index, matching `iter().position()` on the raw list.
    pub fn build(categories: &[String]) -> CategoryTable {
        let mut t = CategoryTable::default();
        for (i, c) in categories.iter().enumerate() {
            if t.by_string.contains_key(c) {
                continue;
            }
            t.by_string.insert(c.clone(), i);
            if c == "NaN" {
                t.nan_index = Some(i);
                continue;
            }
            if let Ok(v) = c.parse::<f64>() {
                if format_numeric_category(v) == *c {
                    t.numeric.push((v, i));
                }
            }
            if let Ok(n) = c.parse::<i64>() {
                if n.to_string() == *c {
                    t.by_int.insert(n, i);
                }
            }
        }
        t.numeric
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN keys"));
        t
    }

    /// Index of a category string.
    pub fn index_of_str(&self, value: &str) -> Option<usize> {
        self.by_string.get(value).copied()
    }

    /// Index of the category an `f64` value renders to
    /// (`format_numeric_category`) — without rendering it.
    pub fn index_of_f64(&self, value: f64) -> Option<usize> {
        if value.is_nan() {
            return self.nan_index;
        }
        // -0.0 renders as "0": compare as +0.0 (== treats them equal anyway,
        // but binary search needs the canonical key ordering)
        let key = if value == 0.0 { 0.0 } else { value };
        self.numeric
            .binary_search_by(|(k, _)| k.partial_cmp(&key).expect("no NaN keys"))
            .ok()
            .map(|pos| self.numeric[pos].1)
    }

    /// Index of the category an `i64` value renders to (`to_string`).
    pub fn index_of_i64(&self, value: i64) -> Option<usize> {
        self.by_int.get(&value).copied()
    }

    /// Index of the category a bool renders to (`0` / `1`).
    pub fn index_of_bool(&self, value: bool) -> Option<usize> {
        self.index_of_i64(value as i64)
    }
}

/// One-hot encoder over a single categorical input column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneHotEncoder {
    /// The known categories, in output order. Unknown values map to all-zeros.
    pub categories: Vec<String>,
}

impl OneHotEncoder {
    /// Apply to a single-column string matrix.
    pub fn transform(&self, input: &FrameValue) -> Result<Matrix> {
        let rows = input.rows();
        if input.cols() != 1 {
            return Err(MlError::ShapeMismatch(format!(
                "one-hot encoder expects a single column, got {}",
                input.cols()
            )));
        }
        // category → index resolved once, not per row (and numeric inputs
        // compare numerically instead of allocating a String per row)
        let table = CategoryTable::build(&self.categories);
        let mut out = Matrix::zeros(rows, self.categories.len());
        match input {
            FrameValue::Strings(m) => {
                for r in 0..rows {
                    if let Some(idx) = table.index_of_str(m.get(r, 0)) {
                        out.set(r, idx, 1.0);
                    }
                }
            }
            FrameValue::Numeric(m) => {
                for r in 0..rows {
                    if let Some(idx) = table.index_of_f64(m.get(r, 0)) {
                        out.set(r, idx, 1.0);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Index of a category value, if known.
    pub fn category_index(&self, value: &str) -> Option<usize> {
        self.categories.iter().position(|c| c == value)
    }

    /// The one-hot vector produced for a constant input (used to propagate an
    /// equality-predicate constant through the encoder, paper §4.1 step 2).
    pub fn encode_constant(&self, value: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.categories.len()];
        if let Some(i) = self.category_index(value) {
            out[i] = 1.0;
        }
        out
    }

    /// Number of output features.
    pub fn width(&self) -> usize {
        self.categories.len()
    }
}

/// Canonical string form for a numeric categorical value (integral values
/// render without a decimal point so `1` and `1.0` agree).
pub fn format_numeric_category(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Label encoder: maps category strings to their integer index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelEncoder {
    /// Known classes; unknown values map to -1.
    pub classes: Vec<String>,
}

impl LabelEncoder {
    /// Apply to a single-column string matrix.
    pub fn transform(&self, input: &FrameValue) -> Result<Matrix> {
        let strings = input.as_strings()?;
        if strings.cols() != 1 {
            return Err(MlError::ShapeMismatch(
                "label encoder expects a single column".into(),
            ));
        }
        // class → index resolved once, not per row
        let table = CategoryTable::build(&self.classes);
        let mut out = Matrix::zeros(strings.rows(), 1);
        for r in 0..strings.rows() {
            let v = table
                .index_of_str(strings.get(r, 0))
                .map(|i| i as f64)
                .unwrap_or(-1.0);
            out.set(r, 0, v);
        }
        Ok(out)
    }
}

/// Imputer: replaces missing values (NaN) with per-feature fill values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Imputer {
    /// Replacement value per feature.
    pub fill: Vec<f64>,
}

impl Imputer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.fill.len() {
            return Err(MlError::ShapeMismatch(format!(
                "imputer configured for {} features, input has {}",
                self.fill.len(),
                input.cols()
            )));
        }
        let cols = input.cols();
        let mut data = Vec::with_capacity(input.data().len());
        if cols > 0 {
            for row in input.data().chunks_exact(cols) {
                for (&v, &fill) in row.iter().zip(&self.fill) {
                    data.push(if v.is_nan() { fill } else { v });
                }
            }
        }
        Matrix::new(input.rows(), cols, data)
    }
}

/// Binarizer: 1.0 when the value exceeds the threshold, else 0.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binarizer {
    /// Threshold compared with `>`.
    pub threshold: f64,
}

impl Binarizer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Matrix {
        let data = input
            .data()
            .iter()
            .map(|&v| if v > self.threshold { 1.0 } else { 0.0 })
            .collect();
        Matrix::new(input.rows(), input.cols(), data).expect("same shape")
    }
}

/// Row-wise normalization norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Norm {
    L1,
    L2,
    Max,
}

/// Normalizer: scales each row to unit norm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Which norm to normalize by.
    pub norm: Norm,
}

impl Normalizer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Matrix {
        let cols = input.cols();
        let mut data = Vec::with_capacity(input.data().len());
        if cols > 0 {
            for row in input.data().chunks_exact(cols) {
                let norm = match self.norm {
                    Norm::L1 => row.iter().map(|x| x.abs()).sum::<f64>(),
                    Norm::L2 => row.iter().map(|x| x * x).sum::<f64>().sqrt(),
                    Norm::Max => row.iter().fold(0.0f64, |a, &b| a.max(b.abs())),
                };
                if norm > 0.0 {
                    data.extend(row.iter().map(|&v| v / norm));
                } else {
                    data.extend_from_slice(row);
                }
            }
        }
        Matrix::new(input.rows(), cols, data).expect("same shape")
    }
}

/// Feature extractor: selects a subset of feature columns by index. This is
/// the ML-side analogue of a relational projection (paper §3), and the node
/// model-projection pushdown inserts and pushes down (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Indices of the columns to keep, in output order.
    pub indices: Vec<usize>,
}

impl FeatureExtractor {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        input.select_columns(&self.indices)
    }
}

/// A constant feature column, materialized to the batch's row count. Inserted
/// by predicate-based model pruning when an equality predicate fixes an input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstantNode {
    /// The constant values (one per output feature column).
    pub values: Vec<f64>,
}

impl ConstantNode {
    /// Materialize `rows` copies of the constant vector.
    pub fn materialize(&self, rows: usize) -> Matrix {
        let mut data = Vec::with_capacity(rows * self.values.len());
        for _ in 0..rows {
            data.extend_from_slice(&self.values);
        }
        Matrix::new(rows, self.values.len(), data).expect("constant shape")
    }
}

/// Concat: horizontally concatenates its numeric inputs (ONNX `Concat` /
/// scikit-learn `ColumnTransformer` output assembly).
pub fn concat(inputs: &[&FrameValue]) -> Result<Matrix> {
    let matrices = inputs
        .iter()
        .map(|v| v.as_numeric())
        .collect::<Result<Vec<_>>>()?;
    Matrix::hconcat(&matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StringMatrix;

    #[test]
    fn scaler_transform_and_scalar() {
        let s = Scaler {
            offsets: vec![10.0, 0.0],
            scales: vec![0.5, 2.0],
        };
        let m = Matrix::from_columns(&[vec![12.0, 14.0], vec![1.0, 2.0]]).unwrap();
        let out = s.transform(&m).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0]);
        assert_eq!(out.row(1), &[2.0, 4.0]);
        assert_eq!(s.transform_scalar(0, 14.0).unwrap(), 2.0);
        assert!(s.transform_scalar(5, 1.0).is_err());
        assert!(s.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn scaler_select_subset() {
        let s = Scaler {
            offsets: vec![1.0, 2.0, 3.0],
            scales: vec![1.0, 10.0, 100.0],
        };
        let sub = s.select(&[2, 0]).unwrap();
        assert_eq!(sub.offsets, vec![3.0, 1.0]);
        assert_eq!(sub.scales, vec![100.0, 1.0]);
        assert!(s.select(&[9]).is_err());
    }

    #[test]
    fn one_hot_encoding_strings_and_unknown() {
        let enc = OneHotEncoder {
            categories: vec!["no".into(), "yes".into()],
        };
        let input = FrameValue::Strings(StringMatrix::from_column(&[
            "yes".into(),
            "no".into(),
            "maybe".into(),
        ]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.row(0), &[0.0, 1.0]);
        assert_eq!(out.row(1), &[1.0, 0.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]);
        assert_eq!(enc.encode_constant("yes"), vec![0.0, 1.0]);
        assert_eq!(enc.encode_constant("nope"), vec![0.0, 0.0]);
    }

    #[test]
    fn one_hot_encoding_numeric_categories() {
        let enc = OneHotEncoder {
            categories: vec!["0".into(), "1".into(), "2".into()],
        };
        let input = FrameValue::Numeric(Matrix::from_column(&[1.0, 2.0, 0.0]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(format_numeric_category(3.0), "3");
        assert_eq!(format_numeric_category(3.5), "3.5");
    }

    #[test]
    fn category_table_matches_string_semantics() {
        let cats: Vec<String> = ["0", "1", "3.5", "no", "NaN", "3.0", "1", "-7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let t = CategoryTable::build(&cats);
        // string lookups: first occurrence wins, like iter().position()
        for (i, c) in cats.iter().enumerate() {
            let expected = cats.iter().position(|x| x == c).unwrap();
            assert_eq!(t.index_of_str(c), Some(expected), "category {i}");
        }
        assert_eq!(t.index_of_str("nope"), None);
        // numeric lookups agree with format-then-match on every probe value
        for v in [
            0.0,
            -0.0,
            1.0,
            3.5,
            3.0,
            -7.0,
            f64::NAN,
            f64::INFINITY,
            2.25,
            1e16,
        ] {
            let via_format = cats.iter().position(|c| *c == format_numeric_category(v));
            assert_eq!(t.index_of_f64(v), via_format, "value {v}");
        }
        // category "3.0" is unreachable from numeric input: 3.0 renders "3"
        assert_eq!(t.index_of_f64(3.0), None);
        assert_eq!(t.index_of_str("3.0"), Some(5));
        // NaN matches only the literal "NaN" category
        assert_eq!(t.index_of_f64(f64::NAN), Some(4));
        // integer / bool lookups agree with to_string-then-match
        for i in [-7i64, 0, 1, 3, 99] {
            let via_format = cats.iter().position(|c| *c == i.to_string());
            assert_eq!(t.index_of_i64(i), via_format, "int {i}");
        }
        assert_eq!(t.index_of_bool(true), Some(1));
        assert_eq!(t.index_of_bool(false), Some(0));
    }

    #[test]
    fn label_encoder() {
        let enc = LabelEncoder {
            classes: vec!["low".into(), "high".into()],
        };
        let input = FrameValue::Strings(StringMatrix::from_column(&[
            "high".into(),
            "low".into(),
            "??".into(),
        ]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.column(0), vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn imputer_fills_nan() {
        let imp = Imputer {
            fill: vec![5.0, -1.0],
        };
        let m = Matrix::from_columns(&[vec![1.0, f64::NAN], vec![f64::NAN, 2.0]]).unwrap();
        let out = imp.transform(&m).unwrap();
        assert_eq!(out.row(0), &[1.0, -1.0]);
        assert_eq!(out.row(1), &[5.0, 2.0]);
        assert!(imp.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn binarizer_and_normalizer() {
        let b = Binarizer { threshold: 0.5 };
        let m = Matrix::from_column(&[0.2, 0.7]);
        assert_eq!(b.transform(&m).column(0), vec![0.0, 1.0]);

        let n = Normalizer { norm: Norm::L2 };
        let m = Matrix::from_columns(&[vec![3.0, 0.0], vec![4.0, 0.0]]).unwrap();
        let out = n.transform(&m);
        assert!((out.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((out.get(0, 1) - 0.8).abs() < 1e-12);
        // zero row left untouched
        assert_eq!(out.row(1), &[0.0, 0.0]);

        let n1 = Normalizer { norm: Norm::L1 };
        assert!((n1.transform(&m).get(0, 0) - 3.0 / 7.0).abs() < 1e-12);
        let nm = Normalizer { norm: Norm::Max };
        assert!((nm.transform(&m).get(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn feature_extractor_and_constant() {
        let fe = FeatureExtractor {
            indices: vec![1, 0],
        };
        let m = Matrix::from_columns(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(fe.transform(&m).unwrap().row(0), &[2.0, 1.0]);

        let c = ConstantNode {
            values: vec![7.0, 8.0],
        };
        let out = c.materialize(3);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(2), &[7.0, 8.0]);
    }

    #[test]
    fn concat_numeric_inputs() {
        let a = FrameValue::Numeric(Matrix::from_column(&[1.0, 2.0]));
        let b = FrameValue::Numeric(Matrix::from_column(&[3.0, 4.0]));
        let out = concat(&[&a, &b]).unwrap();
        assert_eq!(out.cols(), 2);
        let s = FrameValue::Strings(StringMatrix::from_column(&["x".into()]));
        assert!(concat(&[&a, &s]).is_err());
    }
}
