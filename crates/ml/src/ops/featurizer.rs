//! Featurization operators (the ONNX-ML "data transformers" of §3):
//! scalers, encoders, imputer, binarizer, normalizer, concat, feature
//! extractor, and constant nodes.

use crate::error::{MlError, Result};
use crate::frame::{FrameValue, Matrix};
use serde::{Deserialize, Serialize};

/// Standard/affine scaler: `y = (x - offset) * scale` per feature column
/// (ONNX `Scaler` semantics, matching the paper's §4.1 constant propagation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    /// Per-feature offsets (typically the training means).
    pub offsets: Vec<f64>,
    /// Per-feature scales (typically `1 / std`).
    pub scales: Vec<f64>,
}

impl Scaler {
    /// Identity scaler over `width` features.
    pub fn identity(width: usize) -> Self {
        Scaler {
            offsets: vec![0.0; width],
            scales: vec![1.0; width],
        }
    }

    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.offsets.len() || input.cols() != self.scales.len() {
            return Err(MlError::ShapeMismatch(format!(
                "scaler configured for {} features, input has {}",
                self.offsets.len(),
                input.cols()
            )));
        }
        let mut out = input.clone();
        let cols = out.cols();
        for r in 0..out.rows() {
            for c in 0..cols {
                let v = (input.get(r, c) - self.offsets[c]) * self.scales[c];
                out.set(r, c, v);
            }
        }
        Ok(out)
    }

    /// Transform a single scalar for feature `col` (used when propagating
    /// predicate constants through the scaler at optimization time).
    pub fn transform_scalar(&self, col: usize, value: f64) -> Result<f64> {
        if col >= self.offsets.len() {
            return Err(MlError::ShapeMismatch(format!(
                "feature {col} out of range for scaler width {}",
                self.offsets.len()
            )));
        }
        Ok((value - self.offsets[col]) * self.scales[col])
    }

    /// Restrict the scaler to the given feature columns (densification).
    pub fn select(&self, indices: &[usize]) -> Result<Scaler> {
        let mut offsets = Vec::with_capacity(indices.len());
        let mut scales = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.offsets.len() {
                return Err(MlError::ShapeMismatch(format!(
                    "feature {i} out of range for scaler width {}",
                    self.offsets.len()
                )));
            }
            offsets.push(self.offsets[i]);
            scales.push(self.scales[i]);
        }
        Ok(Scaler { offsets, scales })
    }

    /// Width of the scaler (inputs == outputs).
    pub fn width(&self) -> usize {
        self.offsets.len()
    }
}

/// One-hot encoder over a single categorical input column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneHotEncoder {
    /// The known categories, in output order. Unknown values map to all-zeros.
    pub categories: Vec<String>,
}

impl OneHotEncoder {
    /// Apply to a single-column string matrix.
    pub fn transform(&self, input: &FrameValue) -> Result<Matrix> {
        let rows = input.rows();
        if input.cols() != 1 {
            return Err(MlError::ShapeMismatch(format!(
                "one-hot encoder expects a single column, got {}",
                input.cols()
            )));
        }
        let mut out = Matrix::zeros(rows, self.categories.len());
        match input {
            FrameValue::Strings(m) => {
                for r in 0..rows {
                    if let Some(idx) = self.category_index(m.get(r, 0)) {
                        out.set(r, idx, 1.0);
                    }
                }
            }
            FrameValue::Numeric(m) => {
                for r in 0..rows {
                    let s = format_numeric_category(m.get(r, 0));
                    if let Some(idx) = self.category_index(&s) {
                        out.set(r, idx, 1.0);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Index of a category value, if known.
    pub fn category_index(&self, value: &str) -> Option<usize> {
        self.categories.iter().position(|c| c == value)
    }

    /// The one-hot vector produced for a constant input (used to propagate an
    /// equality-predicate constant through the encoder, paper §4.1 step 2).
    pub fn encode_constant(&self, value: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.categories.len()];
        if let Some(i) = self.category_index(value) {
            out[i] = 1.0;
        }
        out
    }

    /// Number of output features.
    pub fn width(&self) -> usize {
        self.categories.len()
    }
}

/// Canonical string form for a numeric categorical value (integral values
/// render without a decimal point so `1` and `1.0` agree).
pub fn format_numeric_category(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Label encoder: maps category strings to their integer index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelEncoder {
    /// Known classes; unknown values map to -1.
    pub classes: Vec<String>,
}

impl LabelEncoder {
    /// Apply to a single-column string matrix.
    pub fn transform(&self, input: &FrameValue) -> Result<Matrix> {
        let strings = input.as_strings()?;
        if strings.cols() != 1 {
            return Err(MlError::ShapeMismatch(
                "label encoder expects a single column".into(),
            ));
        }
        let mut out = Matrix::zeros(strings.rows(), 1);
        for r in 0..strings.rows() {
            let v = self
                .classes
                .iter()
                .position(|c| c == strings.get(r, 0))
                .map(|i| i as f64)
                .unwrap_or(-1.0);
            out.set(r, 0, v);
        }
        Ok(out)
    }
}

/// Imputer: replaces missing values (NaN) with per-feature fill values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Imputer {
    /// Replacement value per feature.
    pub fill: Vec<f64>,
}

impl Imputer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.fill.len() {
            return Err(MlError::ShapeMismatch(format!(
                "imputer configured for {} features, input has {}",
                self.fill.len(),
                input.cols()
            )));
        }
        let mut out = input.clone();
        let cols = out.cols();
        for r in 0..out.rows() {
            for c in 0..cols {
                if out.get(r, c).is_nan() {
                    out.set(r, c, self.fill[c]);
                }
            }
        }
        let _ = cols;
        Ok(out)
    }
}

/// Binarizer: 1.0 when the value exceeds the threshold, else 0.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binarizer {
    /// Threshold compared with `>`.
    pub threshold: f64,
}

impl Binarizer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = if *v > self.threshold { 1.0 } else { 0.0 };
        }
        out
    }
}

/// Row-wise normalization norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Norm {
    L1,
    L2,
    Max,
}

/// Normalizer: scales each row to unit norm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Which norm to normalize by.
    pub norm: Norm,
}

impl Normalizer {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        let cols = out.cols();
        for r in 0..out.rows() {
            let row = input.row(r);
            let norm = match self.norm {
                Norm::L1 => row.iter().map(|x| x.abs()).sum::<f64>(),
                Norm::L2 => row.iter().map(|x| x * x).sum::<f64>().sqrt(),
                Norm::Max => row.iter().fold(0.0f64, |a, &b| a.max(b.abs())),
            };
            if norm > 0.0 {
                for c in 0..cols {
                    out.set(r, c, input.get(r, c) / norm);
                }
            }
        }
        out
    }
}

/// Feature extractor: selects a subset of feature columns by index. This is
/// the ML-side analogue of a relational projection (paper §3), and the node
/// model-projection pushdown inserts and pushes down (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Indices of the columns to keep, in output order.
    pub indices: Vec<usize>,
}

impl FeatureExtractor {
    /// Apply to a numeric matrix.
    pub fn transform(&self, input: &Matrix) -> Result<Matrix> {
        input.select_columns(&self.indices)
    }
}

/// A constant feature column, materialized to the batch's row count. Inserted
/// by predicate-based model pruning when an equality predicate fixes an input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstantNode {
    /// The constant values (one per output feature column).
    pub values: Vec<f64>,
}

impl ConstantNode {
    /// Materialize `rows` copies of the constant vector.
    pub fn materialize(&self, rows: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, self.values.len());
        for r in 0..rows {
            for (c, &v) in self.values.iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }
}

/// Concat: horizontally concatenates its numeric inputs (ONNX `Concat` /
/// scikit-learn `ColumnTransformer` output assembly).
pub fn concat(inputs: &[&FrameValue]) -> Result<Matrix> {
    let matrices = inputs
        .iter()
        .map(|v| v.as_numeric())
        .collect::<Result<Vec<_>>>()?;
    Matrix::hconcat(&matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StringMatrix;

    #[test]
    fn scaler_transform_and_scalar() {
        let s = Scaler {
            offsets: vec![10.0, 0.0],
            scales: vec![0.5, 2.0],
        };
        let m = Matrix::from_columns(&[vec![12.0, 14.0], vec![1.0, 2.0]]).unwrap();
        let out = s.transform(&m).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0]);
        assert_eq!(out.row(1), &[2.0, 4.0]);
        assert_eq!(s.transform_scalar(0, 14.0).unwrap(), 2.0);
        assert!(s.transform_scalar(5, 1.0).is_err());
        assert!(s.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn scaler_select_subset() {
        let s = Scaler {
            offsets: vec![1.0, 2.0, 3.0],
            scales: vec![1.0, 10.0, 100.0],
        };
        let sub = s.select(&[2, 0]).unwrap();
        assert_eq!(sub.offsets, vec![3.0, 1.0]);
        assert_eq!(sub.scales, vec![100.0, 1.0]);
        assert!(s.select(&[9]).is_err());
    }

    #[test]
    fn one_hot_encoding_strings_and_unknown() {
        let enc = OneHotEncoder {
            categories: vec!["no".into(), "yes".into()],
        };
        let input = FrameValue::Strings(StringMatrix::from_column(&[
            "yes".into(),
            "no".into(),
            "maybe".into(),
        ]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.row(0), &[0.0, 1.0]);
        assert_eq!(out.row(1), &[1.0, 0.0]);
        assert_eq!(out.row(2), &[0.0, 0.0]);
        assert_eq!(enc.encode_constant("yes"), vec![0.0, 1.0]);
        assert_eq!(enc.encode_constant("nope"), vec![0.0, 0.0]);
    }

    #[test]
    fn one_hot_encoding_numeric_categories() {
        let enc = OneHotEncoder {
            categories: vec!["0".into(), "1".into(), "2".into()],
        };
        let input = FrameValue::Numeric(Matrix::from_column(&[1.0, 2.0, 0.0]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(format_numeric_category(3.0), "3");
        assert_eq!(format_numeric_category(3.5), "3.5");
    }

    #[test]
    fn label_encoder() {
        let enc = LabelEncoder {
            classes: vec!["low".into(), "high".into()],
        };
        let input = FrameValue::Strings(StringMatrix::from_column(&[
            "high".into(),
            "low".into(),
            "??".into(),
        ]));
        let out = enc.transform(&input).unwrap();
        assert_eq!(out.column(0), vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn imputer_fills_nan() {
        let imp = Imputer {
            fill: vec![5.0, -1.0],
        };
        let m = Matrix::from_columns(&[vec![1.0, f64::NAN], vec![f64::NAN, 2.0]]).unwrap();
        let out = imp.transform(&m).unwrap();
        assert_eq!(out.row(0), &[1.0, -1.0]);
        assert_eq!(out.row(1), &[5.0, 2.0]);
        assert!(imp.transform(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn binarizer_and_normalizer() {
        let b = Binarizer { threshold: 0.5 };
        let m = Matrix::from_column(&[0.2, 0.7]);
        assert_eq!(b.transform(&m).column(0), vec![0.0, 1.0]);

        let n = Normalizer { norm: Norm::L2 };
        let m = Matrix::from_columns(&[vec![3.0, 0.0], vec![4.0, 0.0]]).unwrap();
        let out = n.transform(&m);
        assert!((out.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((out.get(0, 1) - 0.8).abs() < 1e-12);
        // zero row left untouched
        assert_eq!(out.row(1), &[0.0, 0.0]);

        let n1 = Normalizer { norm: Norm::L1 };
        assert!((n1.transform(&m).get(0, 0) - 3.0 / 7.0).abs() < 1e-12);
        let nm = Normalizer { norm: Norm::Max };
        assert!((nm.transform(&m).get(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn feature_extractor_and_constant() {
        let fe = FeatureExtractor {
            indices: vec![1, 0],
        };
        let m = Matrix::from_columns(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(fe.transform(&m).unwrap().row(0), &[2.0, 1.0]);

        let c = ConstantNode {
            values: vec![7.0, 8.0],
        };
        let out = c.materialize(3);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(2), &[7.0, 8.0]);
    }

    #[test]
    fn concat_numeric_inputs() {
        let a = FrameValue::Numeric(Matrix::from_column(&[1.0, 2.0]));
        let b = FrameValue::Numeric(Matrix::from_column(&[3.0, 4.0]));
        let out = concat(&[&a, &b]).unwrap();
        assert_eq!(out.cols(), 2);
        let s = FrameValue::Strings(StringMatrix::from_column(&["x".into()]));
        assert!(concat(&[&a, &s]).is_err());
    }
}
