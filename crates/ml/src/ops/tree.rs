//! Decision trees and tree ensembles (decision tree, random forest, gradient
//! boosting) — the model family that dominates enterprise pipelines (§2.1)
//! and the main target of Raven's model pruning optimizations.

use crate::error::{MlError, Result};
use crate::frame::Matrix;
use crate::ops::linear::sigmoid;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One node of a binary decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Internal split: rows with `feature <= threshold` go to `left`,
    /// the rest to `right` (scikit-learn convention).
    Branch {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf with an output value (class-1 probability for classifiers, raw
    /// value for regressors / boosting stages).
    Leaf { value: f64 },
}

/// A binary decision tree stored as a node arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Node storage; `root` indexes into it.
    pub nodes: Vec<TreeNode>,
    /// Index of the root node.
    pub root: usize,
}

impl Tree {
    /// A single-leaf tree.
    pub fn leaf(value: f64) -> Tree {
        Tree {
            nodes: vec![TreeNode::Leaf { value }],
            root: 0,
        }
    }

    /// Evaluate the tree for one feature row.
    ///
    /// A feature index beyond the row falls back to NaN (⇒ the right child,
    /// the missing-value convention). Validated ensembles never hit that
    /// fallback: [`TreeEnsemble::validate_features`] rejects out-of-range
    /// feature indices with a typed error when a model is registered
    /// ([`crate::Pipeline::validate`]) or compiled
    /// ([`crate::ops::FlatEnsemble::compile`]); scoring an unvalidated
    /// ensemble directly keeps the NaN fallback.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Branch {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row.get(*feature).copied().unwrap_or(f64::NAN);
                    idx = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes reachable from the root.
    pub fn node_count(&self) -> usize {
        self.reachable().len()
    }

    /// Number of reachable leaves.
    pub fn leaf_count(&self) -> usize {
        self.reachable()
            .iter()
            .filter(|&&i| matches!(self.nodes[i], TreeNode::Leaf { .. }))
            .count()
    }

    /// Maximum depth (a single leaf has depth 0). Iterative — tree walkers
    /// must not recurse one frame per level, since degenerate chain-shaped
    /// trees (depth ≈ node count) are valid models. Guarded like
    /// [`Tree::reachable`] so cyclic/dangling graphs (rejected with a typed
    /// error at validation) terminate here too instead of looping or
    /// panicking.
    pub fn depth(&self) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut max = 0;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((idx, d)) = stack.pop() {
            let Some(node) = self.nodes.get(idx) else {
                continue;
            };
            match node {
                TreeNode::Leaf { .. } => max = max.max(d),
                TreeNode::Branch { left, right, .. } => {
                    if std::mem::replace(&mut seen[idx], true) {
                        continue;
                    }
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        max
    }

    /// Features referenced by reachable branch nodes.
    pub fn used_features(&self) -> BTreeSet<usize> {
        self.reachable()
            .iter()
            .filter_map(|&i| match &self.nodes[i] {
                TreeNode::Branch { feature, .. } => Some(*feature),
                TreeNode::Leaf { .. } => None,
            })
            .collect()
    }

    fn reachable(&self) -> Vec<usize> {
        // Visited set so a cyclic or sharing node graph (rejected with a
        // typed error by `validate_features` and `FlatEnsemble::compile`)
        // terminates in the stats walkers too. Out-of-arena children are
        // skipped: they are not reachable nodes, and validation reports
        // them as dangling.
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let Some(node) = self.nodes.get(idx) else {
                continue;
            };
            if std::mem::replace(&mut seen[idx], true) {
                continue;
            }
            out.push(idx);
            if let TreeNode::Branch { left, right, .. } = node {
                stack.push(*left);
                stack.push(*right);
            }
        }
        out
    }

    /// Rebuild the tree keeping only reachable nodes (compacts the arena).
    pub fn compact(&self) -> Tree {
        // pruning with no domains copies the reachable sub-tree verbatim
        self.prune_with_domains(&BTreeMap::new())
    }

    /// Prune branches that are unreachable given per-feature value domains
    /// `[lo, hi]` (inclusive). This implements both predicate-based pruning
    /// (equality → `[c, c]`, range predicates) and data-induced pruning
    /// (min/max statistics) from paper §4.1–§4.2.
    ///
    /// Iterative (explicit enter/combine stack): this runs on the query path
    /// for every registered model, and a chain-shaped tree must not consume
    /// one recursion frame per level. Emission order (left sub-tree, right
    /// sub-tree, parent) matches the recursive formulation it replaced.
    pub fn prune_with_domains(&self, domains: &BTreeMap<usize, (f64, f64)>) -> Tree {
        enum Step {
            Visit(usize),
            Combine { feature: usize, threshold: f64 },
        }
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut results: Vec<usize> = Vec::new();
        let mut work = vec![Step::Visit(self.root)];
        while let Some(step) = work.pop() {
            match step {
                Step::Visit(mut idx) => loop {
                    match &self.nodes[idx] {
                        TreeNode::Leaf { value } => {
                            nodes.push(TreeNode::Leaf { value: *value });
                            results.push(nodes.len() - 1);
                            break;
                        }
                        TreeNode::Branch {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            if let Some(&(lo, hi)) = domains.get(feature) {
                                if hi <= *threshold {
                                    // every in-domain value goes left
                                    idx = *left;
                                    continue;
                                }
                                if lo > *threshold {
                                    idx = *right;
                                    continue;
                                }
                            }
                            work.push(Step::Combine {
                                feature: *feature,
                                threshold: *threshold,
                            });
                            work.push(Step::Visit(*right));
                            work.push(Step::Visit(*left));
                            break;
                        }
                    }
                },
                Step::Combine { feature, threshold } => {
                    let right = results.pop().expect("right subtree emitted");
                    let left = results.pop().expect("left subtree emitted");
                    nodes.push(TreeNode::Branch {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                    results.push(nodes.len() - 1);
                }
            }
        }
        let root = results.pop().expect("root emitted");
        Tree { nodes, root }
    }

    /// Keep only the paths leading to leaves whose value satisfies `keep`;
    /// all other leaves are replaced by `sentinel`. Adjacent sentinel leaves
    /// are merged so entire sub-trees collapse. This implements the paper's
    /// output-predicate pruning (predicates on the prediction, §4.1): the
    /// query's post-filter removes sentinel rows, so results are unchanged.
    pub fn prune_by_output(&self, keep: &dyn Fn(f64) -> bool, sentinel: f64) -> Tree {
        // Iterative enter/combine stack, like `prune_with_domains`: the
        // collapse decision needs both rebuilt children, so the combine step
        // runs after both sub-tree emissions. (Collapsed children stay in
        // the arena as dead nodes, as before; `compact` drops them.)
        enum Step {
            Visit(usize),
            Combine { feature: usize, threshold: f64 },
        }
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut results: Vec<usize> = Vec::new();
        let mut work = vec![Step::Visit(self.root)];
        while let Some(step) = work.pop() {
            match step {
                Step::Visit(idx) => match &self.nodes[idx] {
                    TreeNode::Leaf { value } => {
                        let v = if keep(*value) { *value } else { sentinel };
                        nodes.push(TreeNode::Leaf { value: v });
                        results.push(nodes.len() - 1);
                    }
                    TreeNode::Branch {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        work.push(Step::Combine {
                            feature: *feature,
                            threshold: *threshold,
                        });
                        work.push(Step::Visit(*right));
                        work.push(Step::Visit(*left));
                    }
                },
                Step::Combine { feature, threshold } => {
                    let right = results.pop().expect("right subtree emitted");
                    let left = results.pop().expect("left subtree emitted");
                    // collapse when both children became the sentinel leaf
                    if let (TreeNode::Leaf { value: lv }, TreeNode::Leaf { value: rv }) =
                        (&nodes[left], &nodes[right])
                    {
                        if *lv == sentinel && *rv == sentinel {
                            nodes.push(TreeNode::Leaf { value: sentinel });
                            results.push(nodes.len() - 1);
                            continue;
                        }
                    }
                    nodes.push(TreeNode::Branch {
                        feature,
                        threshold,
                        left,
                        right,
                    });
                    results.push(nodes.len() - 1);
                }
            }
        }
        let root = results.pop().expect("root emitted");
        Tree { nodes, root }
    }

    /// Rewrite feature indices according to `mapping` (old → new). Features
    /// absent from the mapping must not be used by the tree.
    pub fn remap_features(&self, mapping: &BTreeMap<usize, usize>) -> Result<Tree> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            nodes.push(match n {
                TreeNode::Leaf { value } => TreeNode::Leaf { value: *value },
                TreeNode::Branch {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let new = mapping.get(feature).ok_or_else(|| {
                        MlError::ShapeMismatch(format!(
                            "feature {feature} not present in remapping"
                        ))
                    })?;
                    TreeNode::Branch {
                        feature: *new,
                        threshold: *threshold,
                        left: *left,
                        right: *right,
                    }
                }
            });
        }
        Ok(Tree {
            nodes,
            root: self.root,
        })
    }
}

/// Which ensemble semantics to apply when combining tree outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnsembleKind {
    /// Single classification tree; leaf values are class-1 probabilities.
    DecisionTreeClassifier,
    /// Single regression tree; leaf values are predictions.
    DecisionTreeRegressor,
    /// Bagged classification trees; the score is the mean leaf probability.
    RandomForestClassifier,
    /// Boosted trees with a logistic link; the score is
    /// `sigmoid(base + lr * Σ tree)`.
    GradientBoostingClassifier,
    /// Boosted regression trees; the prediction is `base + lr * Σ tree`.
    GradientBoostingRegressor,
}

impl EnsembleKind {
    /// Whether the ensemble is a classifier (score in `[0, 1]`).
    pub fn is_classifier(&self) -> bool {
        !matches!(
            self,
            EnsembleKind::DecisionTreeRegressor | EnsembleKind::GradientBoostingRegressor
        )
    }
}

/// A trained tree ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeEnsemble {
    /// Combination semantics.
    pub kind: EnsembleKind,
    /// The member trees.
    pub trees: Vec<Tree>,
    /// Width of the feature vector the trees index into.
    pub n_features: usize,
    /// Learning rate (gradient boosting only; 1.0 otherwise).
    pub learning_rate: f64,
    /// Initial score / bias (gradient boosting only; 0.0 otherwise).
    pub base_score: f64,
}

impl TreeEnsemble {
    /// Build a single-tree classifier.
    pub fn single_tree(tree: Tree, n_features: usize) -> TreeEnsemble {
        TreeEnsemble {
            kind: EnsembleKind::DecisionTreeClassifier,
            trees: vec![tree],
            n_features,
            learning_rate: 1.0,
            base_score: 0.0,
        }
    }

    /// Check that every reachable branch node splits on a feature inside the
    /// ensemble's declared width, that every child index points into the
    /// node arena, and that the node graph is a proper tree (acyclic, no
    /// shared sub-trees). An out-of-range feature used to score silently as
    /// NaN (`row.get(..).unwrap_or(NAN)` in the walker), and a cyclic or
    /// dangling graph would hang or panic the query-path walkers; model
    /// registration ([`crate::Pipeline::validate`], run whenever a pipeline
    /// is built, registered, or evaluated) and flat compilation
    /// ([`crate::ops::FlatEnsemble::compile`]) reject all of them with this
    /// typed error instead. Not called per [`TreeEnsemble::predict`] — the
    /// check is O(nodes) and belongs at registration, not in the scoring
    /// loop.
    pub fn validate_features(&self) -> Result<()> {
        for (t, tree) in self.trees.iter().enumerate() {
            let mut seen = vec![false; tree.nodes.len()];
            let mut stack = vec![tree.root];
            while let Some(idx) = stack.pop() {
                let Some(node) = tree.nodes.get(idx) else {
                    return Err(MlError::InvalidModel(format!(
                        "tree {t} references node {idx}, arena has {}",
                        tree.nodes.len()
                    )));
                };
                if std::mem::replace(&mut seen[idx], true) {
                    return Err(MlError::InvalidModel(format!(
                        "tree {t} node graph is cyclic or shares node {idx}"
                    )));
                }
                if let TreeNode::Branch {
                    feature,
                    left,
                    right,
                    ..
                } = node
                {
                    if *feature >= self.n_features {
                        return Err(MlError::InvalidModel(format!(
                            "tree {t} splits on feature {feature}, \
                             ensemble has {} features",
                            self.n_features
                        )));
                    }
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        Ok(())
    }

    /// Predict the score for every row of `x` (probability for classifiers,
    /// value for regressors).
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() < self.n_features {
            return Err(MlError::ShapeMismatch(format!(
                "ensemble expects {} features, input has {}",
                self.n_features,
                x.cols()
            )));
        }
        let mut out = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            out.push(self.predict_row(x.row(r)));
        }
        Ok(Matrix::from_column(&out))
    }

    /// Predict the score for a single feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        match self.kind {
            EnsembleKind::DecisionTreeClassifier | EnsembleKind::DecisionTreeRegressor => self
                .trees
                .first()
                .map(|t| t.predict_row(row))
                .unwrap_or(0.0),
            EnsembleKind::RandomForestClassifier => {
                if self.trees.is_empty() {
                    return 0.0;
                }
                let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
                sum / self.trees.len() as f64
            }
            EnsembleKind::GradientBoostingClassifier => {
                let raw: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
                sigmoid(self.base_score + self.learning_rate * raw)
            }
            EnsembleKind::GradientBoostingRegressor => {
                let raw: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
                self.base_score + self.learning_rate * raw
            }
        }
    }

    /// Features used by any member tree.
    pub fn used_features(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for t in &self.trees {
            out.extend(t.used_features());
        }
        out
    }

    /// Prune every member tree with per-feature domains and compact them.
    pub fn prune_with_domains(&self, domains: &BTreeMap<usize, (f64, f64)>) -> TreeEnsemble {
        TreeEnsemble {
            trees: self
                .trees
                .iter()
                .map(|t| t.prune_with_domains(domains).compact())
                .collect(),
            ..self.clone()
        }
    }

    /// Densify the ensemble to the listed features (old index order becomes
    /// the new 0..n indexing); returns the densified ensemble.
    pub fn select(&self, indices: &[usize]) -> Result<TreeEnsemble> {
        let mapping: BTreeMap<usize, usize> = indices
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let trees = self
            .trees
            .iter()
            .map(|t| t.remap_features(&mapping))
            .collect::<Result<Vec<_>>>()?;
        Ok(TreeEnsemble {
            trees,
            n_features: indices.len(),
            ..self.clone()
        })
    }

    /// Total number of reachable nodes across trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean tree depth.
    pub fn mean_depth(&self) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.depth() as f64).sum::<f64>() / self.trees.len() as f64
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> usize {
        self.trees.iter().map(|t| t.depth()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example tree of Fig. 3: root on F[3] (asthma one-hot),
    /// left sub-tree on F[0] (scaled age) / F[1], right sub-tree on F[2]/F[3].
    fn example_tree() -> Tree {
        // nodes: indices chosen to exercise non-sequential layout
        Tree {
            nodes: vec![
                /* 0 */
                TreeNode::Branch {
                    feature: 3,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                /* 1 */
                TreeNode::Branch {
                    feature: 0,
                    threshold: 60.0,
                    left: 3,
                    right: 4,
                },
                /* 2 */
                TreeNode::Branch {
                    feature: 2,
                    threshold: 0.5,
                    left: 5,
                    right: 6,
                },
                /* 3 */ TreeNode::Leaf { value: 0.0 },
                /* 4 */
                TreeNode::Branch {
                    feature: 1,
                    threshold: 1.0,
                    left: 7,
                    right: 8,
                },
                /* 5 */ TreeNode::Leaf { value: 1.0 },
                /* 6 */ TreeNode::Leaf { value: 0.0 },
                /* 7 */ TreeNode::Leaf { value: 1.0 },
                /* 8 */ TreeNode::Leaf { value: 0.0 },
            ],
            root: 0,
        }
    }

    #[test]
    fn predict_and_structure() {
        let t = example_tree();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(
            t.used_features().into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // row: F = [age, x, f2, asthma_onehot]
        assert_eq!(t.predict_row(&[70.0, 0.5, 0.0, 0.0]), 1.0);
        assert_eq!(t.predict_row(&[50.0, 0.0, 0.0, 0.0]), 0.0);
        assert_eq!(t.predict_row(&[0.0, 0.0, 0.0, 1.0]), 1.0);
    }

    #[test]
    fn prune_with_equality_domain() {
        let t = example_tree();
        // asthma = 1 (one-hot feature 3 = 1): root goes right always.
        let mut domains = BTreeMap::new();
        domains.insert(3usize, (1.0, 1.0));
        let pruned = t.prune_with_domains(&domains).compact();
        assert!(pruned.node_count() < t.node_count());
        assert!(!pruned.used_features().contains(&3));
        assert!(!pruned.used_features().contains(&0));
        // predictions agree on rows satisfying the predicate
        for f2 in [0.0, 1.0] {
            let row = [30.0, 0.0, f2, 1.0];
            assert_eq!(t.predict_row(&row), pruned.predict_row(&row));
        }
    }

    #[test]
    fn prune_with_range_domain() {
        let t = example_tree();
        // age < 30 (and asthma unconstrained): left branch under node 1 always taken.
        let mut domains = BTreeMap::new();
        domains.insert(0usize, (0.0, 29.0));
        let pruned = t.prune_with_domains(&domains).compact();
        assert!(pruned.node_count() < t.node_count());
        for asthma in [0.0, 1.0] {
            let row = [25.0, 2.0, 1.0, asthma];
            assert_eq!(t.predict_row(&row), pruned.predict_row(&row));
        }
    }

    #[test]
    fn prune_by_output_keeps_positive_paths() {
        let t = example_tree();
        let pruned = t.prune_by_output(&|v| v >= 0.5, -1.0);
        // All rows that originally predicted 1.0 still do.
        for row in [
            [70.0, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [61.0, 0.0, 0.0, 0.0],
        ] {
            if t.predict_row(&row) >= 0.5 {
                assert_eq!(pruned.predict_row(&row), t.predict_row(&row));
            } else {
                assert_eq!(pruned.predict_row(&row), -1.0);
            }
        }
    }

    #[test]
    fn validate_rejects_cyclic_and_dangling_graphs() {
        let cyclic = Tree {
            nodes: vec![TreeNode::Branch {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
            }],
            root: 0,
        };
        let err = TreeEnsemble::single_tree(cyclic, 1)
            .validate_features()
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidModel(_)), "{err}");
        let dangling = Tree {
            nodes: vec![TreeNode::Branch {
                feature: 0,
                threshold: 0.0,
                left: 5,
                right: 5,
            }],
            root: 0,
        };
        let err = TreeEnsemble::single_tree(dangling, 1)
            .validate_features()
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidModel(_)), "{err}");
        assert!(TreeEnsemble::single_tree(example_tree(), 4)
            .validate_features()
            .is_ok());
    }

    #[test]
    fn degenerate_chain_walkers_stay_iterative() {
        // A chain deeper than any thread stack could absorb one recursion
        // frame per level for: every walker on the validation, pruning, and
        // stats paths must stay iterative (compile-side coverage lives in
        // the flat-scorer tests).
        let levels = 200_000usize;
        let mut nodes = Vec::with_capacity(2 * levels + 1);
        for i in 0..levels {
            nodes.push(TreeNode::Branch {
                feature: 0,
                threshold: (levels - i) as f64,
                left: i + 1,
                right: levels + 1 + i,
            });
        }
        nodes.push(TreeNode::Leaf { value: -1.0 });
        for i in 0..levels {
            nodes.push(TreeNode::Leaf { value: i as f64 });
        }
        let t = Tree { nodes, root: 0 };
        assert_eq!(t.depth(), levels);
        assert_eq!(t.node_count(), 2 * levels + 1);
        let copy = t.compact();
        for row in [[0.0], [levels as f64 - 2.5], [f64::NAN]] {
            assert_eq!(
                t.predict_row(&row).to_bits(),
                copy.predict_row(&row).to_bits()
            );
        }
        // the domain forces every split left: the chain collapses to a leaf
        let mut domains = BTreeMap::new();
        domains.insert(0usize, (0.0, 0.0));
        let pruned = t.prune_with_domains(&domains);
        assert_eq!(pruned.node_count(), 1);
        assert_eq!(pruned.predict_row(&[0.0]), -1.0);
        // rejecting every leaf collapses the whole chain into the sentinel
        let sentinel = t.prune_by_output(&|_| false, -9.0).compact();
        assert_eq!(sentinel.node_count(), 1);
        assert_eq!(sentinel.predict_row(&[0.0]), -9.0);
    }

    #[test]
    fn remap_features() {
        let t = example_tree();
        let mut mapping = BTreeMap::new();
        for (new, old) in [0usize, 1, 2, 3].iter().enumerate() {
            mapping.insert(*old, new);
        }
        let same = t.remap_features(&mapping).unwrap();
        assert_eq!(same.used_features(), t.used_features());
        let empty = BTreeMap::new();
        assert!(t.remap_features(&empty).is_err());
    }

    #[test]
    fn ensemble_kinds_predict() {
        let t1 = Tree::leaf(1.0);
        let t2 = Tree::leaf(0.0);
        let rf = TreeEnsemble {
            kind: EnsembleKind::RandomForestClassifier,
            trees: vec![t1.clone(), t2.clone()],
            n_features: 1,
            learning_rate: 1.0,
            base_score: 0.0,
        };
        assert_eq!(rf.predict_row(&[0.0]), 0.5);

        let gb = TreeEnsemble {
            kind: EnsembleKind::GradientBoostingClassifier,
            trees: vec![Tree::leaf(0.0), Tree::leaf(0.0)],
            n_features: 1,
            learning_rate: 0.1,
            base_score: 0.0,
        };
        assert!((gb.predict_row(&[0.0]) - 0.5).abs() < 1e-12);

        let gbr = TreeEnsemble {
            kind: EnsembleKind::GradientBoostingRegressor,
            trees: vec![Tree::leaf(2.0)],
            n_features: 1,
            learning_rate: 0.5,
            base_score: 1.0,
        };
        assert_eq!(gbr.predict_row(&[0.0]), 2.0);

        assert!(EnsembleKind::RandomForestClassifier.is_classifier());
        assert!(!EnsembleKind::GradientBoostingRegressor.is_classifier());
    }

    #[test]
    fn ensemble_matrix_predict_and_shape_check() {
        let ens = TreeEnsemble::single_tree(example_tree(), 4);
        let x = Matrix::from_columns(&[
            vec![70.0, 50.0],
            vec![0.5, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let y = ens.predict(&x).unwrap();
        assert_eq!(y.column(0), vec![1.0, 1.0]);
        assert!(ens.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn ensemble_select_densifies() {
        let ens = TreeEnsemble::single_tree(example_tree(), 6);
        let used: Vec<usize> = ens.used_features().into_iter().collect();
        let dense = ens.select(&used).unwrap();
        assert_eq!(dense.n_features, 4);
        // same predictions when features are re-ordered accordingly
        let row_orig = [70.0, 0.5, 0.0, 0.0, 9.0, 9.0];
        let row_dense: Vec<f64> = used.iter().map(|&i| row_orig[i]).collect();
        assert_eq!(ens.predict_row(&row_orig), dense.predict_row(&row_dense));
    }

    #[test]
    fn ensemble_stats() {
        let ens = TreeEnsemble {
            kind: EnsembleKind::RandomForestClassifier,
            trees: vec![example_tree(), Tree::leaf(0.3)],
            n_features: 4,
            learning_rate: 1.0,
            base_score: 0.0,
        };
        assert_eq!(ens.n_trees(), 2);
        assert_eq!(ens.total_nodes(), 10);
        assert_eq!(ens.max_depth(), 3);
        assert!((ens.mean_depth() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ensemble_prune_with_domains() {
        let ens = TreeEnsemble::single_tree(example_tree(), 4);
        let mut domains = BTreeMap::new();
        domains.insert(3usize, (1.0, 1.0));
        let pruned = ens.prune_with_domains(&domains);
        assert!(pruned.total_nodes() < ens.total_nodes());
    }
}
