//! Flattened, struct-of-arrays tree-ensemble scoring kernels.
//!
//! [`crate::ops::Tree::predict_row`] interprets one heap-allocated enum node
//! at a time: every step is a `match` on a 40-byte `TreeNode`, a
//! bounds-checked arena index, and a bounds-checked `row.get(feature)` — and
//! the whole walk repeats per row. [`FlatEnsemble`] compiles an ensemble once
//! (at model lowering / prepare time) into parallel arrays — per-node split
//! feature, threshold, packed children, and leaf value — with every feature
//! index and child pointer validated against the arena up front, so the
//! scoring loop has no per-node feature bounds check to fall back from (the
//! interpreter's silent `unwrap_or(NAN)`).
//!
//! Scoring is **block-at-a-time** (Hummingbird-style): rows are processed in
//! blocks of [`BLOCK`] = 64. Each block's features are first transposed into
//! a small column-major scratch (feature-major lanes, 64 rows per feature —
//! 8 cache lines each), then every tree advances groups of row cursors one
//! level per pass, keeping many independent traversals in flight so the CPU
//! overlaps their node loads instead of stalling on one pointer chase per
//! row. Two layouts back the traversal:
//!
//! * **Perfect trees** (the fast path, depth ≤ `PERFECT_DEPTH_CAP` = 12,
//!   which every trained model satisfies): each tree is padded to a complete
//!   binary tree stored heap-ordered, so a step is
//!   `n = 2n + 2 - (v <= threshold[n])` — children are computed, never
//!   loaded; leaves above the bottom replicate down the padding so the walk
//!   is exactly `depth` branchless steps. Cursors advance in register-
//!   resident groups of 8, and the first two levels (heap slots 0–2) keep
//!   their node data entirely in registers. The per-node lane offset is
//!   pre-multiplied by `BLOCK` at compile time, so one traversal step is
//!   three loads and a handful of ALU ops.
//! * **Self-loop pointer arenas** (the fallback for degenerate deep trees):
//!   explicit packed child pointers where leaves point at themselves, so the
//!   same fixed-depth branchless walk applies.
//!
//! Numerics are bit-identical to the interpreted walker by construction: the
//! same `v <= threshold` comparison (NaN ⇒ right child, the missing-value
//! convention), per-row tree contributions folded from the first tree in the
//! same order as `iter().sum()` (so even an all-`-0.0` sum keeps its sign
//! bit), and the same ensemble combination (`mean`, `sigmoid(base + lr·Σ)`,
//! …) — the parity proptests in `tests/scoring_parity.rs` pin this.
//!
//! The interpreted path survives as the parity baseline: set
//! `RAVEN_SCORER=interpreted` (or [`force_scorer`]) to make every runtime
//! scoring call ignore compiled kernels, mirroring the `RAVEN_POOL=scoped`
//! convention of the worker pool.

use crate::error::{MlError, Result};
use crate::frame::Matrix;
use crate::ops::linear::sigmoid;
use crate::ops::tree::{EnsembleKind, TreeEnsemble, TreeNode};
use std::sync::atomic::{AtomicU8, Ordering};

/// Rows scored per block. 64 keeps each per-feature scratch lane at one
/// 512-byte run (8 cache lines, so the whole transposed block stays
/// L1-resident for typical feature widths) and gives the out-of-order core
/// 64 independent traversals to overlap; doubling it mostly grows the
/// scratch without adding instruction-level parallelism.
pub const BLOCK: usize = 64;

/// A tree ensemble compiled to a cache-friendly struct-of-arrays layout.
///
/// All trees share one node arena; `roots[t]` is tree `t`'s entry point and
/// children are absolute arena indices. **Leaves are self-loops**
/// (`left == right == self`): the traversal runs exactly `depth[t]` fully
/// branchless iterations per tree — a cursor that reaches a leaf early just
/// spins in place — so the inner loop has no leaf test and no
/// data-dependent branch to mispredict, only a compare that lowers to a
/// conditional move. Compilation validates every feature index and child
/// pointer once, so scoring indexes without fallbacks.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatEnsemble {
    kind: EnsembleKind,
    n_features: usize,
    learning_rate: f64,
    base_score: f64,
    /// Root arena index per tree.
    roots: Vec<u32>,
    /// Depth of each tree (number of traversal iterations it needs).
    depth: Vec<u32>,
    /// Split feature per node (0 for leaves — the read is dead, both
    /// children are `self`).
    feature: Vec<u32>,
    /// Split threshold per node (0.0 for leaves — ditto).
    threshold: Vec<f64>,
    /// Both children packed into one lane per node — left (`v <= threshold`)
    /// in the low 32 bits, right in the high 32; `self | self << 32` for
    /// leaves. One load instead of two in the traversal step.
    children: Vec<u64>,
    /// Leaf value per node (0.0 for branches, which a finished traversal
    /// never lands on).
    value: Vec<f64>,
    /// Total reachable nodes across the trees (kept for introspection even
    /// after the pointer arenas are dropped in favor of the perfect layout).
    n_nodes: usize,
    /// Perfect (complete binary) specialization, built whenever every tree's
    /// depth is at most [`PERFECT_DEPTH_CAP`] — which trained ensembles
    /// always satisfy. Children become index arithmetic (`2n+1` / `2n+2`),
    /// removing the child-pointer load from the traversal step entirely; the
    /// pointer arenas above remain the fallback for degenerate deep trees.
    perfect: Option<PerfectTrees>,
}

/// Deepest tree the perfect (complete-binary) layout is built for: a padded
/// tree stores `2^d - 1` internal slots + `2^d` leaf slots, so 12 caps the
/// worst case at ~100 KB per tree while covering every trained model (the
/// training configs top out at depth 8–10).
const PERFECT_DEPTH_CAP: u32 = 12;

/// Deepest padded tree the AVX2 walker is dispatched for. Gathers have a
/// fixed per-element issue cost that cache locality cannot amortize, while
/// the scalar cursor groups get *faster* on ragged trained trees (padding
/// funnels their loads into a few hot lines). Measured on trained GB-60
/// ensembles (46 features, single core): depth 3 ≈ 1.6×, depth 4 ≈ 1.2–1.4×
/// in favor of the gathers, parity-to-regression from depth 5 up — so the
/// SIMD tier takes the shallow trees and leaves deep ones to the scalar
/// groups. The [`force_simd`] override enables/disables the *tier*; this
/// shape cut always applies, which is what keeps "SIMD never regresses"
/// true per tree.
#[cfg(target_arch = "x86_64")]
const SIMD_MAX_DEPTH: u32 = 4;

/// Hummingbird-style "perfect tree traversal" arrays: every tree padded to a
/// complete binary tree of its own depth, nodes stored heap-ordered (node
/// `n`'s children are `2n+1` / `2n+2` — computed, never loaded), leaf values
/// in a dense bottom-level array. A leaf above the bottom becomes a
/// pass-through split (feature 0, threshold 0.0) whose whole subtree
/// replicates its value, so every root-to-bottom path has exactly `depth`
/// steps and the traversal needs no leaf test at all.
#[derive(Debug, Clone, PartialEq)]
struct PerfectTrees {
    /// Depth of each padded tree.
    depth: Vec<u32>,
    /// Start of each tree's `2^d - 1` internal slots in `nodes`.
    node_offset: Vec<u32>,
    /// Start of each tree's `2^d` leaf slots in `leaf_value`.
    leaf_offset: Vec<u32>,
    /// Per internal slot (heap order): the split feature pre-multiplied by
    /// [`BLOCK`], so the traversal step addresses its feature lane with one
    /// scaled load (`chunk[lane_off + i]`) — no shift, no extra add.
    lane_off: Vec<u32>,
    /// Split threshold per internal slot (heap order).
    threshold: Vec<f64>,
    /// Bottom-level leaf values.
    leaf_value: Vec<f64>,
}

impl PerfectTrees {
    fn build(ensemble: &TreeEnsemble, depths: &[u32]) -> Option<PerfectTrees> {
        if depths.iter().any(|&d| d > PERFECT_DEPTH_CAP) {
            return None;
        }
        let mut out = PerfectTrees {
            depth: depths.to_vec(),
            node_offset: Vec::with_capacity(depths.len()),
            leaf_offset: Vec::with_capacity(depths.len()),
            lane_off: Vec::new(),
            threshold: Vec::new(),
            leaf_value: Vec::new(),
        };
        for (tree, &d) in ensemble.trees.iter().zip(depths) {
            let node_off = out.lane_off.len();
            let leaf_off = out.leaf_value.len();
            out.node_offset.push(node_off as u32);
            out.leaf_offset.push(leaf_off as u32);
            let internal = (1usize << d) - 1;
            out.lane_off.extend(std::iter::repeat_n(0, internal));
            out.threshold.extend(std::iter::repeat_n(0.0, internal));
            out.leaf_value.extend(std::iter::repeat_n(0.0, 1usize << d));
            out.fill(tree, tree.root, 0, 0, d, node_off, leaf_off);
        }
        Some(out)
    }

    /// Write source node `node` into heap slot `h` at `level`; leaves above
    /// the bottom replicate down both padded subtrees.
    #[allow(clippy::too_many_arguments)]
    fn fill(
        &mut self,
        tree: &crate::ops::Tree,
        node: usize,
        h: usize,
        level: u32,
        depth: u32,
        node_off: usize,
        leaf_off: usize,
    ) {
        if level == depth {
            // bottom: h indexes the leaf row of the padded tree
            let first_bottom = (1usize << depth) - 1;
            if let TreeNode::Leaf { value } = &tree.nodes[node] {
                self.leaf_value[leaf_off + h - first_bottom] = *value;
            }
            return;
        }
        match &tree.nodes[node] {
            TreeNode::Branch {
                feature,
                threshold,
                left,
                right,
            } => {
                self.lane_off[node_off + h] = (*feature * BLOCK) as u32;
                self.threshold[node_off + h] = *threshold;
                self.fill(tree, *left, 2 * h + 1, level + 1, depth, node_off, leaf_off);
                self.fill(
                    tree,
                    *right,
                    2 * h + 2,
                    level + 1,
                    depth,
                    node_off,
                    leaf_off,
                );
            }
            TreeNode::Leaf { .. } => {
                // pass-through split: both padded children replicate the
                // leaf (the slot's default feature-0 / 0.0 split is fine —
                // both children are the same value)
                self.fill(tree, node, 2 * h + 1, level + 1, depth, node_off, leaf_off);
                self.fill(tree, node, 2 * h + 2, level + 1, depth, node_off, leaf_off);
            }
        }
    }
}

impl FlatEnsemble {
    /// Compile an ensemble, validating feature bounds and tree structure.
    ///
    /// Fails with [`MlError::InvalidModel`] when a reachable branch node
    /// references a feature `>= n_features` (the case the interpreter used
    /// to score silently as NaN), when a child index dangles, or when the
    /// node graph is cyclic.
    pub fn compile(ensemble: &TreeEnsemble) -> Result<FlatEnsemble> {
        let mut out = FlatEnsemble {
            kind: ensemble.kind,
            n_features: ensemble.n_features,
            learning_rate: ensemble.learning_rate,
            base_score: ensemble.base_score,
            roots: Vec::with_capacity(ensemble.trees.len()),
            depth: Vec::with_capacity(ensemble.trees.len()),
            feature: Vec::new(),
            threshold: Vec::new(),
            children: Vec::new(),
            value: Vec::new(),
            n_nodes: 0,
            perfect: None,
        };
        for (t, tree) in ensemble.trees.iter().enumerate() {
            // A proper tree copies each source node at most once; emitting
            // more than the arena holds means a cycle (or pathological
            // sharing), which the interpreted walker would spin on too.
            let budget = out.feature.len() + tree.nodes.len();
            let (root, depth) = out.flatten(tree, t, tree.root, ensemble.n_features, budget)?;
            out.roots.push(root);
            out.depth.push(depth);
        }
        out.n_nodes = out.feature.len();
        out.perfect = PerfectTrees::build(ensemble, &out.depth);
        if out.perfect.is_some() {
            // The pointer arenas were needed for validation / depths only;
            // the perfect layout replaces them for scoring, and compiled
            // ensembles live long in the serving caches (× per-partition
            // models), so drop the dead weight.
            out.feature = Vec::new();
            out.threshold = Vec::new();
            out.children = Vec::new();
            out.value = Vec::new();
        }
        // Artifact verification (debug builds / RAVEN_VERIFY=strict): the
        // flatten above is supposed to establish every invariant `verify`
        // checks, so this is a self-check on the compiler, not the model.
        if cfg!(debug_assertions) || raven_columnar::envcfg::verify_strict() {
            out.verify()?;
        }
        Ok(out)
    }

    fn flatten(
        &mut self,
        tree: &crate::ops::Tree,
        tree_idx: usize,
        root: usize,
        n_features: usize,
        budget: usize,
    ) -> Result<(u32, u32)> {
        // Explicit-stack pre-order emission: recursion here would track tree
        // depth, and degenerate chain-shaped trees are exactly what the
        // pointer-arena fallback exists for — compiling one must not blow
        // the stack of whichever serving thread prepares the model. Each
        // entry carries the parent slot + side to patch once the child's
        // position is known.
        let start = self.feature.len();
        let mut stack: Vec<(usize, Option<(usize, bool)>)> = vec![(root, None)];
        while let Some((node, patch)) = stack.pop() {
            if self.feature.len() >= budget {
                return Err(MlError::InvalidModel(format!(
                    "tree {tree_idx} is cyclic or larger than its node arena"
                )));
            }
            let n = tree.nodes.get(node).ok_or_else(|| {
                MlError::InvalidModel(format!(
                    "tree {tree_idx} references node {node}, arena has {}",
                    tree.nodes.len()
                ))
            })?;
            let pos = self.feature.len();
            if let Some((parent, is_right)) = patch {
                self.children[parent] |= (pos as u64) << if is_right { 32 } else { 0 };
            }
            match n {
                TreeNode::Leaf { value } => {
                    self.feature.push(0);
                    self.threshold.push(0.0);
                    self.children.push(pos as u64 | (pos as u64) << 32);
                    self.value.push(*value);
                }
                TreeNode::Branch {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if *feature >= n_features {
                        return Err(MlError::InvalidModel(format!(
                            "tree {tree_idx} splits on feature {feature}, \
                             ensemble has {n_features} features"
                        )));
                    }
                    self.feature.push(*feature as u32);
                    self.threshold.push(*threshold);
                    self.children.push(0);
                    self.value.push(0.0);
                    // right pushed first so the left subtree is emitted next
                    // — the same pre-order layout the recursion produced
                    stack.push((*right, Some((pos, true))));
                    stack.push((*left, Some((pos, false))));
                }
            }
        }
        // Depths bottom-up: pre-order emission places children after their
        // parent, so a reverse scan sees both child depths before the parent
        // (leaves self-loop, depth 0).
        let emitted = self.feature.len() - start;
        let mut depth = vec![0u32; emitted];
        for i in (0..emitted).rev() {
            let pos = start + i;
            let l = (self.children[pos] & 0xffff_ffff) as usize;
            let r = (self.children[pos] >> 32) as usize;
            if l != pos || r != pos {
                depth[i] = 1 + depth[l - start].max(depth[r - start]);
            }
        }
        Ok((start as u32, depth.first().copied().unwrap_or(0)))
    }

    /// Combination semantics of the compiled ensemble.
    pub fn kind(&self) -> EnsembleKind {
        self.kind
    }

    /// Width of the feature vector the trees index into.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total reachable nodes across the compiled trees (before any padding).
    pub fn arena_len(&self) -> usize {
        self.n_nodes
    }

    /// Post-flatten artifact validation: the structural invariants the
    /// scoring loops index by without bounds checks. For the perfect layout,
    /// every tree's `2^d - 1` internal and `2^d` leaf slots must lie inside
    /// the shared arrays and every lane offset must be a `BLOCK`-aligned
    /// scaled feature index below `n_features`. For the pointer-arena
    /// fallback, all four node arrays must agree on length, every root and
    /// child pointer must be in bounds, branch features must be below
    /// `n_features`, and each tree must be acyclic with its recorded depth
    /// an upper bound on the true walk depth (the traversal runs exactly
    /// `depth[t]` iterations, so an understated depth would return branch
    /// garbage and a cycle would never self-loop).
    ///
    /// [`compile`](FlatEnsemble::compile) establishes all of this; `verify`
    /// re-checks it in debug builds and under `RAVEN_VERIFY=strict` so a
    /// corrupted or hand-built artifact fails loudly instead of scoring
    /// garbage.
    pub fn verify(&self) -> Result<()> {
        let bad = |msg: String| Err(MlError::InvalidModel(format!("flat ensemble: {msg}")));
        let nt = self.roots.len();
        if self.depth.len() != nt {
            return bad(format!("{} roots but {} depths", nt, self.depth.len()));
        }
        if let Some(p) = &self.perfect {
            if p.depth != self.depth {
                return bad("perfect layout depths disagree with tree depths".into());
            }
            if p.node_offset.len() != nt || p.leaf_offset.len() != nt {
                return bad("perfect layout offset arrays disagree with tree count".into());
            }
            if p.lane_off.len() != p.threshold.len() {
                return bad("perfect layout lane/threshold arrays disagree".into());
            }
            for t in 0..nt {
                let d = p.depth[t];
                if d > PERFECT_DEPTH_CAP {
                    return bad(format!("tree {t} depth {d} exceeds the perfect cap"));
                }
                let internal = (1usize << d) - 1;
                let node_end = p.node_offset[t] as usize + internal;
                if node_end > p.lane_off.len() {
                    return bad(format!("tree {t} internal slots overrun the node arena"));
                }
                let leaf_end = p.leaf_offset[t] as usize + (1usize << d);
                if leaf_end > p.leaf_value.len() {
                    return bad(format!("tree {t} leaf slots overrun the leaf arena"));
                }
                for (i, &lo) in p.lane_off[p.node_offset[t] as usize..node_end]
                    .iter()
                    .enumerate()
                {
                    let lo = lo as usize;
                    if !lo.is_multiple_of(BLOCK) || lo / BLOCK >= self.n_features {
                        return bad(format!(
                            "tree {t} slot {i} lane offset {lo} is not a scaled feature \
                             below {}",
                            self.n_features
                        ));
                    }
                }
            }
        } else {
            let n = self.n_nodes;
            if self.feature.len() != n
                || self.threshold.len() != n
                || self.children.len() != n
                || self.value.len() != n
            {
                return bad("node arrays disagree with n_nodes".into());
            }
            // Memoized per-node walk depth; an in-progress marker catches
            // cycles in O(nodes).
            const UNSEEN: u32 = u32::MAX;
            const IN_PROGRESS: u32 = u32::MAX - 1;
            let mut memo = vec![UNSEEN; n];
            for (t, &root) in self.roots.iter().enumerate() {
                if root as usize >= n {
                    return bad(format!("tree {t} root {root} out of bounds ({n} nodes)"));
                }
                let mut stack = vec![root as usize];
                while let Some(&i) = stack.last() {
                    let l = (self.children[i] & 0xffff_ffff) as usize;
                    let r = (self.children[i] >> 32) as usize;
                    if l >= n || r >= n {
                        return bad(format!("node {i} child pointer out of bounds"));
                    }
                    if l == i && r == i {
                        memo[i] = 0; // leaf self-loop
                        stack.pop();
                        continue;
                    }
                    if self.feature[i] as usize >= self.n_features {
                        return bad(format!(
                            "node {i} splits on feature {} of {}",
                            self.feature[i], self.n_features
                        ));
                    }
                    let (dl, dr) = (memo[l], memo[r]);
                    let resolved = |d: u32| d != UNSEEN && d != IN_PROGRESS;
                    if resolved(dl) && resolved(dr) {
                        memo[i] = 1 + dl.max(dr);
                        stack.pop();
                    } else {
                        // A child still in progress means this branch is
                        // reachable from inside its own subtree — a cycle.
                        if memo[i] == IN_PROGRESS || dl == IN_PROGRESS || dr == IN_PROGRESS {
                            return bad(format!("tree {t} is cyclic at node {i}"));
                        }
                        memo[i] = IN_PROGRESS;
                        if dl == UNSEEN {
                            stack.push(l);
                        }
                        if dr == UNSEEN {
                            stack.push(r);
                        }
                    }
                }
                if memo[root as usize] > self.depth[t] {
                    return bad(format!(
                        "tree {t} records depth {} but walks {} levels",
                        self.depth[t], memo[root as usize]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Score every row of `x`, appending one score per row to `out`.
    /// Bit-identical to [`TreeEnsemble::predict`] on the source ensemble.
    pub fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) -> Result<()> {
        if x.cols() < self.n_features {
            return Err(MlError::ShapeMismatch(format!(
                "ensemble expects {} features, input has {}",
                self.n_features,
                x.cols()
            )));
        }
        let rows = x.rows();
        out.reserve(rows);
        let nf = self.n_features;
        let cols = x.cols();
        let data = x.data();
        if rows == 0 {
            return Ok(());
        }
        // Per-block feature-major scratch: lane f occupies
        // feat[f*BLOCK .. +BLOCK], reused for every block so the transpose
        // writes (stride 512 B) and the traversal reads both stay in one
        // small L1-resident window. At least one lane exists so the (dead)
        // feature-0 read of a root-leaf self-loop stays in bounds.
        let lanes = nf.max(1);
        let mut feat = vec![0.0f64; lanes * BLOCK];
        let mut block_out = [0.0f64; BLOCK];
        let mut start = 0;
        while start < rows {
            let blen = BLOCK.min(rows - start);
            // Transpose this block's rows into the feature-major lanes.
            for i in 0..blen {
                let row = &data[(start + i) * cols..(start + i) * cols + nf];
                for (f, &v) in row.iter().enumerate() {
                    feat[f * BLOCK + i] = v;
                }
            }
            self.score_lanes_block(&feat, blen, &mut block_out);
            out.extend_from_slice(&block_out[..blen]);
            start += blen;
        }
        Ok(())
    }

    /// Score one block of already-transposed feature-major lanes: lane `f`
    /// occupies `chunk[f*BLOCK .. f*BLOCK + BLOCK]`, rows `0..blen` of the
    /// block are live, and `out[0..blen]` receives the finished (combined)
    /// scores. This is the kernel boundary the fused featurization pipeline
    /// ([`crate::ops::kernels`]) feeds directly — its lane writers produce
    /// exactly this layout, so featurize→score never materializes a row-major
    /// matrix in between. Bit-identical to the interpreted walker.
    pub(crate) fn score_lanes_block(&self, chunk: &[f64], blen: usize, out: &mut [f64]) {
        assert!(
            blen <= BLOCK && chunk.len() >= self.n_features.max(1) * BLOCK && out.len() >= blen,
            "lane block shape violated"
        );
        // Single-tree kinds read only the first tree (matching the
        // interpreter, which ignores any extra trees on DT kinds) and
        // *assign* the leaf value instead of accumulating (so even a -0.0
        // leaf round-trips bit-identically with the interpreter's direct
        // return).
        let assign = matches!(
            self.kind,
            EnsembleKind::DecisionTreeClassifier | EnsembleKind::DecisionTreeRegressor
        );
        let n_trees = if assign {
            self.roots.len().min(1)
        } else {
            self.roots.len()
        };
        // zero-initialized so empty ensembles score 0.0 like the interpreter
        let mut acc = [0.0f64; BLOCK];
        self.accumulate_block(chunk, blen, &mut acc, assign, n_trees);
        match self.kind {
            EnsembleKind::DecisionTreeClassifier | EnsembleKind::DecisionTreeRegressor => {
                out[..blen].copy_from_slice(&acc[..blen]);
            }
            EnsembleKind::RandomForestClassifier => {
                if n_trees == 0 {
                    out[..blen].fill(0.0);
                } else {
                    let n = n_trees as f64;
                    for i in 0..blen {
                        out[i] = acc[i] / n;
                    }
                }
            }
            EnsembleKind::GradientBoostingClassifier => {
                for i in 0..blen {
                    out[i] = sigmoid(self.base_score + self.learning_rate * acc[i]);
                }
            }
            EnsembleKind::GradientBoostingRegressor => {
                for i in 0..blen {
                    out[i] = self.base_score + self.learning_rate * acc[i];
                }
            }
        }
    }

    /// Walk every tree over one lane block, folding per-row contributions
    /// into `acc[..blen]` in first-tree-assigns order (the `iter().sum()`
    /// fold the interpreter uses).
    fn accumulate_block(
        &self,
        chunk: &[f64],
        blen: usize,
        acc: &mut [f64; BLOCK],
        assign: bool,
        n_trees: usize,
    ) {
        let mut idx = [0u32; BLOCK];
        let (feature, threshold) = (&self.feature[..], &self.threshold[..]);
        let (children, value) = (&self.children[..], &self.value[..]);
        if let Some(p) = &self.perfect {
            // Perfect-tree traversal: children are computed (2n+1 /
            // 2n+2), so one step is three loads (feature, threshold,
            // feature lane) and pure arithmetic — no child pointers, no
            // leaf test, no data-dependent branch. `2n + 2 - (v <= t)`
            // sends NaN right (the compare is false), matching the
            // interpreted walker's missing-value convention.
            for t in 0..n_trees {
                // The first tree *assigns* its leaf (matching
                // `iter().sum()`, which folds from the first element, so
                // an all-(-0.0) sum keeps its sign bit); later trees
                // accumulate.
                let assign_first = assign || t == 0;
                let depth = p.depth[t];
                let node_off = p.node_offset[t] as usize;
                let leaf_off = p.leaf_offset[t] as usize;
                let first_bottom = (1usize << depth) - 1;
                // Explicit-SIMD tier: AVX2 walks 8 cursors per vector
                // with gathered node data when the runtime dispatch is
                // active (see [`simd_active`]) and the tree's shape is one
                // where gathers win (see [`SIMD_MAX_DEPTH`]); the scalar
                // 8-cursor groups below remain the portable fallback (and
                // the `RAVEN_SIMD=off` baseline).
                #[cfg(target_arch = "x86_64")]
                if (2..=SIMD_MAX_DEPTH).contains(&depth) && simd_active() {
                    // SAFETY: AVX2 availability was runtime-detected;
                    // the slice/shape contracts are those of the scalar
                    // walker below (compile-time validated node data,
                    // `blen <= BLOCK`, `chunk` covering every lane).
                    unsafe {
                        simd::walk_perfect_tree(
                            &p.lane_off[node_off..],
                            &p.threshold[node_off..],
                            &p.leaf_value,
                            leaf_off,
                            depth,
                            chunk,
                            blen,
                            acc,
                            assign_first,
                        );
                    }
                    continue;
                }
                // Cursors live in a fixed 8-lane group the compiler
                // keeps in registers (the inner `for j in 0..8` fully
                // unrolls): no per-level stack round-trip, eight
                // independent load chains in flight.
                //
                // SAFETY of the unchecked indexing: after `k` steps a
                // cursor holds a heap index in [2^k - 1, 2^{k+1} - 2],
                // so during the `depth` passes it stays below
                // 2^depth - 1 (the tree's internal-slot count) and ends
                // in the bottom row [2^depth - 1, 2^{depth+1} - 2],
                // i.e. a valid index into the tree's 2^depth leaf
                // slots. Every `feature` slot was validated
                // `< n_features` at compile time and the lane reads stay
                // below `lanes * BLOCK` because `g + j < blen <= BLOCK`.
                let lane_off = &p.lane_off[node_off..];
                let threshold = &p.threshold[node_off..];
                // The first two levels touch at most three fixed nodes
                // (heap slots 0, 1, 2), so their lane offsets and
                // thresholds live in registers: level 0 needs no node
                // load at all, level 1 a pair of conditional moves —
                // only from level 2 on does a step pay the dependent
                // node loads.
                let two_levels = depth >= 2;
                let (off0, th0) = if depth >= 1 {
                    (lane_off[0] as usize, threshold[0])
                } else {
                    (0, 0.0)
                };
                let (off1, th1, off2, th2) = if two_levels {
                    (
                        lane_off[1] as usize,
                        threshold[1],
                        lane_off[2] as usize,
                        threshold[2],
                    )
                } else {
                    (0, 0.0, 0, 0.0)
                };
                let mut g = 0;
                while g + 8 <= blen {
                    let mut n = [0usize; 8];
                    let mut level = 0;
                    if two_levels {
                        for (j, n) in n.iter_mut().enumerate() {
                            unsafe {
                                let v0 = *chunk.get_unchecked(off0 + g + j);
                                let n1 = 2 - (v0 <= th0) as usize;
                                let (offx, thx) = if n1 == 1 { (off1, th1) } else { (off2, th2) };
                                let v1 = *chunk.get_unchecked(offx + g + j);
                                *n = 2 * n1 + 2 - (v1 <= thx) as usize;
                            }
                        }
                        level = 2;
                    }
                    for _ in level..depth {
                        for (j, nj) in n.iter_mut().enumerate() {
                            unsafe {
                                let off = *lane_off.get_unchecked(*nj) as usize;
                                let v = *chunk.get_unchecked(off + g + j);
                                let th = *threshold.get_unchecked(*nj);
                                *nj = 2 * *nj + 2 - (v <= th) as usize;
                            }
                        }
                    }
                    // SAFETY: as above — bottom-row cursors map into
                    // the tree's leaf slots.
                    for j in 0..8 {
                        let leaf =
                            unsafe { *p.leaf_value.get_unchecked(leaf_off + n[j] - first_bottom) };
                        if assign_first {
                            acc[g + j] = leaf;
                        } else {
                            acc[g + j] += leaf;
                        }
                    }
                    g += 8;
                }
                // remainder lanes of a short tail block, one at a time
                for (i, a) in acc.iter_mut().enumerate().take(blen).skip(g) {
                    let mut n = 0usize;
                    for _ in 0..depth {
                        unsafe {
                            let off = *lane_off.get_unchecked(n) as usize;
                            let v = *chunk.get_unchecked(off + i);
                            let th = *threshold.get_unchecked(n);
                            n = 2 * n + 2 - (v <= th) as usize;
                        }
                    }
                    let leaf = unsafe { *p.leaf_value.get_unchecked(leaf_off + n - first_bottom) };
                    if assign_first {
                        *a = leaf;
                    } else {
                        *a += leaf;
                    }
                }
            }
            return;
        }
        for t in 0..n_trees {
            let root = self.roots[t];
            let depth = self.depth[t];
            idx[..blen].fill(root);
            // Exactly `depth` branchless passes: every cursor advances
            // one level per pass (leaves self-loop, so early arrivals
            // spin in place). The `v <= threshold` select picks one
            // half of the packed child lane — no data-dependent branch
            // to mispredict, and the 64 independent chains keep the
            // load ports saturated. NaN compares false, so missing
            // values go right, exactly like the interpreted walker.
            //
            // SAFETY of the unchecked indexing: `compile` established
            // that every child pointer is a valid arena index, that the
            // four node arrays have identical lengths, and that every
            // `feature[n] < n_features`; cursors only ever hold `roots`
            // or child values, and `i < blen <= BLOCK` with `chunk`
            // spanning this block's `lanes * BLOCK` slots. Four
            // in-bounds loads per step, zero bounds-check branches.
            for _ in 0..depth {
                for i in 0..blen {
                    unsafe {
                        let n = *idx.get_unchecked(i) as usize;
                        let f = *feature.get_unchecked(n) as usize;
                        let v = *chunk.get_unchecked(f * BLOCK + i);
                        let c = *children.get_unchecked(n);
                        *idx.get_unchecked_mut(i) = if v <= *threshold.get_unchecked(n) {
                            c as u32
                        } else {
                            (c >> 32) as u32
                        };
                    }
                }
            }
            // SAFETY: as above — cursors are valid arena indices. The
            // first tree assigns (see the perfect kernel), later trees
            // accumulate.
            if assign || t == 0 {
                for i in 0..blen {
                    acc[i] = unsafe { *value.get_unchecked(idx[i] as usize) };
                }
            } else {
                for i in 0..blen {
                    acc[i] += unsafe { *value.get_unchecked(idx[i] as usize) };
                }
            }
        }
    }

    /// Score every row of `x` into a fresh single-column matrix (the
    /// flattened drop-in for [`TreeEnsemble::predict`]).
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Vec::with_capacity(x.rows());
        self.predict_into(x, &mut out)?;
        Ok(Matrix::from_column(&out))
    }
}

// ---------------------------------------------------------------------------
// scorer-mode selection (flattened by default, interpreted as the baseline)
// ---------------------------------------------------------------------------

/// Which tree-scoring kernel the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScorerMode {
    /// Compiled struct-of-arrays kernels (the default).
    Flattened,
    /// The row-at-a-time interpreted walker (parity / A-B baseline).
    Interpreted,
}

/// 0 = no override, 1 = force flattened, 2 = force interpreted.
static FORCE_SCORER: AtomicU8 = AtomicU8::new(0);

/// Programmatically pin the scorer mode (benches A/B the kernels with this),
/// overriding `RAVEN_SCORER`. `None` restores env-driven selection.
pub fn force_scorer(mode: Option<ScorerMode>) {
    FORCE_SCORER.store(
        match mode {
            None => 0,
            Some(ScorerMode::Flattened) => 1,
            Some(ScorerMode::Interpreted) => 2,
        },
        Ordering::SeqCst,
    );
}

/// The scorer mode in effect: [`force_scorer`] override first, then the
/// `RAVEN_SCORER` environment variable (`interpreted` selects the baseline),
/// defaulting to [`ScorerMode::Flattened`]. The env variable is read once —
/// this is called per scoring invocation on the serving hot path, which must
/// not take the process-wide environment lock ([`force_scorer`] remains the
/// dynamic override for benches and tests).
pub fn scorer_mode() -> ScorerMode {
    match FORCE_SCORER.load(Ordering::SeqCst) {
        1 => return ScorerMode::Flattened,
        2 => return ScorerMode::Interpreted,
        _ => {}
    }
    if raven_columnar::envcfg::scorer_interpreted() {
        ScorerMode::Interpreted
    } else {
        ScorerMode::Flattened
    }
}

// ---------------------------------------------------------------------------
// SIMD-tier selection (AVX2 when detected, scalar groups as the baseline)
// ---------------------------------------------------------------------------

/// 0 = no override, 1 = force SIMD on (still requires hardware support),
/// 2 = force the scalar cursor groups.
static FORCE_SIMD: AtomicU8 = AtomicU8::new(0);

/// Programmatically pin the SIMD tier (benches A/B the walkers with this),
/// overriding `RAVEN_SIMD`. `None` restores env-driven selection. Forcing
/// SIMD on hardware without AVX2 stays on the scalar fallback.
pub fn force_simd(enabled: Option<bool>) {
    FORCE_SIMD.store(
        match enabled {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        },
        Ordering::SeqCst,
    );
}

/// Whether the explicit-SIMD perfect-tree walker is active: hardware support
/// (`is_x86_feature_detected!("avx2")`) gated by the [`force_simd`] override
/// and the `RAVEN_SIMD` environment variable (`off` pins the portable scalar
/// groups). Detection and the env read are each cached in a `OnceLock` — this
/// runs per scoring block on the serving hot path, which must take neither
/// the cpuid cost nor the process-wide environment lock (mirroring
/// `selection_vectors_default` / [`scorer_mode`]).
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if !*DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2")) {
            return false;
        }
        match FORCE_SIMD.load(Ordering::SeqCst) {
            1 => return true,
            2 => return false,
            _ => {}
        }
        !raven_columnar::envcfg::simd_off()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 perfect-tree walker: 8 row cursors per step via stable `std::arch`
/// intrinsics. One level advances all 8 cursors with gathered node data
/// (lane offsets as one 8×i32 gather, thresholds and feature values as
/// paired 4×f64 gathers); `v <= threshold` lowers to `VCMPPD` with
/// `_CMP_LE_OQ`, which is false for NaN — the same missing-value convention
/// as the scalar walker, so results stay bit-identical. The first two
/// levels touch only heap slots 0–2 and use contiguous loads plus blends
/// instead of gathers.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// Walk one perfect tree over a lane block, assigning or accumulating
    /// leaf values into `acc[..blen]`.
    ///
    /// # Safety
    ///
    /// Caller guarantees: AVX2 was runtime-detected; `depth >= 2`;
    /// `blen <= acc.len()`; `lane_off` / `threshold` hold the tree's
    /// `2^depth - 1` internal slots; `leaf_value[leaf_off..]` holds its
    /// `2^depth` leaf slots; and every `lane_off` entry addresses a valid
    /// lane of `chunk` for row offsets `0..blen` (established once at
    /// compile time by `FlatEnsemble::compile`). Cursor indices stay within
    /// the padded tree by the same heap-arithmetic argument as the scalar
    /// walker.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn walk_perfect_tree(
        lane_off: &[u32],
        threshold: &[f64],
        leaf_value: &[f64],
        leaf_off: usize,
        depth: u32,
        chunk: &[f64],
        blen: usize,
        acc: &mut [f64],
        assign_first: bool,
    ) {
        let first_bottom = (1usize << depth) - 1;
        let (off0, th0) = (lane_off[0] as usize, threshold[0]);
        let (off1, th1) = (lane_off[1] as usize, threshold[1]);
        let (off2, th2) = (lane_off[2] as usize, threshold[2]);
        let two = _mm256_set1_epi32(2);
        let chunk_ptr = chunk.as_ptr();
        let mut g = 0usize;
        let levels = (off0, th0, off1, th1, off2, th2);
        // Two 8-cursor vector groups advance in lock step (16 rows per
        // iteration): each level's gathers depend on the previous level's
        // cursors, so a single group is gather-latency-bound — the second,
        // independent group fills those stall cycles exactly like the scalar
        // walker's eight independent chains do.
        while g + 16 <= blen {
            let mut n_a = levels01(chunk_ptr, g, levels, two);
            let mut n_b = levels01(chunk_ptr, g + 8, levels, two);
            let base_a = row_base(g);
            let base_b = row_base(g + 8);
            for _ in 2..depth {
                n_a = gather_step(n_a, base_a, lane_off, threshold, chunk_ptr, two);
                n_b = gather_step(n_b, base_b, lane_off, threshold, chunk_ptr, two);
            }
            let leaf_ptr = leaf_value.as_ptr().add(leaf_off);
            fold_leaves(
                n_a,
                first_bottom,
                leaf_ptr,
                acc.as_mut_ptr().add(g),
                assign_first,
            );
            fold_leaves(
                n_b,
                first_bottom,
                leaf_ptr,
                acc.as_mut_ptr().add(g + 8),
                assign_first,
            );
            g += 16;
        }
        while g + 8 <= blen {
            let mut n = levels01(chunk_ptr, g, levels, two);
            let base = row_base(g);
            for _ in 2..depth {
                n = gather_step(n, base, lane_off, threshold, chunk_ptr, two);
            }
            let leaf_ptr = leaf_value.as_ptr().add(leaf_off);
            fold_leaves(
                n,
                first_bottom,
                leaf_ptr,
                acc.as_mut_ptr().add(g),
                assign_first,
            );
            g += 8;
        }
        // scalar tail for the short remainder of the block
        for (i, a) in acc.iter_mut().enumerate().take(blen).skip(g) {
            let mut n = 0usize;
            for _ in 0..depth {
                let off = *lane_off.get_unchecked(n) as usize;
                let v = *chunk.get_unchecked(off + i);
                let th = *threshold.get_unchecked(n);
                n = 2 * n + 2 - (v <= th) as usize;
            }
            let leaf = *leaf_value.get_unchecked(leaf_off + n - first_bottom);
            if assign_first {
                *a = leaf;
            } else {
                *a += leaf;
            }
        }
    }

    /// The row-index base `[g, g+1, .., g+7]` added to gathered lane
    /// offsets to form feature-value addresses.
    ///
    /// # Safety
    ///
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn row_base(g: usize) -> __m256i {
        let g = g as i32;
        _mm256_setr_epi32(g, g + 1, g + 2, g + 3, g + 4, g + 5, g + 6, g + 7)
    }

    /// Levels 0 and 1 for rows `g..g+8`: the root's lane is one contiguous
    /// load, and level 1's node (heap slot 1 or 2) is two contiguous loads
    /// blended on the level-0 mask — no gathers. Returns the 8×i32 cursors
    /// positioned at level 2. Cursor arithmetic is the scalar
    /// `n = 2n + 2 - (v <= t)` with the all-ones compare mask (-1 when
    /// `v <= t`, false for NaN) as the subtrahend.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; the three lane offsets must be valid for rows
    /// `g..g+8` of `chunk_ptr`'s lane block.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn levels01(
        chunk_ptr: *const f64,
        g: usize,
        (off0, th0, off1, th1, off2, th2): (usize, f64, usize, f64, usize, f64),
        two: __m256i,
    ) -> __m256i {
        let v0_lo = _mm256_loadu_pd(chunk_ptr.add(off0 + g));
        let v0_hi = _mm256_loadu_pd(chunk_ptr.add(off0 + g + 4));
        let t0 = _mm256_set1_pd(th0);
        let m0_lo = _mm256_cmp_pd::<_CMP_LE_OQ>(v0_lo, t0);
        let m0_hi = _mm256_cmp_pd::<_CMP_LE_OQ>(v0_hi, t0);
        let v1_lo = _mm256_blendv_pd(
            _mm256_loadu_pd(chunk_ptr.add(off2 + g)),
            _mm256_loadu_pd(chunk_ptr.add(off1 + g)),
            m0_lo,
        );
        let v1_hi = _mm256_blendv_pd(
            _mm256_loadu_pd(chunk_ptr.add(off2 + g + 4)),
            _mm256_loadu_pd(chunk_ptr.add(off1 + g + 4)),
            m0_hi,
        );
        let t1 = _mm256_set1_pd(th1);
        let t2 = _mm256_set1_pd(th2);
        let m1_lo = _mm256_cmp_pd::<_CMP_LE_OQ>(v1_lo, _mm256_blendv_pd(t2, t1, m0_lo));
        let m1_hi = _mm256_cmp_pd::<_CMP_LE_OQ>(v1_hi, _mm256_blendv_pd(t2, t1, m0_hi));
        let le0 = pack_le_mask(m0_lo, m0_hi);
        let le1 = pack_le_mask(m1_lo, m1_hi);
        let n = _mm256_add_epi32(two, le0);
        _mm256_add_epi32(_mm256_add_epi32(n, n), _mm256_add_epi32(two, le1))
    }

    /// One gathered level: lane offsets as one 8×i32 gather, thresholds and
    /// feature values as paired 4×f64 gathers, then the branchless cursor
    /// update.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; every cursor in `n` must index a valid
    /// internal slot of `lane_off` / `threshold`, whose offsets must be
    /// valid lanes of `chunk_ptr` for the rows `base` addresses.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn gather_step(
        n: __m256i,
        base: __m256i,
        lane_off: &[u32],
        threshold: &[f64],
        chunk_ptr: *const f64,
        two: __m256i,
    ) -> __m256i {
        let offs = _mm256_i32gather_epi32::<4>(lane_off.as_ptr() as *const i32, n);
        let addr = _mm256_add_epi32(offs, base);
        let th_lo = _mm256_i32gather_pd::<8>(threshold.as_ptr(), _mm256_castsi256_si128(n));
        let th_hi = _mm256_i32gather_pd::<8>(threshold.as_ptr(), _mm256_extracti128_si256::<1>(n));
        let v_lo = _mm256_i32gather_pd::<8>(chunk_ptr, _mm256_castsi256_si128(addr));
        let v_hi = _mm256_i32gather_pd::<8>(chunk_ptr, _mm256_extracti128_si256::<1>(addr));
        let m_lo = _mm256_cmp_pd::<_CMP_LE_OQ>(v_lo, th_lo);
        let m_hi = _mm256_cmp_pd::<_CMP_LE_OQ>(v_hi, th_hi);
        let le = pack_le_mask(m_lo, m_hi);
        _mm256_add_epi32(_mm256_add_epi32(n, n), _mm256_add_epi32(two, le))
    }

    /// Map bottom-row cursors to leaf slots, gather the leaf values, and
    /// assign or accumulate them into `acc_ptr[0..8]`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; cursors must sit in the bottom row and
    /// `acc_ptr` must be valid for 8 reads/writes.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn fold_leaves(
        n: __m256i,
        first_bottom: usize,
        leaf_ptr: *const f64,
        acc_ptr: *mut f64,
        assign_first: bool,
    ) {
        let leaf_idx = _mm256_sub_epi32(n, _mm256_set1_epi32(first_bottom as i32));
        let leaf_lo = _mm256_i32gather_pd::<8>(leaf_ptr, _mm256_castsi256_si128(leaf_idx));
        let leaf_hi = _mm256_i32gather_pd::<8>(leaf_ptr, _mm256_extracti128_si256::<1>(leaf_idx));
        if assign_first {
            _mm256_storeu_pd(acc_ptr, leaf_lo);
            _mm256_storeu_pd(acc_ptr.add(4), leaf_hi);
        } else {
            _mm256_storeu_pd(acc_ptr, _mm256_add_pd(_mm256_loadu_pd(acc_ptr), leaf_lo));
            _mm256_storeu_pd(
                acc_ptr.add(4),
                _mm256_add_pd(_mm256_loadu_pd(acc_ptr.add(4)), leaf_hi),
            );
        }
    }

    /// Narrow two 4×f64 compare masks into one 8×i32 mask vector ordered
    /// `[lo0..lo3, hi0..hi3]` (-1 where the compare was true): the even
    /// 32-bit half of each 64-bit mask, picked per 128-bit lane by
    /// `shuffle_ps` and reordered by a cross-lane permute.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (callers run under `target_feature(avx2)`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn pack_le_mask(lo: __m256d, hi: __m256d) -> __m256i {
        let even = _mm256_shuffle_ps::<0b10_00_10_00>(_mm256_castpd_ps(lo), _mm256_castpd_ps(hi));
        let order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        _mm256_permutevar8x32_epi32(_mm256_castps_si256(even), order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Tree;

    fn deep_tree() -> Tree {
        Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Branch {
                    feature: 1,
                    threshold: -1.0,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 3.0 },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
            root: 0,
        }
    }

    #[test]
    fn flat_matches_interpreted_bitwise() {
        for kind in [
            EnsembleKind::DecisionTreeClassifier,
            EnsembleKind::DecisionTreeRegressor,
            EnsembleKind::RandomForestClassifier,
            EnsembleKind::GradientBoostingClassifier,
            EnsembleKind::GradientBoostingRegressor,
        ] {
            let ens = TreeEnsemble {
                kind,
                trees: vec![deep_tree(), Tree::leaf(0.25), deep_tree()],
                n_features: 2,
                learning_rate: 0.3,
                base_score: 0.1,
            };
            let flat = FlatEnsemble::compile(&ens).unwrap();
            // > BLOCK rows so multiple blocks run, plus NaN rows
            let rows = 150;
            let cols: Vec<Vec<f64>> = vec![
                (0..rows)
                    .map(|i| match i % 5 {
                        0 => f64::NAN,
                        r => r as f64 - 2.0,
                    })
                    .collect(),
                (0..rows).map(|i| (i as f64) * 0.1 - 4.0).collect(),
            ];
            let x = Matrix::from_columns(&cols).unwrap();
            let expected = ens.predict(&x).unwrap();
            let got = flat.predict(&x).unwrap();
            for r in 0..rows {
                assert_eq!(
                    expected.get(r, 0).to_bits(),
                    got.get(r, 0).to_bits(),
                    "kind {kind:?} row {r}"
                );
            }
        }
    }

    #[test]
    fn empty_input_and_empty_ensemble() {
        let ens = TreeEnsemble {
            kind: EnsembleKind::RandomForestClassifier,
            trees: vec![],
            n_features: 1,
            learning_rate: 1.0,
            base_score: 0.0,
        };
        let flat = FlatEnsemble::compile(&ens).unwrap();
        let x = Matrix::from_columns(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(flat.predict(&x).unwrap().column(0), vec![0.0, 0.0]);
        let empty = Matrix::from_columns(&[Vec::new()]).unwrap();
        assert_eq!(flat.predict(&empty).unwrap().rows(), 0);
    }

    #[test]
    fn compile_rejects_out_of_range_feature() {
        let ens = TreeEnsemble::single_tree(deep_tree(), 1); // feature 1 >= 1
        let err = FlatEnsemble::compile(&ens).unwrap_err();
        assert!(matches!(err, MlError::InvalidModel(_)), "{err}");
    }

    #[test]
    fn compile_rejects_cycles_and_dangling_children() {
        let cyclic = Tree {
            nodes: vec![TreeNode::Branch {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
            }],
            root: 0,
        };
        assert!(FlatEnsemble::compile(&TreeEnsemble::single_tree(cyclic, 1)).is_err());
        let dangling = Tree {
            nodes: vec![TreeNode::Branch {
                feature: 0,
                threshold: 0.0,
                left: 5,
                right: 5,
            }],
            root: 0,
        };
        assert!(FlatEnsemble::compile(&TreeEnsemble::single_tree(dangling, 1)).is_err());
    }

    #[test]
    fn degenerate_chain_compiles_without_recursion() {
        // A left-leaning chain deeper than any thread stack could absorb one
        // recursion frame per level for: compilation must stay iterative.
        let levels = 200_000usize;
        let mut nodes = Vec::with_capacity(2 * levels + 1);
        for i in 0..levels {
            nodes.push(TreeNode::Branch {
                feature: 0,
                threshold: (levels - i) as f64,
                left: i + 1,
                right: levels + 1 + i,
            });
        }
        nodes.push(TreeNode::Leaf { value: -1.0 });
        for i in 0..levels {
            nodes.push(TreeNode::Leaf { value: i as f64 });
        }
        let ens = TreeEnsemble::single_tree(Tree { nodes, root: 0 }, 1);
        let flat = FlatEnsemble::compile(&ens).unwrap();
        assert_eq!(flat.arena_len(), 2 * levels + 1);
        let x = Matrix::from_columns(&[vec![0.0, levels as f64 - 2.5, f64::NAN]]).unwrap();
        let expected = ens.predict(&x).unwrap();
        let got = flat.predict(&x).unwrap();
        for r in 0..3 {
            assert_eq!(
                expected.get(r, 0).to_bits(),
                got.get(r, 0).to_bits(),
                "row {r}"
            );
        }
    }

    #[test]
    fn shape_check_matches_interpreter() {
        let ens = TreeEnsemble::single_tree(deep_tree(), 2);
        let flat = FlatEnsemble::compile(&ens).unwrap();
        let narrow = Matrix::from_columns(&[vec![1.0]]).unwrap();
        assert!(flat.predict(&narrow).is_err());
        assert!(ens.predict(&narrow).is_err());
    }

    #[test]
    fn scorer_mode_override() {
        force_scorer(Some(ScorerMode::Interpreted));
        assert_eq!(scorer_mode(), ScorerMode::Interpreted);
        force_scorer(Some(ScorerMode::Flattened));
        assert_eq!(scorer_mode(), ScorerMode::Flattened);
        force_scorer(None);
    }

    #[test]
    #[ignore = "manual perf probe"]
    fn perf_probe_simd_vs_scalar() {
        use std::time::Instant;
        let mut s = 0x1234_5678u64;
        let mut rnd = move || {
            s = s.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) | 1;
            s
        };
        for n_features in [12usize, 46] {
            for depth in [3u32, 4, 5, 6, 8] {
                let trees: Vec<Tree> = (0..60)
                    .map(|_| {
                        let internal = (1usize << depth) - 1;
                        let mut nodes = Vec::new();
                        for _ in 0..internal {
                            nodes.push(TreeNode::Branch {
                                feature: rnd() as usize % n_features,
                                threshold: (rnd() % 100) as f64 - 50.0,
                                left: 0,
                                right: 0,
                            });
                        }
                        for _ in 0..(1usize << depth) {
                            nodes.push(TreeNode::Leaf {
                                value: (rnd() % 100) as f64 / 100.0,
                            });
                        }
                        for (i, node) in nodes.iter_mut().enumerate().take(internal) {
                            if let TreeNode::Branch { left, right, .. } = node {
                                *left = 2 * i + 1;
                                *right = 2 * i + 2;
                            }
                        }
                        Tree { nodes, root: 0 }
                    })
                    .collect();
                let ens = TreeEnsemble {
                    kind: EnsembleKind::GradientBoostingClassifier,
                    trees,
                    n_features,
                    learning_rate: 0.15,
                    base_score: 0.0,
                };
                let flat = FlatEnsemble::compile(&ens).unwrap();
                let rows = 4096;
                let cols: Vec<Vec<f64>> = (0..n_features)
                    .map(|_| (0..rows).map(|_| (rnd() % 120) as f64 - 60.0).collect())
                    .collect();
                let x = Matrix::from_columns(&cols).unwrap();
                let mut rates = [0.0f64; 2];
                for (k, simd) in [false, true].into_iter().enumerate() {
                    force_simd(Some(simd));
                    let mut best = f64::MAX;
                    for _ in 0..5 {
                        let t = Instant::now();
                        for _ in 0..30 {
                            std::hint::black_box(flat.predict(&x).unwrap());
                        }
                        best = best.min(t.elapsed().as_secs_f64());
                    }
                    rates[k] = rows as f64 * 30.0 / best / 1e6;
                }
                println!(
                    "features {n_features:>2} depth {depth}: scalar {:>5.1} simd {:>5.1} Mrows/s ({:.2}x)",
                    rates[0], rates[1], rates[1] / rates[0]
                );
            }
        }
        force_simd(None);
    }

    /// The AVX2 walker and the scalar cursor groups must agree bit for bit
    /// (on hardware without AVX2 both forces resolve to the scalar path and
    /// the assertion is trivially true).
    #[test]
    fn simd_matches_scalar_bitwise() {
        let mut trees = vec![deep_tree(), Tree::leaf(-0.25)];
        // a depth-4 tree with distinct leaves per path exercises the gather
        // loop past the two register-resident levels
        let mut nodes = Vec::new();
        for i in 0..7 {
            nodes.push(TreeNode::Branch {
                feature: i % 3,
                threshold: (i as f64) * 3.0 - 6.0,
                left: 2 * i + 1,
                right: 2 * i + 2,
            });
        }
        for i in 0..8 {
            nodes.push(TreeNode::Leaf {
                value: i as f64 - 3.5,
            });
        }
        trees.push(Tree { nodes, root: 0 });
        for kind in [
            EnsembleKind::DecisionTreeClassifier,
            EnsembleKind::RandomForestClassifier,
            EnsembleKind::GradientBoostingClassifier,
            EnsembleKind::GradientBoostingRegressor,
        ] {
            let ens = TreeEnsemble {
                kind,
                trees: trees.clone(),
                n_features: 3,
                learning_rate: 0.4,
                base_score: -0.1,
            };
            let flat = FlatEnsemble::compile(&ens).unwrap();
            let rows = 197; // several full 8-groups plus a tail, > BLOCK
            let cols: Vec<Vec<f64>> = (0..3)
                .map(|f| {
                    (0..rows)
                        .map(|r| match (r + f) % 7 {
                            0 => f64::NAN,
                            k => k as f64 * 2.5 - 7.0,
                        })
                        .collect()
                })
                .collect();
            let x = Matrix::from_columns(&cols).unwrap();
            force_simd(Some(false));
            let scalar = flat.predict(&x).unwrap();
            force_simd(Some(true));
            let simd = flat.predict(&x).unwrap();
            force_simd(None);
            for r in 0..rows {
                assert_eq!(
                    scalar.get(r, 0).to_bits(),
                    simd.get(r, 0).to_bits(),
                    "kind {kind:?} row {r}"
                );
            }
        }
    }
}
