//! Linear models: linear regression, logistic regression, linear SVM.

use crate::error::{MlError, Result};
use crate::frame::Matrix;
use serde::{Deserialize, Serialize};

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A linear regression model: `y = x · w + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressionModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LinearRegressionModel {
    /// Predict for a feature matrix, one output per row.
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        dot_rows(x, &self.weights, self.intercept).map(|v| Matrix::from_column(&v))
    }

    /// Indices of features with non-zero weight (model sparsity, §2.1).
    pub fn used_features(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Densify: keep only the listed features (in that order).
    pub fn select(&self, indices: &[usize]) -> Result<LinearRegressionModel> {
        Ok(LinearRegressionModel {
            weights: select_weights(&self.weights, indices)?,
            intercept: self.intercept,
        })
    }

    /// Fold a known-constant feature into the intercept and drop it.
    pub fn fold_constant(&self, feature: usize, value: f64) -> Result<LinearRegressionModel> {
        if feature >= self.weights.len() {
            return Err(MlError::ShapeMismatch(format!(
                "feature {feature} out of range for width {}",
                self.weights.len()
            )));
        }
        let mut weights = self.weights.clone();
        let intercept = self.intercept + weights[feature] * value;
        weights[feature] = 0.0;
        Ok(LinearRegressionModel { weights, intercept })
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }
}

/// A binary logistic regression model: `p = sigmoid(x · w + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LogisticRegressionModel {
    /// Predicted probability of the positive class, one output per row.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let scores = dot_rows(x, &self.weights, self.intercept)?;
        Ok(Matrix::from_column(
            &scores.iter().map(|&s| sigmoid(s)).collect::<Vec<_>>(),
        ))
    }

    /// Indices of features with non-zero weight.
    pub fn used_features(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Densify: keep only the listed features (in that order).
    pub fn select(&self, indices: &[usize]) -> Result<LogisticRegressionModel> {
        Ok(LogisticRegressionModel {
            weights: select_weights(&self.weights, indices)?,
            intercept: self.intercept,
        })
    }

    /// Fold a known-constant feature into the intercept and drop it.
    pub fn fold_constant(&self, feature: usize, value: f64) -> Result<LogisticRegressionModel> {
        if feature >= self.weights.len() {
            return Err(MlError::ShapeMismatch(format!(
                "feature {feature} out of range for width {}",
                self.weights.len()
            )));
        }
        let mut weights = self.weights.clone();
        let intercept = self.intercept + weights[feature] * value;
        weights[feature] = 0.0;
        Ok(LogisticRegressionModel { weights, intercept })
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }
}

/// A linear support-vector classifier: decision value `x · w + b`, with the
/// positive class predicted when the value exceeds zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvmModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl LinearSvmModel {
    /// Decision values (distance from the separating hyperplane), one per row.
    pub fn decision_function(&self, x: &Matrix) -> Result<Matrix> {
        dot_rows(x, &self.weights, self.intercept).map(|v| Matrix::from_column(&v))
    }

    /// Indices of features with non-zero weight.
    pub fn used_features(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Densify: keep only the listed features (in that order).
    pub fn select(&self, indices: &[usize]) -> Result<LinearSvmModel> {
        Ok(LinearSvmModel {
            weights: select_weights(&self.weights, indices)?,
            intercept: self.intercept,
        })
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights.len()
    }
}

fn select_weights(weights: &[f64], indices: &[usize]) -> Result<Vec<f64>> {
    indices
        .iter()
        .map(|&i| {
            weights.get(i).copied().ok_or_else(|| {
                MlError::ShapeMismatch(format!(
                    "feature {i} out of range for width {}",
                    weights.len()
                ))
            })
        })
        .collect()
}

fn dot_rows(x: &Matrix, weights: &[f64], intercept: f64) -> Result<Vec<f64>> {
    if x.cols() != weights.len() {
        return Err(MlError::ShapeMismatch(format!(
            "model has {} weights, input has {} features",
            weights.len(),
            x.cols()
        )));
    }
    let mut out = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let mut acc = intercept;
        for (v, w) in row.iter().zip(weights.iter()) {
            acc += v * w;
        }
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Matrix {
        Matrix::from_columns(&[vec![1.0, 2.0], vec![0.0, 3.0]]).unwrap()
    }

    #[test]
    fn linear_regression_predict() {
        let m = LinearRegressionModel {
            weights: vec![2.0, -1.0],
            intercept: 0.5,
        };
        let y = m.predict(&x()).unwrap();
        assert_eq!(y.column(0), vec![2.5, 1.5]);
        assert!(m.predict(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn logistic_regression_proba_bounds() {
        let m = LogisticRegressionModel {
            weights: vec![10.0, 0.0],
            intercept: 0.0,
        };
        let p = m.predict_proba(&x()).unwrap();
        assert!(p.column(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(p.get(1, 0) > 0.99);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn used_features_and_select() {
        let m = LogisticRegressionModel {
            weights: vec![0.0, 1.5, 0.0, -2.0],
            intercept: 0.1,
        };
        assert_eq!(m.used_features(), vec![1, 3]);
        let dense = m.select(&[1, 3]).unwrap();
        assert_eq!(dense.weights, vec![1.5, -2.0]);
        assert!(m.select(&[10]).is_err());
    }

    #[test]
    fn fold_constant_preserves_predictions() {
        let m = LinearRegressionModel {
            weights: vec![2.0, 3.0],
            intercept: 1.0,
        };
        // fix feature 1 to 4.0
        let folded = m.fold_constant(1, 4.0).unwrap();
        assert_eq!(folded.intercept, 13.0);
        assert_eq!(folded.weights[1], 0.0);
        // predictions agree when feature 1 is indeed 4.0
        let x = Matrix::from_columns(&[vec![1.0], vec![4.0]]).unwrap();
        assert_eq!(
            m.predict(&x).unwrap().column(0),
            folded.predict(&x).unwrap().column(0)
        );
        assert!(m.fold_constant(7, 0.0).is_err());
    }

    #[test]
    fn svm_decision_function() {
        let m = LinearSvmModel {
            weights: vec![1.0, -1.0],
            intercept: -0.5,
        };
        let d = m.decision_function(&x()).unwrap();
        assert_eq!(d.column(0), vec![0.5, -1.5]);
        assert_eq!(m.used_features(), vec![0, 1]);
        assert_eq!(m.select(&[0]).unwrap().weights, vec![1.0]);
    }
}
