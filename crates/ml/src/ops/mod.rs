//! The ML operator set of Raven's unified IR (paper §3): featurizers, linear
//! models, and tree ensembles, with a single [`Operator`] enum for dispatch.

pub mod featurizer;
pub mod flat;
pub mod linear;
pub mod tree;

pub use featurizer::{
    concat, format_numeric_category, Binarizer, CategoryTable, ConstantNode, FeatureExtractor,
    Imputer, LabelEncoder, Norm, Normalizer, OneHotEncoder, Scaler,
};
pub use flat::{
    force_scorer, force_simd, scorer_mode, simd_active, FlatEnsemble, ScorerMode, BLOCK,
};
pub use linear::{sigmoid, LinearRegressionModel, LinearSvmModel, LogisticRegressionModel};
pub use tree::{EnsembleKind, Tree, TreeEnsemble, TreeNode};

use crate::error::{MlError, Result};
use crate::frame::FrameValue;
use serde::{Deserialize, Serialize};

/// Every ML operator supported by the pipeline graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Affine scaler `(x - offset) * scale`.
    Scaler(Scaler),
    /// One-hot encoder over a single categorical input.
    OneHotEncoder(OneHotEncoder),
    /// Label encoder over a single categorical input.
    LabelEncoder(LabelEncoder),
    /// Missing-value imputer.
    Imputer(Imputer),
    /// Thresholding binarizer.
    Binarizer(Binarizer),
    /// Row-wise normalizer.
    Normalizer(Normalizer),
    /// Horizontal concatenation of numeric inputs.
    Concat,
    /// Column selection over a numeric input.
    FeatureExtractor(FeatureExtractor),
    /// Constant feature column(s).
    Constant(ConstantNode),
    /// Linear regression.
    LinearRegression(LinearRegressionModel),
    /// Binary logistic regression (outputs the positive-class probability).
    LogisticRegression(LogisticRegressionModel),
    /// Linear SVM (outputs the decision value).
    LinearSvm(LinearSvmModel),
    /// Decision tree / random forest / gradient boosting.
    TreeEnsemble(TreeEnsemble),
}

/// Broad operator families, used by the optimizer strategies and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperatorCategory {
    /// Data featurizers (scalers, encoders, imputers, ...).
    Featurizer,
    /// Structural operators (concat, feature extractor, constant).
    Structural,
    /// Linear models.
    LinearModel,
    /// Tree-based models.
    TreeModel,
}

impl Operator {
    /// A short, stable operator name (used in stats and display).
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Scaler(_) => "Scaler",
            Operator::OneHotEncoder(_) => "OneHotEncoder",
            Operator::LabelEncoder(_) => "LabelEncoder",
            Operator::Imputer(_) => "Imputer",
            Operator::Binarizer(_) => "Binarizer",
            Operator::Normalizer(_) => "Normalizer",
            Operator::Concat => "Concat",
            Operator::FeatureExtractor(_) => "FeatureExtractor",
            Operator::Constant(_) => "Constant",
            Operator::LinearRegression(_) => "LinearRegression",
            Operator::LogisticRegression(_) => "LogisticRegression",
            Operator::LinearSvm(_) => "LinearSVM",
            Operator::TreeEnsemble(e) => match e.kind {
                EnsembleKind::DecisionTreeClassifier => "DecisionTreeClassifier",
                EnsembleKind::DecisionTreeRegressor => "DecisionTreeRegressor",
                EnsembleKind::RandomForestClassifier => "RandomForestClassifier",
                EnsembleKind::GradientBoostingClassifier => "GradientBoostingClassifier",
                EnsembleKind::GradientBoostingRegressor => "GradientBoostingRegressor",
            },
        }
    }

    /// The operator's category.
    pub fn category(&self) -> OperatorCategory {
        match self {
            Operator::Scaler(_)
            | Operator::OneHotEncoder(_)
            | Operator::LabelEncoder(_)
            | Operator::Imputer(_)
            | Operator::Binarizer(_)
            | Operator::Normalizer(_) => OperatorCategory::Featurizer,
            Operator::Concat | Operator::FeatureExtractor(_) | Operator::Constant(_) => {
                OperatorCategory::Structural
            }
            Operator::LinearRegression(_)
            | Operator::LogisticRegression(_)
            | Operator::LinearSvm(_) => OperatorCategory::LinearModel,
            Operator::TreeEnsemble(_) => OperatorCategory::TreeModel,
        }
    }

    /// Whether this operator is a model (produces the prediction) rather than
    /// a featurizer / structural node.
    pub fn is_model(&self) -> bool {
        matches!(
            self.category(),
            OperatorCategory::LinearModel | OperatorCategory::TreeModel
        )
    }

    /// Validate the operator's trained parameters. Currently checks tree
    /// ensembles for out-of-range feature indices (which the row walker
    /// would otherwise silently score as NaN); called by
    /// [`crate::Pipeline::validate`], so malformed models are rejected when
    /// a pipeline is built or registered, not at scoring time.
    pub fn validate(&self) -> Result<()> {
        match self {
            Operator::TreeEnsemble(e) => e.validate_features(),
            _ => Ok(()),
        }
    }

    /// Apply the operator to its inputs. `rows` is the batch row count (needed
    /// by source-like operators such as [`Operator::Constant`]).
    pub fn apply(&self, inputs: &[&FrameValue], rows: usize) -> Result<FrameValue> {
        let single_numeric = |idx: usize| -> Result<&crate::frame::Matrix> {
            inputs
                .get(idx)
                .ok_or_else(|| MlError::MissingInput(format!("{} input {idx}", self.name())))?
                .as_numeric()
        };
        match self {
            Operator::Scaler(op) => Ok(FrameValue::Numeric(op.transform(single_numeric(0)?)?)),
            Operator::OneHotEncoder(op) => {
                let input = inputs
                    .first()
                    .ok_or_else(|| MlError::MissingInput("OneHotEncoder input".into()))?;
                Ok(FrameValue::Numeric(op.transform(input)?))
            }
            Operator::LabelEncoder(op) => {
                let input = inputs
                    .first()
                    .ok_or_else(|| MlError::MissingInput("LabelEncoder input".into()))?;
                Ok(FrameValue::Numeric(op.transform(input)?))
            }
            Operator::Imputer(op) => Ok(FrameValue::Numeric(op.transform(single_numeric(0)?)?)),
            Operator::Binarizer(op) => Ok(FrameValue::Numeric(op.transform(single_numeric(0)?))),
            Operator::Normalizer(op) => Ok(FrameValue::Numeric(op.transform(single_numeric(0)?))),
            Operator::Concat => Ok(FrameValue::Numeric(concat(inputs)?)),
            Operator::FeatureExtractor(op) => {
                Ok(FrameValue::Numeric(op.transform(single_numeric(0)?)?))
            }
            Operator::Constant(op) => Ok(FrameValue::Numeric(op.materialize(rows))),
            Operator::LinearRegression(m) => {
                Ok(FrameValue::Numeric(m.predict(single_numeric(0)?)?))
            }
            Operator::LogisticRegression(m) => {
                Ok(FrameValue::Numeric(m.predict_proba(single_numeric(0)?)?))
            }
            Operator::LinearSvm(m) => Ok(FrameValue::Numeric(
                m.decision_function(single_numeric(0)?)?,
            )),
            Operator::TreeEnsemble(m) => Ok(FrameValue::Numeric(m.predict(single_numeric(0)?)?)),
        }
    }

    /// Number of output feature columns, given the widths of the inputs.
    pub fn output_width(&self, input_widths: &[usize]) -> usize {
        match self {
            Operator::Scaler(op) => op.width(),
            Operator::Imputer(op) => op.fill.len(),
            Operator::Binarizer(_) | Operator::Normalizer(_) => input_widths.iter().sum(),
            Operator::OneHotEncoder(op) => op.width(),
            Operator::LabelEncoder(_) => 1,
            Operator::Concat => input_widths.iter().sum(),
            Operator::FeatureExtractor(op) => op.indices.len(),
            Operator::Constant(op) => op.values.len(),
            Operator::LinearRegression(_)
            | Operator::LogisticRegression(_)
            | Operator::LinearSvm(_)
            | Operator::TreeEnsemble(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Matrix, StringMatrix};

    #[test]
    fn names_and_categories() {
        assert_eq!(Operator::Concat.name(), "Concat");
        assert_eq!(Operator::Concat.category(), OperatorCategory::Structural);
        let lr = Operator::LogisticRegression(LogisticRegressionModel {
            weights: vec![1.0],
            intercept: 0.0,
        });
        assert_eq!(lr.category(), OperatorCategory::LinearModel);
        assert!(lr.is_model());
        let sc = Operator::Scaler(Scaler::identity(2));
        assert!(!sc.is_model());
        assert_eq!(sc.category(), OperatorCategory::Featurizer);
        let dt = Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(1.0), 1));
        assert_eq!(dt.name(), "DecisionTreeClassifier");
    }

    #[test]
    fn apply_dispatch() {
        let rows = 2;
        let numeric = FrameValue::Numeric(Matrix::from_column(&[1.0, 2.0]));
        let strings = FrameValue::Strings(StringMatrix::from_column(&["a".into(), "b".into()]));

        let scaler = Operator::Scaler(Scaler {
            offsets: vec![1.0],
            scales: vec![2.0],
        });
        let out = scaler.apply(&[&numeric], rows).unwrap();
        assert_eq!(out.as_numeric().unwrap().column(0), vec![0.0, 2.0]);

        let ohe = Operator::OneHotEncoder(OneHotEncoder {
            categories: vec!["a".into(), "b".into()],
        });
        let out = ohe.apply(&[&strings], rows).unwrap();
        assert_eq!(out.cols(), 2);

        let cat = Operator::Concat;
        let out = cat.apply(&[&numeric, &numeric], rows).unwrap();
        assert_eq!(out.cols(), 2);

        let c = Operator::Constant(ConstantNode { values: vec![5.0] });
        let out = c.apply(&[], rows).unwrap();
        assert_eq!(out.rows(), 2);

        // missing inputs produce errors rather than panics
        assert!(scaler.apply(&[], rows).is_err());
        assert!(ohe.apply(&[], rows).is_err());
    }

    #[test]
    fn output_width_computation() {
        assert_eq!(Operator::Concat.output_width(&[2, 3]), 5);
        assert_eq!(
            Operator::OneHotEncoder(OneHotEncoder {
                categories: vec!["a".into(), "b".into(), "c".into()]
            })
            .output_width(&[1]),
            3
        );
        assert_eq!(
            Operator::FeatureExtractor(FeatureExtractor {
                indices: vec![0, 2]
            })
            .output_width(&[5]),
            2
        );
        assert_eq!(Operator::Scaler(Scaler::identity(4)).output_width(&[4]), 4);
        assert_eq!(
            Operator::TreeEnsemble(TreeEnsemble::single_tree(Tree::leaf(0.0), 3))
                .output_width(&[3]),
            1
        );
    }
}
