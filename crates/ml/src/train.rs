//! Model training.
//!
//! The paper's trained pipelines are fit with scikit-learn; to reproduce the
//! system end-to-end we train the same model families from scratch: CART
//! decision trees (histogram-based splitting), bagged random forests,
//! gradient-boosted trees with a logistic link, and linear / logistic
//! regression with optional L1 regularization (the knob behind the sparsity
//! sweep of Fig. 9).

use crate::error::{MlError, Result};
use crate::frame::Matrix;
use crate::ops::{
    EnsembleKind, LinearRegressionModel, LogisticRegressionModel, OneHotEncoder, Scaler, Tree,
    TreeEnsemble, TreeNode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Featurizer fitting
// ---------------------------------------------------------------------------

/// Fit a standard scaler (offset = mean, scale = 1/std) per column.
pub fn fit_standard_scaler(x: &Matrix) -> Scaler {
    let mut offsets = Vec::with_capacity(x.cols());
    let mut scales = Vec::with_capacity(x.cols());
    for c in 0..x.cols() {
        let col = x.column(c);
        let valid: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
        let n = valid.len().max(1) as f64;
        let mean = valid.iter().sum::<f64>() / n;
        let var = valid.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        offsets.push(mean);
        scales.push(if std > 1e-12 { 1.0 / std } else { 1.0 });
    }
    Scaler { offsets, scales }
}

/// Fit a one-hot encoder from observed category strings (sorted for
/// determinism).
pub fn fit_one_hot(values: &[String]) -> OneHotEncoder {
    let mut cats: BTreeSet<String> = values.iter().filter(|s| !s.is_empty()).cloned().collect();
    if cats.is_empty() {
        cats.insert("<missing>".to_string());
    }
    OneHotEncoder {
        categories: cats.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------------
// Linear / logistic regression
// ---------------------------------------------------------------------------

/// Hyperparameters for (regularized) linear and logistic regression.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// L1 regularization strength (0 disables; larger values zero out more
    /// weights, mirroring scikit-learn's `alpha`/`1/C`).
    pub l1_alpha: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            l1_alpha: 0.0,
            epochs: 200,
            learning_rate: 0.1,
        }
    }
}

/// Train linear regression with proximal gradient descent (ISTA) so L1 yields
/// exact zero weights.
pub fn train_linear_regression(
    x: &Matrix,
    y: &[f64],
    config: &LinearConfig,
) -> Result<LinearRegressionModel> {
    let (weights, intercept) = train_glm(x, y, config, false)?;
    Ok(LinearRegressionModel { weights, intercept })
}

/// Train binary logistic regression (labels in {0, 1}) with proximal gradient
/// descent so L1 yields exact zero weights.
pub fn train_logistic_regression(
    x: &Matrix,
    y: &[f64],
    config: &LinearConfig,
) -> Result<LogisticRegressionModel> {
    let (weights, intercept) = train_glm(x, y, config, true)?;
    Ok(LogisticRegressionModel { weights, intercept })
}

fn train_glm(
    x: &Matrix,
    y: &[f64],
    config: &LinearConfig,
    logistic: bool,
) -> Result<(Vec<f64>, f64)> {
    let n = x.rows();
    let d = x.cols();
    if y.len() != n {
        return Err(MlError::Training(format!(
            "feature matrix has {n} rows but {} labels given",
            y.len()
        )));
    }
    if n == 0 || d == 0 {
        return Err(MlError::Training("empty training data".into()));
    }
    let mut w = vec![0.0; d];
    let mut b = 0.0;
    let lr = config.learning_rate;
    let inv_n = 1.0 / n as f64;
    for _ in 0..config.epochs {
        let mut gw = vec![0.0; d];
        let mut gb = 0.0;
        #[allow(clippy::needless_range_loop)] // i indexes both x rows and y
        for i in 0..n {
            let row = x.row(i);
            let mut z = b;
            for j in 0..d {
                z += w[j] * row[j];
            }
            let pred = if logistic { crate::ops::sigmoid(z) } else { z };
            let err = pred - y[i];
            for j in 0..d {
                gw[j] += err * row[j];
            }
            gb += err;
        }
        for j in 0..d {
            w[j] -= lr * gw[j] * inv_n;
            // proximal (soft-thresholding) step for L1
            if config.l1_alpha > 0.0 {
                let t = lr * config.l1_alpha;
                w[j] = if w[j] > t {
                    w[j] - t
                } else if w[j] < -t {
                    w[j] + t
                } else {
                    0.0
                };
            }
        }
        b -= lr * gb * inv_n;
    }
    Ok((w, b))
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

/// Training task for a single tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Binary classification (Gini impurity, leaf = class-1 probability).
    Classification,
    /// Regression (variance reduction, leaf = mean target).
    Regression,
}

/// Hyperparameters for tree training.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of histogram bins per feature.
    pub n_bins: usize,
    /// Task (classification or regression).
    pub task: TreeTask,
    /// Number of features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 2,
            n_bins: 32,
            task: TreeTask::Classification,
            max_features: None,
            seed: 42,
        }
    }
}

/// Pre-binned representation of the training features (histogram splitting).
struct BinnedData {
    /// Per feature: the bin upper edges (thresholds).
    edges: Vec<Vec<f64>>,
    /// Per feature: per row bin index.
    bins: Vec<Vec<u16>>,
}

fn bin_features(x: &Matrix, n_bins: usize) -> BinnedData {
    let n_bins = n_bins.clamp(2, 255);
    let mut edges = Vec::with_capacity(x.cols());
    let mut bins = Vec::with_capacity(x.cols());
    for c in 0..x.cols() {
        let mut vals: Vec<f64> = x
            .column(c)
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup();
        let mut e = Vec::new();
        if vals.len() <= n_bins {
            // midpoints between consecutive distinct values
            for w in vals.windows(2) {
                e.push((w[0] + w[1]) / 2.0);
            }
        } else {
            for k in 1..n_bins {
                let idx = k * (vals.len() - 1) / n_bins;
                let edge = (vals[idx] + vals[(idx + 1).min(vals.len() - 1)]) / 2.0;
                if e.last().map(|&l| edge > l).unwrap_or(true) {
                    e.push(edge);
                }
            }
        }
        let col = x.column(c);
        let b: Vec<u16> = col
            .iter()
            .map(|&v| {
                if v.is_nan() {
                    0
                } else {
                    e.partition_point(|&edge| v > edge) as u16
                }
            })
            .collect();
        edges.push(e);
        bins.push(b);
    }
    BinnedData { edges, bins }
}

/// Train a single decision tree.
pub fn train_decision_tree(x: &Matrix, y: &[f64], config: &TreeConfig) -> Result<Tree> {
    if x.rows() != y.len() {
        return Err(MlError::Training(format!(
            "feature matrix has {} rows but {} labels given",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 {
        return Err(MlError::Training("empty training data".into()));
    }
    let binned = bin_features(x, config.n_bins);
    let rows: Vec<u32> = (0..x.rows() as u32).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nodes = Vec::new();
    let root = grow(&binned, y, &rows, 0, config, &mut rng, &mut nodes);
    Ok(Tree { nodes, root })
}

fn grow(
    data: &BinnedData,
    y: &[f64],
    rows: &[u32],
    depth: usize,
    config: &TreeConfig,
    rng: &mut StdRng,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let leaf_value = mean(y, rows);
    if depth >= config.max_depth || rows.len() < config.min_samples_split || is_pure(y, rows) {
        nodes.push(TreeNode::Leaf { value: leaf_value });
        return nodes.len() - 1;
    }
    let n_features = data.bins.len();
    let feature_candidates: Vec<usize> = match config.max_features {
        Some(k) if k < n_features => {
            let mut chosen = BTreeSet::new();
            while chosen.len() < k {
                chosen.insert(rng.gen_range(0..n_features));
            }
            chosen.into_iter().collect()
        }
        _ => (0..n_features).collect(),
    };

    let parent_impurity = impurity(y, rows, config.task);
    let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, gain)
    for &f in &feature_candidates {
        let n_edges = data.edges[f].len();
        if n_edges == 0 {
            continue;
        }
        // histogram: per bin, count and sum of y (and sum of squares for regression)
        let n_bins = n_edges + 1;
        let mut count = vec![0.0f64; n_bins];
        let mut sum = vec![0.0f64; n_bins];
        let mut sum2 = vec![0.0f64; n_bins];
        for &r in rows {
            let b = data.bins[f][r as usize] as usize;
            let yv = y[r as usize];
            count[b] += 1.0;
            sum[b] += yv;
            sum2[b] += yv * yv;
        }
        let total_count: f64 = count.iter().sum();
        let total_sum: f64 = sum.iter().sum();
        let total_sum2: f64 = sum2.iter().sum();
        let mut lc = 0.0;
        let mut ls = 0.0;
        let mut ls2 = 0.0;
        for b in 0..n_edges {
            lc += count[b];
            ls += sum[b];
            ls2 += sum2[b];
            let rc = total_count - lc;
            if lc < 1.0 || rc < 1.0 {
                continue;
            }
            let rs = total_sum - ls;
            let rs2 = total_sum2 - ls2;
            let gain = match config.task {
                TreeTask::Classification => {
                    let gini = |c: f64, s: f64| {
                        let p = s / c;
                        2.0 * p * (1.0 - p)
                    };
                    parent_impurity
                        - (lc / total_count) * gini(lc, ls)
                        - (rc / total_count) * gini(rc, rs)
                }
                TreeTask::Regression => {
                    let var = |c: f64, s: f64, s2: f64| s2 / c - (s / c) * (s / c);
                    parent_impurity
                        - (lc / total_count) * var(lc, ls, ls2)
                        - (rc / total_count) * var(rc, rs, rs2)
                }
            };
            if gain > 1e-12 && best.map(|(_, _, g)| gain > g).unwrap_or(true) {
                best = Some((f, b, gain));
            }
        }
    }

    let Some((feature, bin, _)) = best else {
        nodes.push(TreeNode::Leaf { value: leaf_value });
        return nodes.len() - 1;
    };
    let threshold = data.edges[feature][bin];
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
        .iter()
        .partition(|&&r| data.bins[feature][r as usize] as usize <= bin);
    if left_rows.is_empty() || right_rows.is_empty() {
        nodes.push(TreeNode::Leaf { value: leaf_value });
        return nodes.len() - 1;
    }
    let left = grow(data, y, &left_rows, depth + 1, config, rng, nodes);
    let right = grow(data, y, &right_rows, depth + 1, config, rng, nodes);
    nodes.push(TreeNode::Branch {
        feature,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

fn mean(y: &[f64], rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| y[r as usize]).sum::<f64>() / rows.len() as f64
}

fn is_pure(y: &[f64], rows: &[u32]) -> bool {
    let first = y[rows[0] as usize];
    rows.iter().all(|&r| (y[r as usize] - first).abs() < 1e-12)
}

fn impurity(y: &[f64], rows: &[u32], task: TreeTask) -> f64 {
    let n = rows.len() as f64;
    match task {
        TreeTask::Classification => {
            let p = rows.iter().map(|&r| y[r as usize]).sum::<f64>() / n;
            2.0 * p * (1.0 - p)
        }
        TreeTask::Regression => {
            let m = rows.iter().map(|&r| y[r as usize]).sum::<f64>() / n;
            rows.iter()
                .map(|&r| (y[r as usize] - m) * (y[r as usize] - m))
                .sum::<f64>()
                / n
        }
    }
}

/// Train a decision-tree classifier as a [`TreeEnsemble`].
pub fn train_decision_tree_classifier(
    x: &Matrix,
    y: &[f64],
    config: &TreeConfig,
) -> Result<TreeEnsemble> {
    let tree = train_decision_tree(
        x,
        y,
        &TreeConfig {
            task: TreeTask::Classification,
            ..config.clone()
        },
    )?;
    Ok(TreeEnsemble {
        kind: EnsembleKind::DecisionTreeClassifier,
        trees: vec![tree],
        n_features: x.cols(),
        learning_rate: 1.0,
        base_score: 0.0,
    })
}

/// Hyperparameters for random forests.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap sample fraction.
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 10,
            tree: TreeConfig::default(),
            sample_fraction: 1.0,
            seed: 42,
        }
    }
}

/// Train a random-forest classifier (bootstrap rows, sqrt feature subsampling).
pub fn train_random_forest(x: &Matrix, y: &[f64], config: &ForestConfig) -> Result<TreeEnsemble> {
    if x.rows() == 0 || x.rows() != y.len() {
        return Err(MlError::Training("invalid training data".into()));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = x.rows();
    let sample_size = ((n as f64) * config.sample_fraction).round().max(1.0) as usize;
    let max_features = config
        .tree
        .max_features
        .unwrap_or_else(|| (x.cols() as f64).sqrt().ceil() as usize)
        .max(1);
    let binned = bin_features(x, config.tree.n_bins);
    let mut trees = Vec::with_capacity(config.n_trees);
    for t in 0..config.n_trees {
        let rows: Vec<u32> = (0..sample_size)
            .map(|_| rng.gen_range(0..n) as u32)
            .collect();
        let tree_cfg = TreeConfig {
            task: TreeTask::Classification,
            max_features: Some(max_features),
            seed: config.seed.wrapping_add(t as u64),
            ..config.tree.clone()
        };
        let mut tree_rng = StdRng::seed_from_u64(tree_cfg.seed);
        let mut nodes = Vec::new();
        let root = grow(&binned, y, &rows, 0, &tree_cfg, &mut tree_rng, &mut nodes);
        trees.push(Tree { nodes, root });
    }
    Ok(TreeEnsemble {
        kind: EnsembleKind::RandomForestClassifier,
        trees,
        n_features: x.cols(),
        learning_rate: 1.0,
        base_score: 0.0,
    })
}

/// Hyperparameters for gradient boosting.
#[derive(Debug, Clone)]
pub struct BoostingConfig {
    /// Number of boosting stages (estimators).
    pub n_estimators: usize,
    /// Maximum depth of each stage's tree.
    pub max_depth: usize,
    /// Shrinkage applied to each stage.
    pub learning_rate: f64,
    /// Histogram bins.
    pub n_bins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoostingConfig {
    fn default() -> Self {
        BoostingConfig {
            n_estimators: 20,
            max_depth: 3,
            learning_rate: 0.1,
            n_bins: 32,
            seed: 42,
        }
    }
}

/// Train a gradient-boosting classifier (binary log-loss, like scikit-learn's
/// `GradientBoostingClassifier` / LightGBM with default objective).
pub fn train_gradient_boosting(
    x: &Matrix,
    y: &[f64],
    config: &BoostingConfig,
) -> Result<TreeEnsemble> {
    if x.rows() == 0 || x.rows() != y.len() {
        return Err(MlError::Training("invalid training data".into()));
    }
    let n = x.rows();
    let pos = y.iter().sum::<f64>() / n as f64;
    let pos = pos.clamp(1e-6, 1.0 - 1e-6);
    let base_score = (pos / (1.0 - pos)).ln();
    let binned = bin_features(x, config.n_bins);
    let rows: Vec<u32> = (0..n as u32).collect();
    let mut raw = vec![base_score; n];
    let mut trees = Vec::with_capacity(config.n_estimators);
    for stage in 0..config.n_estimators {
        // negative gradient of log-loss = y - p
        let residuals: Vec<f64> = raw
            .iter()
            .zip(y.iter())
            .map(|(&r, &yi)| yi - crate::ops::sigmoid(r))
            .collect();
        let tree_cfg = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: 2,
            n_bins: config.n_bins,
            task: TreeTask::Regression,
            max_features: None,
            seed: config.seed.wrapping_add(stage as u64),
        };
        let mut rng = StdRng::seed_from_u64(tree_cfg.seed);
        let mut nodes = Vec::new();
        let root = grow(
            &binned, &residuals, &rows, 0, &tree_cfg, &mut rng, &mut nodes,
        );
        let tree = Tree { nodes, root };
        for (i, r) in raw.iter_mut().enumerate().take(n) {
            // feature row needed for prediction: reconstruct from matrix
            *r += config.learning_rate * tree.predict_row(x.row(i));
        }
        trees.push(tree);
    }
    Ok(TreeEnsemble {
        kind: EnsembleKind::GradientBoostingClassifier,
        trees,
        n_features: x.cols(),
        learning_rate: config.learning_rate,
        base_score,
    })
}

/// Classification accuracy of scores (threshold 0.5) against {0,1} labels.
pub fn accuracy(scores: &[f64], labels: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let correct = scores
        .iter()
        .zip(labels.iter())
        .filter(|(&s, &l)| (s >= 0.5) == (l >= 0.5))
        .count();
    correct as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A synthetic, nearly separable binary problem: label = 1 when
    /// 2*x0 - x1 + noise > 0.
    fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = Vec::with_capacity(d);
        for _ in 0..d {
            cols.push(
                (0..n)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect::<Vec<f64>>(),
            );
        }
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let v = 2.0 * cols[0][i] - cols[1.min(d - 1)][i] + rng.gen_range(-0.1..0.1);
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (Matrix::from_columns(&cols).unwrap(), y)
    }

    #[test]
    fn scaler_fit_standardizes() {
        let x = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![10.0, 10.0, 10.0]]).unwrap();
        let s = fit_standard_scaler(&x);
        assert!((s.offsets[0] - 2.0).abs() < 1e-12);
        assert_eq!(s.offsets[1], 10.0);
        assert_eq!(s.scales[1], 1.0); // zero-variance column keeps scale 1
        let t = s.transform(&x).unwrap();
        let col0 = t.column(0);
        assert!((col0.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn one_hot_fit_sorted_and_missing() {
        let enc = fit_one_hot(&["b".into(), "a".into(), "".into(), "b".into()]);
        assert_eq!(enc.categories, vec!["a".to_string(), "b".to_string()]);
        let empty = fit_one_hot(&["".into()]);
        assert_eq!(empty.categories.len(), 1);
    }

    #[test]
    fn logistic_regression_learns() {
        let (x, y) = dataset(400, 4, 1);
        let m = train_logistic_regression(&x, &y, &LinearConfig::default()).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert!(accuracy(&p.column(0), &y) > 0.9);
    }

    #[test]
    fn l1_regularization_zeroes_weights() {
        let (x, y) = dataset(300, 8, 2);
        let dense = train_logistic_regression(&x, &y, &LinearConfig::default()).unwrap();
        let sparse = train_logistic_regression(
            &x,
            &y,
            &LinearConfig {
                l1_alpha: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(sparse.used_features().len() < dense.used_features().len());
        // irrelevant features (index >= 2) should mostly be zeroed
        assert!(sparse.weights[4].abs() < 1e-9);
    }

    #[test]
    fn linear_regression_fits_line() {
        let x =
            Matrix::from_columns(&[(0..50).map(|i| i as f64 / 10.0).collect::<Vec<_>>()]).unwrap();
        let y: Vec<f64> = x.column(0).iter().map(|v| 3.0 * v + 1.0).collect();
        let m = train_linear_regression(
            &x,
            &y,
            &LinearConfig {
                epochs: 3000,
                learning_rate: 0.05,
                l1_alpha: 0.0,
            },
        )
        .unwrap();
        assert!((m.weights[0] - 3.0).abs() < 0.2);
        assert!((m.intercept - 1.0).abs() < 0.5);
    }

    #[test]
    fn decision_tree_learns_and_respects_depth() {
        let (x, y) = dataset(500, 3, 3);
        let cfg = TreeConfig {
            max_depth: 4,
            ..Default::default()
        };
        let ens = train_decision_tree_classifier(&x, &y, &cfg).unwrap();
        let tree = &ens.trees[0];
        assert!(tree.depth() <= 4);
        let p = ens.predict(&x).unwrap();
        assert!(accuracy(&p.column(0), &y) > 0.85);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_columns(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let y = vec![1.0, 1.0, 1.0];
        let t = train_decision_tree(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_row(&[5.0]), 1.0);
    }

    #[test]
    fn random_forest_learns() {
        let (x, y) = dataset(400, 4, 4);
        let cfg = ForestConfig {
            n_trees: 8,
            tree: TreeConfig {
                max_depth: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        let ens = train_random_forest(&x, &y, &cfg).unwrap();
        assert_eq!(ens.n_trees(), 8);
        let p = ens.predict(&x).unwrap();
        assert!(accuracy(&p.column(0), &y) > 0.85);
    }

    #[test]
    fn gradient_boosting_learns() {
        let (x, y) = dataset(400, 4, 5);
        let cfg = BoostingConfig {
            n_estimators: 20,
            max_depth: 3,
            ..Default::default()
        };
        let ens = train_gradient_boosting(&x, &y, &cfg).unwrap();
        assert_eq!(ens.n_trees(), 20);
        let p = ens.predict(&x).unwrap();
        assert!(accuracy(&p.column(0), &y) > 0.88);
        // classifier outputs stay in [0,1]
        assert!(p.column(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_input_validation() {
        let x = Matrix::from_columns(&[vec![1.0, 2.0]]).unwrap();
        assert!(train_decision_tree(&x, &[1.0], &TreeConfig::default()).is_err());
        assert!(train_logistic_regression(&x, &[1.0], &LinearConfig::default()).is_err());
        assert!(train_random_forest(&x, &[1.0], &ForestConfig::default()).is_err());
        assert!(train_gradient_boosting(&x, &[1.0], &BoostingConfig::default()).is_err());
    }

    #[test]
    fn determinism_with_same_seed() {
        let (x, y) = dataset(200, 3, 6);
        let cfg = ForestConfig::default();
        let a = train_random_forest(&x, &y, &cfg).unwrap();
        let b = train_random_forest(&x, &y, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[0.9, 0.1], &[1.0, 0.0]), 1.0);
        assert_eq!(accuracy(&[0.9, 0.9], &[1.0, 0.0]), 0.5);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }
}
