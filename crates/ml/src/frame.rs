//! Values flowing between ML operators.
//!
//! ONNX-ML pipelines pass tensors between operators; the traditional-ML
//! operators the paper focuses on only need two shapes of data: dense numeric
//! matrices (rows × features) and string matrices (categorical inputs before
//! encoding). [`FrameValue`] captures both.

use crate::error::{MlError, Result};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::ShapeMismatch(format!(
                "matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// A zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from one column vector.
    pub fn from_column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Build from a set of equally long column vectors.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self> {
        let cols = columns.len();
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in columns {
            if c.len() != rows {
                return Err(MlError::ShapeMismatch(
                    "columns have differing lengths".into(),
                ));
            }
        }
        let mut data = vec![0.0; rows * cols];
        for (j, c) in columns.iter().enumerate() {
            for (i, &v) in c.iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element setter.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Extract one column as an owned vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// Horizontally concatenate matrices with equal row counts.
    pub fn hconcat(parts: &[&Matrix]) -> Result<Matrix> {
        let rows = parts
            .first()
            .map(|m| m.rows)
            .ok_or_else(|| MlError::ShapeMismatch("hconcat of zero matrices".into()))?;
        for p in parts {
            if p.rows != rows {
                return Err(MlError::ShapeMismatch(format!(
                    "hconcat row mismatch: {} vs {}",
                    rows, p.rows
                )));
            }
        }
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    /// Select a subset of columns (in the given order).
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        for &i in indices {
            if i >= self.cols {
                return Err(MlError::ShapeMismatch(format!(
                    "column index {i} out of bounds for width {}",
                    self.cols
                )));
            }
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &i) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, i));
            }
        }
        Ok(out)
    }

    /// Dense matrix multiplication `self (r×k) * other (k×c)`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MlError::ShapeMismatch(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }
}

/// A string matrix for categorical data before encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StringMatrix {
    rows: usize,
    cols: usize,
    data: Vec<String>,
}

impl StringMatrix {
    /// Create from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<String>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::ShapeMismatch(format!(
                "string matrix data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(StringMatrix { rows, cols, data })
    }

    /// Build from a single column.
    pub fn from_column(values: &[String]) -> Self {
        StringMatrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, row: usize, col: usize) -> &str {
        &self.data[row * self.cols + col]
    }
}

/// A value flowing along a pipeline edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameValue {
    /// Dense numeric matrix (rows × features).
    Numeric(Matrix),
    /// String matrix (rows × categorical columns).
    Strings(StringMatrix),
}

impl FrameValue {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            FrameValue::Numeric(m) => m.rows(),
            FrameValue::Strings(m) => m.rows(),
        }
    }

    /// Number of columns / features.
    pub fn cols(&self) -> usize {
        match self {
            FrameValue::Numeric(m) => m.cols(),
            FrameValue::Strings(m) => m.cols(),
        }
    }

    /// Unwrap the numeric matrix, failing on strings.
    pub fn as_numeric(&self) -> Result<&Matrix> {
        match self {
            FrameValue::Numeric(m) => Ok(m),
            FrameValue::Strings(_) => Err(MlError::ShapeMismatch(
                "expected numeric input, got strings".into(),
            )),
        }
    }

    /// Unwrap the string matrix, failing on numerics.
    pub fn as_strings(&self) -> Result<&StringMatrix> {
        match self {
            FrameValue::Strings(m) => Ok(m),
            FrameValue::Numeric(_) => Err(MlError::ShapeMismatch(
                "expected string input, got numeric".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_construction_and_access() {
        let m = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
        assert!(Matrix::new(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_columns_layout() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0), &[1.0, 3.0]);
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn hconcat_and_select() {
        let a = Matrix::from_column(&[1.0, 2.0]);
        let b = Matrix::from_columns(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let c = Matrix::hconcat(&[&a, &b]).unwrap();
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(1), &[2.0, 4.0, 6.0]);
        let s = c.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[5.0, 1.0]);
        assert!(c.select_columns(&[9]).is_err());
        assert!(Matrix::hconcat(&[]).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::new(2, 1, vec![5.0, 6.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[17.0, 39.0]);
        assert!(b.matmul(&a).is_err());
    }

    #[test]
    fn string_matrix() {
        let m = StringMatrix::from_column(&["a".into(), "b".into()]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(1, 0), "b");
        assert!(StringMatrix::new(2, 2, vec!["x".into()]).is_err());
    }

    #[test]
    fn frame_value_accessors() {
        let n = FrameValue::Numeric(Matrix::from_column(&[1.0]));
        assert_eq!(n.rows(), 1);
        assert!(n.as_numeric().is_ok());
        assert!(n.as_strings().is_err());
        let s = FrameValue::Strings(StringMatrix::from_column(&["x".into()]));
        assert!(s.as_strings().is_ok());
        assert!(s.as_numeric().is_err());
    }
}
