//! The ML runtime: batch evaluation of trained pipelines.
//!
//! Plays the role of ONNX Runtime (and of the Python-UDF boundary that
//! surrounds it in Spark, §6/§7.4). The runtime binds relational batches to
//! pipeline inputs, evaluates the operator DAG node by node, and models the
//! per-invocation overhead of crossing the data-engine/ML-runtime boundary so
//! that MLtoSQL's "avoid the ML runtime" benefit is observable.

use crate::compiled::CompiledPipeline;
use crate::error::{MlError, Result};
use crate::frame::{FrameValue, Matrix, StringMatrix};
use crate::kernels::{fusion_active, FusedPipeline};
use crate::ops::{format_numeric_category, scorer_mode, FlatEnsemble, Operator, ScorerMode};
use crate::pipeline::{InputKind, Pipeline};
use raven_columnar::{
    Batch, BatchStream, Column, ColumnarError, DataType, Field, Schema, SelectionVector,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Fixed cost charged once per `run` call, modelling UDF/session startup
    /// and model-loading overhead (paper §7.4 reports 2–4 s cold, ~0.1 s warm
    /// on Spark; default is zero so unit tests are unaffected).
    pub invocation_overhead: Duration,
    /// Cost charged per processed batch, modelling data conversion between the
    /// engine's row format and the ML runtime's tensors.
    pub per_batch_overhead: Duration,
    /// Rows per batch when evaluating large inputs (the paper's UDF batches
    /// 10k rows by default).
    pub batch_size: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            invocation_overhead: Duration::ZERO,
            per_batch_overhead: Duration::ZERO,
            batch_size: 10_000,
        }
    }
}

/// The batch ML runtime.
#[derive(Debug, Clone, Default)]
pub struct MlRuntime {
    config: RuntimeConfig,
}

impl MlRuntime {
    /// Runtime with default (zero-overhead) configuration.
    pub fn new() -> Self {
        MlRuntime::default()
    }

    /// Runtime with an explicit configuration.
    pub fn with_config(config: RuntimeConfig) -> Self {
        MlRuntime { config }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Evaluate a pipeline over already-bound input values. All inputs must
    /// have the same row count.
    pub fn run(
        &self,
        pipeline: &Pipeline,
        inputs: &HashMap<String, FrameValue>,
    ) -> Result<FrameValue> {
        self.charge(self.config.invocation_overhead);
        let rows = inputs
            .values()
            .next()
            .map(|v| v.rows())
            .or(Some(0))
            .unwrap_or(0);
        for (name, v) in inputs {
            if v.rows() != rows {
                return Err(MlError::ShapeMismatch(format!(
                    "input {name} has {} rows, expected {rows}",
                    v.rows()
                )));
            }
        }
        self.charge(self.config.per_batch_overhead);
        self.evaluate_graph(pipeline, inputs, rows, None)
    }

    /// Evaluate a pipeline over a relational batch, binding pipeline inputs to
    /// batch columns by name. Large batches are processed in chunks of
    /// `batch_size` rows like the paper's vectorized UDF.
    pub fn run_batch(&self, pipeline: &Pipeline, batch: &Batch) -> Result<Vec<f64>> {
        self.charge(self.config.invocation_overhead);
        self.run_batch_chunked(pipeline, batch)
    }

    /// Score one arriving batch of a stream **without** charging the
    /// per-invocation (UDF/session startup) overhead — the streaming pipeline
    /// charges that once per query via [`MlRuntime::charge_invocation`], then
    /// scores each partition batch as it arrives, never concatenating the
    /// table. Batches larger than `batch_size` are still chunked, and the
    /// per-batch (data conversion) overhead is charged per chunk, so overhead
    /// accounting matches the materialized path that scores the same rows.
    pub fn run_batch_chunked(&self, pipeline: &Pipeline, batch: &Batch) -> Result<Vec<f64>> {
        self.chunked_scores(pipeline, batch, None)
    }

    /// [`MlRuntime::run_batch`] over a [`CompiledPipeline`]: identical
    /// semantics, but tree-ensemble nodes run the flattened block-at-a-time
    /// kernels (unless the scorer mode pins the interpreted baseline).
    pub fn run_batch_compiled(
        &self,
        compiled: &CompiledPipeline,
        batch: &Batch,
    ) -> Result<Vec<f64>> {
        self.charge(self.config.invocation_overhead);
        self.run_batch_chunked_compiled(compiled, batch)
    }

    /// [`MlRuntime::run_batch_chunked`] over a [`CompiledPipeline`].
    pub fn run_batch_chunked_compiled(
        &self,
        compiled: &CompiledPipeline,
        batch: &Batch,
    ) -> Result<Vec<f64>> {
        if let Some(fused) = self.fused_of(compiled) {
            return self.fused_scores(fused, batch, None);
        }
        self.chunked_scores(compiled.pipeline(), batch, self.flat_of(compiled))
    }

    /// The flattened scorers to use under the current [`ScorerMode`] (`None`
    /// pins the interpreted operator graph).
    fn flat_of<'c>(
        &self,
        compiled: &'c CompiledPipeline,
    ) -> Option<&'c HashMap<String, Arc<FlatEnsemble>>> {
        match scorer_mode() {
            ScorerMode::Flattened => Some(compiled.flat_scorers()),
            ScorerMode::Interpreted => None,
        }
    }

    /// The fused featurize→score pass to use, honoring both the scorer-mode
    /// oracle (`RAVEN_SCORER=interpreted` disables every compiled kernel)
    /// and the fusion A/B override ([`crate::kernels::force_fusion`] pins
    /// the per-operator PR 4 baseline).
    fn fused_of<'c>(&self, compiled: &'c CompiledPipeline) -> Option<&'c Arc<FusedPipeline>> {
        if scorer_mode() == ScorerMode::Interpreted || !fusion_active() {
            return None;
        }
        compiled.fused()
    }

    /// Score a batch (or its selected rows) through the fused pipeline: one
    /// pass over the source columns per block produces feature-major lanes
    /// the model kernel consumes in place. Chunked by `batch_size` with the
    /// per-batch overhead charged per chunk, mirroring the per-operator
    /// path's accounting.
    fn fused_scores(
        &self,
        fused: &FusedPipeline,
        batch: &Batch,
        indices: Option<&[u32]>,
    ) -> Result<Vec<f64>> {
        if batch.num_rows() == 0 {
            return Ok(Vec::new());
        }
        let bound = fused.bind(batch)?;
        let step = self.config.batch_size.max(1);
        match indices {
            None => {
                let total = batch.num_rows();
                let mut out = Vec::with_capacity(total);
                let mut start = 0;
                while start < total {
                    let len = step.min(total - start);
                    self.charge(self.config.per_batch_overhead);
                    bound.score_range(start, len, &mut out)?;
                    start += len;
                }
                Ok(out)
            }
            Some(indices) => {
                let mut out = Vec::with_capacity(indices.len());
                for chunk in indices.chunks(step) {
                    self.charge(self.config.per_batch_overhead);
                    bound.score_gathered(chunk, &mut out)?;
                }
                Ok(out)
            }
        }
    }

    fn chunked_scores(
        &self,
        pipeline: &Pipeline,
        batch: &Batch,
        flat: Option<&HashMap<String, Arc<FlatEnsemble>>>,
    ) -> Result<Vec<f64>> {
        if batch.num_rows() == 0 {
            return Ok(Vec::new());
        }
        let mut scores = Vec::with_capacity(batch.num_rows());
        let chunks = batch
            .chunks(self.config.batch_size.max(1))
            .map_err(MlError::from)?;
        for chunk in chunks {
            self.charge(self.config.per_batch_overhead);
            let inputs = bind_batch(pipeline, &chunk)?;
            let out = self.evaluate_graph(pipeline, &inputs, chunk.num_rows(), flat)?;
            let m = out.as_numeric()?;
            if m.cols() != 1 {
                return Err(MlError::ShapeMismatch(format!(
                    "pipeline output has {} columns, expected 1",
                    m.cols()
                )));
            }
            scores.extend_from_slice(m.data());
        }
        Ok(scores)
    }

    /// Score only the **selected** rows of a batch and append the scores as a
    /// full-length `Float64` column (NaN on deselected rows, which stay
    /// deselected), leaving the batch's columns untouched — the zero-copy
    /// filter→score stage of a selection-vector pipeline. Selected rows are
    /// gathered straight from the source columns into pipeline inputs (the
    /// one unavoidable copy at the engine↔runtime boundary), chunked by
    /// `batch_size` with the per-batch overhead charged per chunk; no
    /// intermediate filtered batch is ever materialized. With no selection
    /// this degrades to whole-batch scoring.
    pub fn score_batch_into_selected(
        &self,
        compiled: &CompiledPipeline,
        batch: &Batch,
        selection: Option<&SelectionVector>,
        score_column: &str,
    ) -> Result<Batch> {
        let pipeline = compiled.pipeline();
        let scores = match selection.and_then(|s| s.indices()) {
            None => match self.fused_of(compiled) {
                Some(fused) => self.fused_scores(fused, batch, None)?,
                None => self.chunked_scores(pipeline, batch, self.flat_of(compiled))?,
            },
            Some(indices) if self.fused_of(compiled).is_some() => {
                // fused gather: selected rows are read straight from the
                // source columns into feature lanes, scores scatter back
                let fused = self.fused_of(compiled).expect("checked above");
                let packed = self.fused_scores(fused, batch, Some(indices))?;
                let mut full = vec![f64::NAN; batch.num_rows()];
                for (&row, &score) in indices.iter().zip(packed.iter()) {
                    full[row as usize] = score;
                }
                full
            }
            Some(indices) => {
                let flat = self.flat_of(compiled);
                let mut packed = Vec::with_capacity(indices.len());
                for chunk in indices.chunks(self.config.batch_size.max(1)) {
                    self.charge(self.config.per_batch_overhead);
                    let inputs = bind_batch_gather(pipeline, batch, chunk)?;
                    let out = self.evaluate_graph(pipeline, &inputs, chunk.len(), flat)?;
                    let m = out.as_numeric()?;
                    if m.cols() != 1 {
                        return Err(MlError::ShapeMismatch(format!(
                            "pipeline output has {} columns, expected 1",
                            m.cols()
                        )));
                    }
                    packed.extend_from_slice(m.data());
                }
                // scatter the packed scores back to source-row positions
                let mut full = vec![f64::NAN; batch.num_rows()];
                for (&row, &score) in indices.iter().zip(packed.iter()) {
                    full[row as usize] = score;
                }
                full
            }
        };
        batch
            .with_column(
                Field::new(score_column, DataType::Float64),
                Arc::new(Column::Float64(scores)),
            )
            .map_err(MlError::from)
    }

    /// Charge the per-invocation overhead once (used by streaming callers
    /// pairing one invocation with many [`MlRuntime::run_batch_chunked`]
    /// calls).
    pub fn charge_invocation(&self) {
        self.charge(self.config.invocation_overhead);
    }

    /// Score one (partition) batch and append the predictions as a `Float64`
    /// column named `score_column`. This is the single source of truth for
    /// the per-batch scoring stage of a streaming pipeline — both
    /// [`MlRuntime::score_stream`] and the session's partition-parallel
    /// scoring operator go through it. No per-invocation overhead is charged
    /// (see [`MlRuntime::charge_invocation`]).
    pub fn score_batch_into(
        &self,
        pipeline: &Pipeline,
        batch: &Batch,
        score_column: &str,
    ) -> Result<Batch> {
        let scores = self.run_batch_chunked(pipeline, batch)?;
        batch
            .with_column(
                Field::new(score_column, DataType::Float64),
                std::sync::Arc::new(Column::Float64(scores)),
            )
            .map_err(MlError::from)
    }

    /// Attach a scoring stage to a [`BatchStream`]: each partition batch is
    /// scored as it arrives (chunked by `batch_size`, per-batch overhead per
    /// chunk) and the predictions are appended as a `Float64` column named
    /// `score_column`. The per-invocation overhead is charged once, up front —
    /// the stream crosses the engine/runtime boundary once per query, not once
    /// per partition. The input table is never concatenated. When the stream
    /// is driven (`collect`/`concat`), scoring runs partition-parallel on the
    /// process-wide work-stealing pool (`raven_columnar::pool`) alongside the
    /// relational stages it is fused with.
    pub fn score_stream(
        &self,
        pipeline: &Pipeline,
        stream: BatchStream,
        score_column: &str,
    ) -> BatchStream {
        self.charge_invocation();
        let runtime = self.clone();
        let pipeline = pipeline.clone();
        let column = score_column.to_string();
        let schema = stream.schema().clone();
        // Mirror `Batch::with_column`: replace the field when the score
        // column shadows an existing one, append otherwise.
        let mut fields: Vec<Field> = schema.fields().to_vec();
        match fields.iter_mut().find(|f| f.name() == column) {
            Some(field) => *field = Field::new(&column, DataType::Float64),
            None => fields.push(Field::new(&column, DataType::Float64)),
        }
        let out_schema = Schema::new(fields)
            .map(std::sync::Arc::new)
            .unwrap_or(schema);
        stream.with_schema(out_schema).map(move |mut item| {
            item.batch = runtime
                .score_batch_into(&pipeline, &item.batch, &column)
                .map_err(|e| ColumnarError::Execution(e.to_string()))?;
            Ok(Some(item))
        })
    }

    /// Row-at-a-time interpreted evaluation (the SparkML-style baseline used
    /// in §7.1.1's comparison): binds and evaluates the pipeline one row at a
    /// time, paying the full graph-interpretation overhead per row.
    pub fn run_batch_row_interpreted(
        &self,
        pipeline: &Pipeline,
        batch: &Batch,
    ) -> Result<Vec<f64>> {
        self.charge(self.config.invocation_overhead);
        let mut scores = Vec::with_capacity(batch.num_rows());
        for row in 0..batch.num_rows() {
            let single = batch.slice(row, 1).map_err(MlError::from)?;
            let inputs = bind_batch(pipeline, &single)?;
            let out = self.evaluate_graph(pipeline, &inputs, 1, None)?;
            scores.push(out.as_numeric()?.get(0, 0));
        }
        Ok(scores)
    }

    fn evaluate_graph(
        &self,
        pipeline: &Pipeline,
        inputs: &HashMap<String, FrameValue>,
        rows: usize,
        flat: Option<&HashMap<String, Arc<FlatEnsemble>>>,
    ) -> Result<FrameValue> {
        pipeline.validate_structure()?;
        let mut values: HashMap<&str, FrameValue> =
            HashMap::with_capacity(pipeline.nodes.len() + inputs.len());
        for input in &pipeline.inputs {
            let v = inputs.get(&input.name).ok_or_else(|| {
                MlError::MissingInput(format!("pipeline input {} not bound", input.name))
            })?;
            values.insert(input.name.as_str(), v.clone());
        }
        for node in &pipeline.nodes {
            let in_values: Vec<&FrameValue> = node
                .inputs
                .iter()
                .map(|name| {
                    values
                        .get(name.as_str())
                        .ok_or_else(|| MlError::MissingInput(name.clone()))
                })
                .collect::<Result<Vec<_>>>()?;
            // A tree-ensemble node with a compiled kernel bypasses the
            // interpreted operator dispatch entirely: the flattened SoA
            // arrays are scored block-at-a-time over the feature matrix.
            let flat_scorer = flat.and_then(|m| m.get(node.name.as_str()));
            let output = if let Some(scorer) = flat_scorer {
                let merged;
                let m: &Matrix = if in_values.len() > 1 {
                    merged = crate::ops::concat(&in_values)?;
                    &merged
                } else {
                    in_values
                        .first()
                        .ok_or_else(|| {
                            MlError::MissingInput(format!("{} input 0", node.op.name()))
                        })?
                        .as_numeric()?
                };
                FrameValue::Numeric(scorer.predict(m)?)
            } else if in_values.len() > 1 && !matches!(node.op, Operator::Concat) {
                // Operators that consume a single numeric matrix accept
                // multiple numeric inputs by implicit horizontal
                // concatenation (this is how e.g. the Scaler of Fig. 3 is
                // fed both `age` and `bpm`).
                let merged = crate::ops::concat(&in_values)?;
                node.op.apply(&[&FrameValue::Numeric(merged)], rows)?
            } else {
                node.op.apply(&in_values, rows)?
            };
            values.insert(node.output.as_str(), output);
        }
        values
            .remove(pipeline.output.as_str())
            .ok_or_else(|| MlError::InvalidPipeline("output value missing".into()))
    }

    fn charge(&self, cost: Duration) {
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }
}

/// Bind the columns of a batch to the inputs of a pipeline (by name).
pub fn bind_batch(pipeline: &Pipeline, batch: &Batch) -> Result<HashMap<String, FrameValue>> {
    let mut out = HashMap::with_capacity(pipeline.inputs.len());
    for input in &pipeline.inputs {
        let col = batch
            .column_by_name(&input.name)
            .map_err(|_| MlError::MissingInput(format!("column {} not in batch", input.name)))?;
        out.insert(input.name.clone(), column_to_frame(col, input.kind)?);
    }
    Ok(out)
}

/// Bind pipeline inputs by gathering only the rows at `indices` straight
/// from the batch's columns — the zero-copy filter→score boundary: no
/// intermediate filtered batch exists, the single copy lands directly in the
/// runtime's input representation.
pub fn bind_batch_gather(
    pipeline: &Pipeline,
    batch: &Batch,
    indices: &[u32],
) -> Result<HashMap<String, FrameValue>> {
    let mut out = HashMap::with_capacity(pipeline.inputs.len());
    for input in &pipeline.inputs {
        let col = batch
            .column_by_name(&input.name)
            .map_err(|_| MlError::MissingInput(format!("column {} not in batch", input.name)))?;
        out.insert(
            input.name.clone(),
            column_to_frame_gather(col, input.kind, indices)?,
        );
    }
    Ok(out)
}

/// [`column_to_frame`] restricted to the rows at `indices`.
pub fn column_to_frame_gather(
    column: &Column,
    kind: InputKind,
    indices: &[u32],
) -> Result<FrameValue> {
    match kind {
        InputKind::Numeric => {
            let values: Vec<f64> = match column {
                Column::Float64(v) => indices.iter().map(|&i| v[i as usize]).collect(),
                Column::Int64(v) => indices.iter().map(|&i| v[i as usize] as f64).collect(),
                Column::Boolean(v) => indices
                    .iter()
                    .map(|&i| if v[i as usize] { 1.0 } else { 0.0 })
                    .collect(),
                Column::Utf8(_) => {
                    return Err(MlError::from(ColumnarError::TypeMismatch {
                        expected: "numeric".into(),
                        found: "Utf8".into(),
                    }))
                }
            };
            Ok(FrameValue::Numeric(Matrix::from_column(&values)))
        }
        InputKind::Categorical => {
            let strings: Vec<String> = match column {
                Column::Utf8(v) => indices.iter().map(|&i| v[i as usize].clone()).collect(),
                Column::Int64(v) => indices.iter().map(|&i| v[i as usize].to_string()).collect(),
                Column::Boolean(v) => indices
                    .iter()
                    .map(|&i| (v[i as usize] as i64).to_string())
                    .collect(),
                Column::Float64(v) => indices
                    .iter()
                    .map(|&i| format_numeric_category(v[i as usize]))
                    .collect(),
            };
            Ok(FrameValue::Strings(StringMatrix::from_column(&strings)))
        }
    }
}

/// Convert one relational column into a pipeline input value.
pub fn column_to_frame(column: &Column, kind: InputKind) -> Result<FrameValue> {
    match kind {
        InputKind::Numeric => Ok(FrameValue::Numeric(Matrix::from_column(
            &column.to_f64_vec()?,
        ))),
        InputKind::Categorical => {
            let strings: Vec<String> = match column {
                Column::Utf8(v) => v.clone(),
                Column::Int64(v) => v.iter().map(|x| x.to_string()).collect(),
                Column::Boolean(v) => v.iter().map(|b| (*b as i64).to_string()).collect(),
                Column::Float64(v) => v.iter().map(|x| format_numeric_category(*x)).collect(),
            };
            Ok(FrameValue::Strings(StringMatrix::from_column(&strings)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{OneHotEncoder, Operator, Scaler, Tree, TreeEnsemble, TreeNode};
    use crate::pipeline::{PipelineInput, PipelineNode};
    use raven_columnar::TableBuilder;

    fn pipeline() -> Pipeline {
        Pipeline::new(
            "m",
            vec![
                PipelineInput {
                    name: "age".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "bmi".into(),
                    kind: InputKind::Numeric,
                },
                PipelineInput {
                    name: "asthma".into(),
                    kind: InputKind::Categorical,
                },
            ],
            vec![
                PipelineNode {
                    name: "scaler".into(),
                    op: Operator::Scaler(Scaler {
                        offsets: vec![0.0, 0.0],
                        scales: vec![1.0, 1.0],
                    }),
                    inputs: vec!["age".into(), "bmi".into()],
                    output: "scaled".into(),
                },
                PipelineNode {
                    name: "ohe".into(),
                    op: Operator::OneHotEncoder(OneHotEncoder {
                        categories: vec!["0".into(), "1".into()],
                    }),
                    inputs: vec!["asthma".into()],
                    output: "enc".into(),
                },
                PipelineNode {
                    name: "concat".into(),
                    op: Operator::Concat,
                    inputs: vec!["scaled".into(), "enc".into()],
                    output: "features".into(),
                },
                PipelineNode {
                    name: "tree".into(),
                    op: Operator::TreeEnsemble(TreeEnsemble::single_tree(
                        Tree {
                            nodes: vec![
                                TreeNode::Branch {
                                    feature: 3,
                                    threshold: 0.5,
                                    left: 1,
                                    right: 2,
                                },
                                TreeNode::Leaf { value: 0.0 },
                                TreeNode::Branch {
                                    feature: 0,
                                    threshold: 60.0,
                                    left: 3,
                                    right: 4,
                                },
                                TreeNode::Leaf { value: 0.2 },
                                TreeNode::Leaf { value: 0.9 },
                            ],
                            root: 0,
                        },
                        4,
                    )),
                    inputs: vec!["features".into()],
                    output: "score".into(),
                },
            ],
            "score",
        )
        .unwrap()
    }

    fn batch() -> Batch {
        TableBuilder::new("t")
            .add_f64("age", vec![70.0, 40.0, 65.0])
            .add_f64("bmi", vec![22.0, 30.0, 25.0])
            .add_i64("asthma", vec![1, 0, 1])
            .add_f64("other", vec![0.0, 0.0, 0.0])
            .build_batch()
            .unwrap()
    }

    #[test]
    fn run_batch_scores() {
        let rt = MlRuntime::new();
        let scores = rt.run_batch(&pipeline(), &batch()).unwrap();
        assert_eq!(scores, vec![0.9, 0.0, 0.9]);
    }

    #[test]
    fn run_batch_chunked_matches_unchunked() {
        let cfg = RuntimeConfig {
            batch_size: 2,
            ..RuntimeConfig::default()
        };
        let chunked = MlRuntime::with_config(cfg)
            .run_batch(&pipeline(), &batch())
            .unwrap();
        let whole = MlRuntime::new().run_batch(&pipeline(), &batch()).unwrap();
        assert_eq!(chunked, whole);
    }

    #[test]
    fn row_interpreted_matches_vectorized() {
        let rt = MlRuntime::new();
        let a = rt.run_batch(&pipeline(), &batch()).unwrap();
        let b = rt.run_batch_row_interpreted(&pipeline(), &batch()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn score_stream_matches_run_batch_without_concat() {
        use raven_columnar::{partition_by_column, BatchStream, PartitionSpec, Table};
        let rt = MlRuntime::with_config(RuntimeConfig {
            batch_size: 2,
            ..RuntimeConfig::default()
        });
        let whole = batch();
        let expected = MlRuntime::new().run_batch(&pipeline(), &whole).unwrap();
        let table = Table::from_batch("t", whole).unwrap();
        let table =
            partition_by_column(&table, &PartitionSpec::RoundRobin { partitions: 3 }).unwrap();
        for dop in [1, 2] {
            let items = rt
                .score_stream(&pipeline(), BatchStream::from_table(&table), "score")
                .collect(dop)
                .unwrap();
            assert_eq!(items.len(), 3);
            let mut streamed = Vec::new();
            for item in &items {
                assert!(item.batch.schema().contains("score"));
                streamed.extend_from_slice(
                    item.batch
                        .column_by_name("score")
                        .unwrap()
                        .as_f64()
                        .unwrap(),
                );
            }
            assert_eq!(streamed, expected);
        }
    }

    #[test]
    fn empty_batch_scores_empty() {
        let rt = MlRuntime::new();
        let empty = batch().slice(0, 0).unwrap();
        assert_eq!(
            rt.run_batch_chunked(&pipeline(), &empty).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn missing_column_is_error() {
        let rt = MlRuntime::new();
        let bad = TableBuilder::new("t")
            .add_f64("age", vec![1.0])
            .build_batch()
            .unwrap();
        assert!(matches!(
            rt.run_batch(&pipeline(), &bad).unwrap_err(),
            MlError::MissingInput(_)
        ));
    }

    #[test]
    fn run_with_prebound_inputs() {
        let rt = MlRuntime::new();
        let b = batch();
        let inputs = bind_batch(&pipeline(), &b).unwrap();
        let out = rt.run(&pipeline(), &inputs).unwrap();
        assert_eq!(out.as_numeric().unwrap().column(0), vec![0.9, 0.0, 0.9]);
    }

    #[test]
    fn mismatched_input_rows_rejected() {
        let rt = MlRuntime::new();
        let mut inputs = bind_batch(&pipeline(), &batch()).unwrap();
        inputs.insert(
            "age".into(),
            FrameValue::Numeric(Matrix::from_column(&[1.0])),
        );
        assert!(rt.run(&pipeline(), &inputs).is_err());
    }

    #[test]
    fn categorical_binding_from_int_and_string() {
        let enc = OneHotEncoder {
            categories: vec!["0".into(), "1".into()],
        };
        let col = Column::Int64(vec![0, 1]);
        let v = column_to_frame(&col, InputKind::Categorical).unwrap();
        let m = enc.transform(&v).unwrap();
        assert_eq!(m.row(1), &[0.0, 1.0]);

        let col = Column::Float64(vec![1.0]);
        let v = column_to_frame(&col, InputKind::Categorical).unwrap();
        assert_eq!(v.as_strings().unwrap().get(0, 0), "1");

        let col = Column::Utf8(vec!["1".into()]);
        let v = column_to_frame(&col, InputKind::Categorical).unwrap();
        assert_eq!(v.as_strings().unwrap().get(0, 0), "1");
    }

    #[test]
    fn overhead_configuration_applies() {
        let cfg = RuntimeConfig {
            invocation_overhead: Duration::from_millis(5),
            per_batch_overhead: Duration::from_millis(1),
            batch_size: 1,
        };
        let rt = MlRuntime::with_config(cfg);
        let start = std::time::Instant::now();
        rt.run_batch(&pipeline(), &batch()).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(7));
    }
}
