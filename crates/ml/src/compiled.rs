//! Pipelines with pre-compiled scoring kernels.
//!
//! A [`CompiledPipeline`] pairs a validated [`Pipeline`] with the flattened
//! struct-of-arrays scorer ([`FlatEnsemble`]) of every tree-ensemble node
//! **and**, whenever the pipeline's shape allows it, the fully fused
//! featurize→score pass ([`FusedPipeline`]) — featurizer chain folded into
//! the feature-lane transpose, model kernel fed finished lanes — all
//! compiled once. This is the form a prepared statement carries: the
//! expensive per-query-shape work (validation, feature-bound checking,
//! arena flattening, lane-program resolution, category-table construction)
//! happens at prepare time, and every execution runs only the tight
//! block-at-a-time kernels. The interpreted operator graph remains
//! available as the parity baseline (`RAVEN_SCORER=interpreted` /
//! [`crate::ops::force_scorer`]), and the per-operator compiled path as the
//! fusion baseline ([`crate::kernels::force_fusion`]).

use crate::error::Result;
use crate::kernels::FusedPipeline;
use crate::ops::{FlatEnsemble, Operator};
use crate::pipeline::Pipeline;
use std::collections::HashMap;
use std::sync::Arc;

/// A pipeline plus its compiled kernels: the flattened scorer of each
/// tree-ensemble node (keyed by node name) and the optional fused
/// featurize→score pass. Cloning is cheap (everything is behind `Arc`s).
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    pipeline: Arc<Pipeline>,
    flat: Arc<HashMap<String, Arc<FlatEnsemble>>>,
    fused: Option<Arc<FusedPipeline>>,
}

impl CompiledPipeline {
    /// Validate the pipeline and compile every tree-ensemble node.
    pub fn compile(pipeline: &Pipeline) -> Result<CompiledPipeline> {
        CompiledPipeline::from_arc(Arc::new(pipeline.clone()))
    }

    /// [`CompiledPipeline::compile`] over an already-shared pipeline.
    pub fn from_arc(pipeline: Arc<Pipeline>) -> Result<CompiledPipeline> {
        pipeline.validate()?;
        let mut flat = HashMap::new();
        for node in &pipeline.nodes {
            if let Operator::TreeEnsemble(e) = &node.op {
                flat.insert(node.name.clone(), Arc::new(FlatEnsemble::compile(e)?));
            }
        }
        let fused = FusedPipeline::compile(&pipeline, &flat).map(Arc::new);
        // Artifact verification (debug builds / RAVEN_VERIFY=strict): the
        // fused lane programs must reference only real source inputs and
        // lanes — see FusedPipeline::verify. FlatEnsemble::compile already
        // self-checked each scorer above.
        if let Some(f) = &fused {
            if cfg!(debug_assertions) || raven_columnar::envcfg::verify_strict() {
                f.verify()?;
            }
        }
        Ok(CompiledPipeline {
            pipeline,
            flat: Arc::new(flat),
            fused,
        })
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &Arc<Pipeline> {
        &self.pipeline
    }

    /// The flattened scorers, keyed by node name.
    pub fn flat_scorers(&self) -> &HashMap<String, Arc<FlatEnsemble>> {
        &self.flat
    }

    /// The fused featurize→score pass, when the pipeline's shape fused.
    pub fn fused(&self) -> Option<&Arc<FusedPipeline>> {
        self.fused.as_ref()
    }

    /// How many nodes have a compiled kernel.
    pub fn compiled_nodes(&self) -> usize {
        self.flat.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Tree, TreeEnsemble, TreeNode};
    use crate::pipeline::{InputKind, PipelineInput, PipelineNode};

    #[test]
    fn compile_collects_tree_nodes_and_validates() {
        let tree = Tree {
            nodes: vec![
                TreeNode::Branch {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
            root: 0,
        };
        let p = Pipeline::new(
            "m",
            vec![PipelineInput {
                name: "x".into(),
                kind: InputKind::Numeric,
            }],
            vec![PipelineNode {
                name: "model".into(),
                op: Operator::TreeEnsemble(TreeEnsemble::single_tree(tree.clone(), 1)),
                inputs: vec!["x".into()],
                output: "score".into(),
            }],
            "score",
        )
        .unwrap();
        let c = CompiledPipeline::compile(&p).unwrap();
        assert_eq!(c.compiled_nodes(), 1);
        assert!(c.flat_scorers().contains_key("model"));

        // an out-of-range feature index fails compilation with a typed error
        let mut bad = p.clone();
        bad.nodes[0].op = Operator::TreeEnsemble(TreeEnsemble::single_tree(
            Tree {
                nodes: vec![
                    TreeNode::Branch {
                        feature: 9,
                        threshold: 1.0,
                        left: 1,
                        right: 2,
                    },
                    TreeNode::Leaf { value: 0.0 },
                    TreeNode::Leaf { value: 1.0 },
                ],
                root: 0,
            },
            1,
        ));
        assert!(CompiledPipeline::compile(&bad).is_err());

        // cyclic and dangling node graphs are rejected with a typed error
        // through the real entry point (validation must terminate and fail
        // before any query-path walker can hang or panic on them)
        for (left, right) in [(0usize, 0usize), (5, 5)] {
            let mut invalid = p.clone();
            invalid.nodes[0].op = Operator::TreeEnsemble(TreeEnsemble::single_tree(
                Tree {
                    nodes: vec![TreeNode::Branch {
                        feature: 0,
                        threshold: 0.0,
                        left,
                        right,
                    }],
                    root: 0,
                },
                1,
            ));
            let err = CompiledPipeline::compile(&invalid).unwrap_err();
            assert!(
                matches!(err, crate::error::MlError::InvalidModel(_)),
                "{err}"
            );
        }
    }
}
