//! Building scikit-learn-style trained pipelines from relational data.
//!
//! Mirrors the paper's §7 "Trained pipelines" setup: numeric inputs are
//! standard-scaled, categorical inputs are one-hot encoded, everything is
//! concatenated and fed to one of LR / DT / RF / GB, trained on the data.

use crate::error::{MlError, Result};
use crate::frame::Matrix;
use crate::ops::{Operator, Scaler};
use crate::pipeline::{InputKind, Pipeline, PipelineInput, PipelineNode};
use crate::runtime::column_to_frame;
use crate::train::{
    fit_one_hot, fit_standard_scaler, train_decision_tree_classifier, train_gradient_boosting,
    train_logistic_regression, train_random_forest, BoostingConfig, ForestConfig, LinearConfig,
    TreeConfig,
};
use raven_columnar::Batch;

/// Which model family to train at the end of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelType {
    /// Logistic regression with the given L1 strength (the α of Fig. 9).
    LogisticRegression { l1_alpha: f64 },
    /// Single decision tree with the given maximum depth.
    DecisionTree { max_depth: usize },
    /// Random forest.
    RandomForest { n_trees: usize, max_depth: usize },
    /// Gradient boosting.
    GradientBoosting {
        n_estimators: usize,
        max_depth: usize,
        learning_rate: f64,
    },
}

impl ModelType {
    /// A short name for reports ("LR", "DT", "RF", "GB").
    pub fn short_name(&self) -> &'static str {
        match self {
            ModelType::LogisticRegression { .. } => "LR",
            ModelType::DecisionTree { .. } => "DT",
            ModelType::RandomForest { .. } => "RF",
            ModelType::GradientBoosting { .. } => "GB",
        }
    }
}

/// Specification of a trained pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Pipeline name (e.g. `hospital_gb.onnx`).
    pub name: String,
    /// Names of numeric input columns.
    pub numeric_inputs: Vec<String>,
    /// Names of categorical input columns.
    pub categorical_inputs: Vec<String>,
    /// Name of the binary {0,1} label column used for training.
    pub label: String,
    /// Model family and hyperparameters.
    pub model: ModelType,
    /// Seed for all stochastic parts of training.
    pub seed: u64,
}

/// Train a full pipeline (featurizers + model) on the given batch.
pub fn train_pipeline(batch: &Batch, spec: &PipelineSpec) -> Result<Pipeline> {
    if spec.numeric_inputs.is_empty() && spec.categorical_inputs.is_empty() {
        return Err(MlError::Training(
            "pipeline needs at least one input".into(),
        ));
    }
    // ---- assemble featurizers ------------------------------------------------
    let mut inputs = Vec::new();
    let mut nodes = Vec::new();
    let mut concat_inputs = Vec::new();
    let mut feature_blocks: Vec<Matrix> = Vec::new();

    if !spec.numeric_inputs.is_empty() {
        let mut numeric_cols = Vec::with_capacity(spec.numeric_inputs.len());
        for name in &spec.numeric_inputs {
            inputs.push(PipelineInput {
                name: name.clone(),
                kind: InputKind::Numeric,
            });
            let col = batch
                .column_by_name(name)
                .map_err(|_| MlError::MissingInput(format!("training column {name}")))?;
            numeric_cols.push(col.to_f64_vec()?);
        }
        let raw = Matrix::from_columns(&numeric_cols)?;
        let scaler: Scaler = fit_standard_scaler(&raw);
        let scaled = scaler.transform(&raw)?;
        nodes.push(PipelineNode {
            name: "scaler".into(),
            op: Operator::Scaler(scaler),
            inputs: spec.numeric_inputs.clone(),
            output: "scaled".into(),
        });
        concat_inputs.push("scaled".to_string());
        feature_blocks.push(scaled);
    }

    for name in &spec.categorical_inputs {
        inputs.push(PipelineInput {
            name: name.clone(),
            kind: InputKind::Categorical,
        });
        let col = batch
            .column_by_name(name)
            .map_err(|_| MlError::MissingInput(format!("training column {name}")))?;
        let frame = column_to_frame(col, InputKind::Categorical)?;
        let strings = frame.as_strings()?;
        let raw: Vec<String> = (0..strings.rows())
            .map(|r| strings.get(r, 0).to_string())
            .collect();
        let encoder = fit_one_hot(&raw);
        let encoded = encoder.transform(&frame)?;
        let node_name = format!("ohe_{name}");
        let out_name = format!("{name}_enc");
        nodes.push(PipelineNode {
            name: node_name,
            op: Operator::OneHotEncoder(encoder),
            inputs: vec![name.clone()],
            output: out_name.clone(),
        });
        concat_inputs.push(out_name);
        feature_blocks.push(encoded);
    }

    let features = Matrix::hconcat(&feature_blocks.iter().collect::<Vec<_>>())?;
    nodes.push(PipelineNode {
        name: "concat".into(),
        op: Operator::Concat,
        inputs: concat_inputs,
        output: "features".into(),
    });

    // ---- labels & model ------------------------------------------------------
    let labels = batch
        .column_by_name(&spec.label)
        .map_err(|_| MlError::MissingInput(format!("label column {}", spec.label)))?
        .to_f64_vec()?;

    let model_op = match &spec.model {
        ModelType::LogisticRegression { l1_alpha } => {
            let cfg = LinearConfig {
                l1_alpha: *l1_alpha,
                ..Default::default()
            };
            Operator::LogisticRegression(train_logistic_regression(&features, &labels, &cfg)?)
        }
        ModelType::DecisionTree { max_depth } => {
            let cfg = TreeConfig {
                max_depth: *max_depth,
                seed: spec.seed,
                ..Default::default()
            };
            Operator::TreeEnsemble(train_decision_tree_classifier(&features, &labels, &cfg)?)
        }
        ModelType::RandomForest { n_trees, max_depth } => {
            let cfg = ForestConfig {
                n_trees: *n_trees,
                tree: TreeConfig {
                    max_depth: *max_depth,
                    seed: spec.seed,
                    ..Default::default()
                },
                seed: spec.seed,
                ..Default::default()
            };
            Operator::TreeEnsemble(train_random_forest(&features, &labels, &cfg)?)
        }
        ModelType::GradientBoosting {
            n_estimators,
            max_depth,
            learning_rate,
        } => {
            let cfg = BoostingConfig {
                n_estimators: *n_estimators,
                max_depth: *max_depth,
                learning_rate: *learning_rate,
                seed: spec.seed,
                ..Default::default()
            };
            Operator::TreeEnsemble(train_gradient_boosting(&features, &labels, &cfg)?)
        }
    };
    nodes.push(PipelineNode {
        name: "model".into(),
        op: model_op,
        inputs: vec!["features".into()],
        output: "score".into(),
    });

    Pipeline::new(spec.name.clone(), inputs, nodes, "score")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::MlRuntime;
    use crate::train::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use raven_columnar::TableBuilder;

    fn training_batch(n: usize) -> Batch {
        let mut rng = StdRng::seed_from_u64(7);
        let age: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..90.0)).collect();
        let bmi: Vec<f64> = (0..n).map(|_| rng.gen_range(15.0..45.0)).collect();
        let asthma: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        let smoker: Vec<String> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    "yes".to_string()
                } else {
                    "no".to_string()
                }
            })
            .collect();
        let label: Vec<f64> = (0..n)
            .map(|i| {
                let risk = 0.03 * (age[i] - 50.0)
                    + 0.1 * (bmi[i] - 28.0)
                    + 1.5 * asthma[i] as f64
                    + if smoker[i] == "yes" { 1.0 } else { 0.0 };
                if risk > 0.5 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        TableBuilder::new("train")
            .add_f64("age", age)
            .add_f64("bmi", bmi)
            .add_i64("asthma", asthma)
            .add_utf8("smoker", smoker)
            .add_f64("label", label)
            .build_batch()
            .unwrap()
    }

    fn spec(model: ModelType) -> PipelineSpec {
        PipelineSpec {
            name: "test_pipeline".into(),
            numeric_inputs: vec!["age".into(), "bmi".into()],
            categorical_inputs: vec!["asthma".into(), "smoker".into()],
            label: "label".into(),
            model,
            seed: 11,
        }
    }

    #[test]
    fn pipeline_structure_matches_spec() {
        let batch = training_batch(300);
        let p = train_pipeline(&batch, &spec(ModelType::DecisionTree { max_depth: 5 })).unwrap();
        assert_eq!(p.inputs.len(), 4);
        // scaler + 2 OHE + concat + model
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.feature_width(), 2 + 2 + 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn trained_pipelines_are_accurate() {
        let batch = training_batch(400);
        let labels = batch.column_by_name("label").unwrap().to_f64_vec().unwrap();
        let rt = MlRuntime::new();
        for model in [
            ModelType::LogisticRegression { l1_alpha: 0.0 },
            ModelType::DecisionTree { max_depth: 8 },
            ModelType::RandomForest {
                n_trees: 5,
                max_depth: 6,
            },
            ModelType::GradientBoosting {
                n_estimators: 10,
                max_depth: 3,
                learning_rate: 0.2,
            },
        ] {
            let name = model.short_name();
            let p = train_pipeline(&batch, &spec(model)).unwrap();
            let scores = rt.run_batch(&p, &batch).unwrap();
            let acc = accuracy(&scores, &labels);
            assert!(acc > 0.8, "{name} accuracy too low: {acc}");
        }
    }

    #[test]
    fn missing_columns_error() {
        let batch = training_batch(50);
        let mut s = spec(ModelType::DecisionTree { max_depth: 3 });
        s.numeric_inputs.push("nonexistent".into());
        assert!(train_pipeline(&batch, &s).is_err());
        let mut s = spec(ModelType::DecisionTree { max_depth: 3 });
        s.label = "nope".into();
        assert!(train_pipeline(&batch, &s).is_err());
    }

    #[test]
    fn empty_spec_rejected() {
        let batch = training_batch(10);
        let s = PipelineSpec {
            name: "x".into(),
            numeric_inputs: vec![],
            categorical_inputs: vec![],
            label: "label".into(),
            model: ModelType::DecisionTree { max_depth: 3 },
            seed: 0,
        };
        assert!(train_pipeline(&batch, &s).is_err());
    }

    #[test]
    fn model_short_names() {
        assert_eq!(
            ModelType::LogisticRegression { l1_alpha: 0.0 }.short_name(),
            "LR"
        );
        assert_eq!(
            ModelType::GradientBoosting {
                n_estimators: 1,
                max_depth: 1,
                learning_rate: 0.1
            }
            .short_name(),
            "GB"
        );
    }
}
