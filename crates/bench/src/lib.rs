//! # raven-bench
//!
//! Experiment harnesses reproducing every table and figure of the Raven paper
//! (§2 and §7) at laptop scale, plus Criterion micro-benchmarks of the hot
//! paths. Each `fig*`/`table*` binary in `src/bin/` prints the same rows or
//! series the paper reports; EXPERIMENTS.md maps them to the original
//! figures and records paper-vs-measured shapes.
//!
//! Scales are deliberately small (tens of thousands of rows instead of the
//! paper's hundreds of millions) so every harness finishes in seconds on one
//! core; the *relative* behaviour — which configuration wins and by roughly
//! what factor — is what the reproduction targets.

pub mod experiments;
pub mod workload;

pub use experiments::*;
pub use workload::*;
